//! Workspace smoke test: the `barrier_io_stack` facade re-exports resolve
//! to the right crates, and a minimal stack run completes deterministically.

use barrier_io_stack::{block, flash, fs, sim, stack, workloads};

#[test]
fn facade_reexports_resolve() {
    // Each aliased module must expose its crate's signature types; using
    // them through the facade path proves the re-export wiring.
    let _profile: flash::DeviceProfile = flash::DeviceProfile::ufs();
    let _flags: block::ReqFlags = block::ReqFlags::BARRIER;
    let _mode: fs::FsMode = fs::FsMode::BarrierFs;
    let _t: sim::SimTime = sim::SimTime::from_micros(1);
    let _sync: workloads::SyncMode = workloads::SyncMode::Fdatabarrier;
    let _cfg: stack::StackConfig = stack::StackConfig::bfs(flash::DeviceProfile::ufs());
}

fn run_once(seed: u64) -> (u64, u64) {
    let cfg = stack::StackConfig::bfs(flash::DeviceProfile::ufs()).with_seed(seed);
    let mut s = stack::IoStack::new(cfg);
    let db = s.create_global_file();
    let script = vec![
        stack::Op::Write {
            file: stack::FileRef::Global(db),
            offset: 0,
            blocks: 1,
        },
        stack::Op::Fdatabarrier {
            file: stack::FileRef::Global(db),
        },
        stack::Op::Write {
            file: stack::FileRef::Global(db),
            offset: 1,
            blocks: 1,
        },
        stack::Op::Fsync {
            file: stack::FileRef::Global(db),
        },
        stack::Op::TxnMark,
    ];
    s.add_thread(Box::new(stack::ScriptWorkload::repeat(script, 16)));
    assert!(
        s.run_until_done(sim::SimDuration::from_secs(60)),
        "minimal stack run did not finish"
    );
    let report = s.report();
    assert_eq!(report.run.txns, 16);
    (report.run.txns, s.device_at(0).stats().blocks_written)
}

#[test]
fn minimal_run_is_deterministic() {
    let a = run_once(7);
    let b = run_once(7);
    assert_eq!(a, b, "same seed must replay the same simulation");
    assert!(a.1 > 0, "the run must actually reach the device");
}
