//! Workspace-level integration tests: application workloads through every
//! layer (workload generator → filesystem → block layer → device), with
//! shape assertions matching the paper's headline claims.

use barrier_io::{DeviceProfile, FileRef, IoStack, SimDuration, StackConfig};
use bio_workloads::{Dwsl, OltpInsert, Sqlite, SqliteJournalMode, SyncMode, Varmail};

fn sqlite_tps(cfg: StackConfig, mk: fn(SqliteJournalMode, FileRef, FileRef, u64) -> Sqlite) -> f64 {
    let mut stack = IoStack::new(cfg);
    let db = stack.create_global_file();
    let journal = stack.create_global_file();
    stack.add_thread(Box::new(mk(
        SqliteJournalMode::Persist,
        FileRef::Global(db),
        FileRef::Global(journal),
        400,
    )));
    stack.start_measuring();
    assert!(stack.run_until_done(SimDuration::from_secs(600)));
    stack.report().run.txns_per_sec()
}

#[test]
fn sqlite_substitution_ladder() {
    // EXT4-DR < BFS-DR < BFS-OD, on both device classes (Fig 14 shape).
    for dev in [DeviceProfile::ufs(), DeviceProfile::plain_ssd()] {
        let ext4 = sqlite_tps(StackConfig::ext4_dr(dev.clone()), Sqlite::durability);
        let bfs_dr = sqlite_tps(StackConfig::bfs(dev.clone()), Sqlite::barrier_durability);
        let bfs_od = sqlite_tps(StackConfig::bfs(dev.clone()), Sqlite::ordering);
        assert!(
            ext4 < bfs_dr && bfs_dr < bfs_od,
            "{}: ladder broken: EXT4-DR {ext4:.0} / BFS-DR {bfs_dr:.0} / BFS-OD {bfs_od:.0}",
            dev.name
        );
        // The paper's headline: relaxing durability is worth an order of
        // magnitude or more on the server SSD.
        if dev.name == "plain-SSD" {
            assert!(
                bfs_od > 20.0 * ext4,
                "plain-SSD: BFS-OD should dwarf EXT4-DR ({bfs_od:.0} vs {ext4:.0})"
            );
        }
    }
}

#[test]
fn dwsl_scales_better_on_barrierfs() {
    // Fig 13 shape at one point: 8 threads on plain-SSD.
    let run = |cfg: StackConfig| -> f64 {
        let mut stack = IoStack::new(cfg);
        for _ in 0..8 {
            stack.add_thread(Box::new(Dwsl::new(SyncMode::Fsync, 150)));
        }
        stack.start_measuring();
        assert!(stack.run_until_done(SimDuration::from_secs(600)));
        stack.report().run.txns_per_sec()
    };
    let ext4 = run(StackConfig::ext4_dr(DeviceProfile::plain_ssd()));
    let bfs = run(StackConfig::bfs(DeviceProfile::plain_ssd()));
    assert!(
        bfs > ext4 * 1.15,
        "BFS-DR {bfs:.0} ops/s should clearly beat EXT4-DR {ext4:.0}"
    );
}

#[test]
fn varmail_and_oltp_follow_the_fig15_order() {
    let varmail = |cfg: StackConfig, sync: SyncMode| -> f64 {
        let mut stack = IoStack::new(cfg);
        for _ in 0..8 {
            stack.add_thread(Box::new(Varmail::new(sync, 60, 6)));
        }
        stack.start_measuring();
        assert!(stack.run_until_done(SimDuration::from_secs(600)));
        stack.report().run.txns_per_sec()
    };
    let dev = DeviceProfile::plain_ssd();
    let ext4_dr = varmail(StackConfig::ext4_dr(dev.clone()), SyncMode::Fsync);
    let bfs_dr = varmail(StackConfig::bfs(dev.clone()), SyncMode::Fsync);
    let bfs_od = varmail(StackConfig::bfs(dev.clone()), SyncMode::Fbarrier);
    assert!(
        ext4_dr < bfs_dr && bfs_dr < bfs_od,
        "varmail order broken: {ext4_dr:.0} / {bfs_dr:.0} / {bfs_od:.0}"
    );

    let oltp = |cfg: StackConfig, sync: SyncMode| -> f64 {
        let mut stack = IoStack::new(cfg);
        let t = stack.create_global_file();
        let r = stack.create_global_file();
        let b = stack.create_global_file();
        for _ in 0..4 {
            stack.add_thread(Box::new(OltpInsert::new(
                sync,
                FileRef::Global(t),
                FileRef::Global(r),
                FileRef::Global(b),
                150,
            )));
        }
        stack.start_measuring();
        assert!(stack.run_until_done(SimDuration::from_secs(600)));
        stack.report().run.txns_per_sec()
    };
    let ext4_dr = oltp(StackConfig::ext4_dr(dev.clone()), SyncMode::Fsync);
    let bfs_od = oltp(StackConfig::bfs(dev.clone()), SyncMode::Fbarrier);
    assert!(
        bfs_od > 10.0 * ext4_dr,
        "OLTP: ordering-only should dwarf full durability ({bfs_od:.0} vs {ext4_dr:.0})"
    );
}

#[test]
fn optfs_sits_between_durability_and_barrier_stacks() {
    // §6.5: OptFS beats transfer-and-flush but loses to BarrierFS-OD
    // (it still waits on transfer and pays selective data journaling).
    let dev = DeviceProfile::plain_ssd();
    let ext4_dr = sqlite_tps(StackConfig::ext4_dr(dev.clone()), Sqlite::durability);
    let optfs = sqlite_tps(StackConfig::optfs(dev.clone()), Sqlite::ordering);
    let bfs_od = sqlite_tps(StackConfig::bfs(dev.clone()), Sqlite::ordering);
    assert!(
        ext4_dr < optfs && optfs < bfs_od,
        "OptFS should sit between: EXT4-DR {ext4_dr:.0} / OptFS {optfs:.0} / BFS-OD {bfs_od:.0}"
    );
}

#[test]
fn supercap_compresses_the_gap() {
    // On a PLP device flushes are nearly free, so EXT4-DR and BFS-DR
    // converge (the paper's supercap columns are always the closest).
    let plain_gap = {
        let e = sqlite_tps(
            StackConfig::ext4_dr(DeviceProfile::plain_ssd()),
            Sqlite::durability,
        );
        let b = sqlite_tps(
            StackConfig::bfs(DeviceProfile::plain_ssd()),
            Sqlite::barrier_durability,
        );
        b / e
    };
    let supercap_gap = {
        let e = sqlite_tps(
            StackConfig::ext4_dr(DeviceProfile::supercap_ssd()),
            Sqlite::durability,
        );
        let b = sqlite_tps(
            StackConfig::bfs(DeviceProfile::supercap_ssd()),
            Sqlite::barrier_durability,
        );
        b / e
    };
    assert!(
        supercap_gap < plain_gap,
        "PLP should shrink the BFS advantage: plain {plain_gap:.2}x vs supercap {supercap_gap:.2}x"
    );
}
