//! Property-based crash-consistency tests: random workloads, random crash
//! points — the barrier-enabled stack must never violate storage order or
//! a durability promise, on any device profile that honours barriers.
//!
//! Cases are generated exactly as the `proptest!` macro would — the same
//! per-`(test, case)` deterministic RNG and the same strategies, so the
//! case inputs are unchanged — but their bodies run as cells on the
//! [`ExperimentGrid`] worker pool instead of serially. Each cell catches
//! unwinds, so a panicking case body is an ordinary failure; results come
//! back in case order and the *lowest* failing case is reported with the
//! same message the serial runner would print. Output is byte-identical
//! to a serial run (panicking cases additionally emit the standard hook's
//! stderr line at panic time, as they would serially); only the
//! wall-clock differs.

use barrier_io::{
    BarrierMode, DeviceProfile, FileRef, FnWorkload, IoStack, Op, SimDuration, StackConfig,
};
use bio_bench::ExperimentGrid;
use proptest::collection;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// A randomly generated op for the property workload.
fn arb_op() -> impl Strategy<Value = u8> {
    0u8..6
}

fn build_workload(ops: Vec<u8>, files: usize) -> impl FnMut(&mut bio_sim::SimRng) -> Option<Op> {
    let mut i = 0;
    move |rng: &mut bio_sim::SimRng| {
        if i >= ops.len() {
            return None;
        }
        let sel = ops[i];
        i += 1;
        let file = FileRef::Global((rng.below(files as u64)) as usize);
        Some(match sel {
            0 => Op::Write {
                file,
                offset: rng.below(32),
                blocks: 1 + rng.below(3),
            },
            1 => Op::Fsync { file },
            2 => Op::Fdatasync { file },
            3 => Op::Fbarrier { file },
            4 => Op::Fdatabarrier { file },
            _ => Op::Write {
                file,
                offset: 32 + rng.below(32),
                blocks: 1,
            },
        })
    }
}

fn crash_consistent(
    mode: BarrierMode,
    bfs: bool,
    ops: Vec<u8>,
    seed: u64,
    crash_ms: u64,
) -> (usize, usize) {
    let dev = DeviceProfile::ufs().with_barrier_mode(mode);
    let mut cfg = if bfs {
        StackConfig::bfs(dev)
    } else {
        StackConfig::ext4_dr(dev)
    }
    .with_seed(seed)
    .with_history();
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    for _ in 0..3 {
        stack.create_global_file();
    }
    stack.add_thread(Box::new(FnWorkload(build_workload(ops, 3))));
    stack.run_for(SimDuration::from_millis(1 + crash_ms));
    let crash = stack.crash();
    (crash.fs_violations.len(), crash.epoch_violations.len())
}

/// One generated case: the op stream, the stack seed, the crash point.
type Case = (Vec<u8>, u64, u64);

/// Runs a case body, converting a panic into an ordinary `Err` so the
/// grid's ordered reporting (lowest failing case wins) also covers
/// panicking regressions, not just violation counts.
fn catch_case(
    body: impl FnOnce() -> Result<(), String> + std::panic::UnwindSafe,
) -> Result<(), String> {
    match std::panic::catch_unwind(body) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(format!("case body panicked: {msg}"))
        }
    }
}

/// Generates `cases` inputs with the `proptest!` macro's deterministic
/// per-`(test, case)` seeding, then runs the bodies on the experiment-grid
/// worker pool. Fails on the lowest failing case index, mirroring the
/// serial runner's report.
fn run_sharded(
    name: &'static str,
    cases: u32,
    ops_max: usize,
    crash_ms_max: u64,
    body: fn(Case) -> Result<(), String>,
) {
    let mut grid: ExperimentGrid<Result<(), String>> = ExperimentGrid::new();
    for case in 0..cases {
        let mut rng = TestRng::for_case(name, case);
        // Same strategies, generated in declaration order, as the original
        // `proptest!` properties used.
        let ops = collection::vec(arb_op(), 10..ops_max).generate(&mut rng);
        let seed = (0u64..1000).generate(&mut rng);
        let crash_ms = (0u64..crash_ms_max).generate(&mut rng);
        grid.push(format!("{name}/case{case}"), move || {
            catch_case(move || body((ops, seed, crash_ms)))
        });
    }
    for (case, outcome) in grid.run().into_iter().enumerate() {
        if let Err(e) = outcome {
            panic!("proptest case {case} of {name} failed: {e}");
        }
    }
}

fn expect_zero(label: &str, got: usize) -> Result<(), String> {
    if got == 0 {
        Ok(())
    } else {
        Err(format!("{label}: expected 0 violations, got {got}"))
    }
}

/// BarrierFS over a barrier-compliant device: every random workload,
/// every random crash point, zero violations.
#[test]
fn barrierfs_never_violates() {
    run_sharded(
        "barrierfs_never_violates",
        256,
        120,
        40,
        |(ops, seed, crash_ms)| {
            let (fs_v, epoch_v) =
                crash_consistent(BarrierMode::LfsInOrderRecovery, true, ops, seed, crash_ms);
            expect_zero("filesystem violations", fs_v)?;
            expect_zero("device epoch violations", epoch_v)
        },
    );
}

/// Same property under the in-order writeback engine.
#[test]
fn in_order_writeback_never_violates() {
    run_sharded(
        "in_order_writeback_never_violates",
        256,
        80,
        30,
        |(ops, seed, crash_ms)| {
            let (fs_v, epoch_v) =
                crash_consistent(BarrierMode::InOrderWriteback, true, ops, seed, crash_ms);
            expect_zero("filesystem violations", fs_v)?;
            expect_zero("device epoch violations", epoch_v)
        },
    );
}

/// Same property under transactional writeback.
#[test]
fn transactional_writeback_never_violates() {
    run_sharded(
        "transactional_writeback_never_violates",
        256,
        80,
        30,
        |(ops, seed, crash_ms)| {
            let (fs_v, epoch_v) =
                crash_consistent(BarrierMode::Transactional, true, ops, seed, crash_ms);
            expect_zero("filesystem violations", fs_v)?;
            expect_zero("device epoch violations", epoch_v)
        },
    );
}

/// Legacy EXT4 with full flushes is also always consistent — the
/// paper's claim is about cost, not correctness.
#[test]
fn ext4_full_flush_never_violates() {
    run_sharded(
        "ext4_full_flush_never_violates",
        256,
        80,
        30,
        |(ops, seed, crash_ms)| {
            let (fs_v, _) =
                crash_consistent(BarrierMode::LfsInOrderRecovery, false, ops, seed, crash_ms);
            expect_zero("filesystem violations", fs_v)
        },
    );
}

/// Determinism meta-property: the same seed replays the same simulation.
#[test]
fn simulation_is_deterministic() {
    let mut grid: ExperimentGrid<Result<(), String>> = ExperimentGrid::new();
    for case in 0..32u32 {
        let mut rng = TestRng::for_case("simulation_is_deterministic", case);
        let ops = collection::vec(arb_op(), 10..60).generate(&mut rng);
        let seed = (0u64..1000).generate(&mut rng);
        grid.push(
            format!("simulation_is_deterministic/case{case}"),
            move || {
                catch_case(move || {
                    let a = crash_consistent(
                        BarrierMode::LfsInOrderRecovery,
                        true,
                        ops.clone(),
                        seed,
                        9,
                    );
                    let b = crash_consistent(BarrierMode::LfsInOrderRecovery, true, ops, seed, 9);
                    if a == b {
                        Ok(())
                    } else {
                        Err(format!("replay diverged: {a:?} != {b:?}"))
                    }
                })
            },
        );
    }
    for (case, outcome) in grid.run().into_iter().enumerate() {
        if let Err(e) = outcome {
            panic!("proptest case {case} of simulation_is_deterministic failed: {e}");
        }
    }
}
