//! Property-based crash-consistency tests: random workloads, random crash
//! points — the barrier-enabled stack must never violate storage order or
//! a durability promise, on any device profile that honours barriers.

use barrier_io::{
    BarrierMode, DeviceProfile, FileRef, FnWorkload, IoStack, Op, SimDuration, StackConfig,
};
use proptest::prelude::*;

/// A randomly generated op for the property workload.
fn arb_op() -> impl Strategy<Value = u8> {
    0u8..6
}

fn build_workload(ops: Vec<u8>, files: usize) -> impl FnMut(&mut bio_sim::SimRng) -> Option<Op> {
    let mut i = 0;
    move |rng: &mut bio_sim::SimRng| {
        if i >= ops.len() {
            return None;
        }
        let sel = ops[i];
        i += 1;
        let file = FileRef::Global((rng.below(files as u64)) as usize);
        Some(match sel {
            0 => Op::Write {
                file,
                offset: rng.below(32),
                blocks: 1 + rng.below(3),
            },
            1 => Op::Fsync { file },
            2 => Op::Fdatasync { file },
            3 => Op::Fbarrier { file },
            4 => Op::Fdatabarrier { file },
            _ => Op::Write {
                file,
                offset: 32 + rng.below(32),
                blocks: 1,
            },
        })
    }
}

fn crash_consistent(
    mode: BarrierMode,
    bfs: bool,
    ops: Vec<u8>,
    seed: u64,
    crash_ms: u64,
) -> (usize, usize) {
    let dev = DeviceProfile::ufs().with_barrier_mode(mode);
    let mut cfg = if bfs {
        StackConfig::bfs(dev)
    } else {
        StackConfig::ext4_dr(dev)
    }
    .with_seed(seed)
    .with_history();
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    for _ in 0..3 {
        stack.create_global_file();
    }
    stack.add_thread(Box::new(FnWorkload(build_workload(ops, 3))));
    stack.run_for(SimDuration::from_millis(1 + crash_ms));
    let crash = stack.crash();
    (crash.fs_violations.len(), crash.epoch_violations.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// BarrierFS over a barrier-compliant device: every random workload,
    /// every random crash point, zero violations.
    #[test]
    fn barrierfs_never_violates(
        ops in prop::collection::vec(arb_op(), 10..120),
        seed in 0u64..1000,
        crash_ms in 0u64..40,
    ) {
        let (fs_v, epoch_v) =
            crash_consistent(BarrierMode::LfsInOrderRecovery, true, ops, seed, crash_ms);
        prop_assert_eq!(fs_v, 0, "filesystem violations");
        prop_assert_eq!(epoch_v, 0, "device epoch violations");
    }

    /// Same property under the in-order writeback engine.
    #[test]
    fn in_order_writeback_never_violates(
        ops in prop::collection::vec(arb_op(), 10..80),
        seed in 0u64..1000,
        crash_ms in 0u64..30,
    ) {
        let (fs_v, epoch_v) =
            crash_consistent(BarrierMode::InOrderWriteback, true, ops, seed, crash_ms);
        prop_assert_eq!(fs_v, 0);
        prop_assert_eq!(epoch_v, 0);
    }

    /// Same property under transactional writeback.
    #[test]
    fn transactional_writeback_never_violates(
        ops in prop::collection::vec(arb_op(), 10..80),
        seed in 0u64..1000,
        crash_ms in 0u64..30,
    ) {
        let (fs_v, epoch_v) =
            crash_consistent(BarrierMode::Transactional, true, ops, seed, crash_ms);
        prop_assert_eq!(fs_v, 0);
        prop_assert_eq!(epoch_v, 0);
    }

    /// Legacy EXT4 with full flushes is also always consistent — the
    /// paper's claim is about cost, not correctness.
    #[test]
    fn ext4_full_flush_never_violates(
        ops in prop::collection::vec(arb_op(), 10..80),
        seed in 0u64..1000,
        crash_ms in 0u64..30,
    ) {
        let (fs_v, _) =
            crash_consistent(BarrierMode::LfsInOrderRecovery, false, ops, seed, crash_ms);
        prop_assert_eq!(fs_v, 0);
    }
}

// Determinism meta-property: the same seed replays the same simulation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn simulation_is_deterministic(
        ops in prop::collection::vec(arb_op(), 10..60),
        seed in 0u64..1000,
    ) {
        let a = crash_consistent(BarrierMode::LfsInOrderRecovery, true, ops.clone(), seed, 9);
        let b = crash_consistent(BarrierMode::LfsInOrderRecovery, true, ops, seed, 9);
        prop_assert_eq!(a, b);
    }
}
