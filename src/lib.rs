//! Root facade re-exporting the whole workspace. See README.md.
pub use barrier_io as stack;
pub use bio_block as block;
pub use bio_flash as flash;
pub use bio_fs as fs;
pub use bio_sim as sim;
pub use bio_workloads as workloads;
