//! Property tests for [`RunSet`] against a `HashSet` reference: the
//! sorted-run set must behave exactly like a hash set for every random
//! workload — the same equivalence lock the dense-index migrations use
//! (`seq_table_props.rs`, `dense_equivalence.rs`), applied to the device's
//! drain bookkeeping replacement.

use std::collections::HashSet;

use bio_sim::RunSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random insert/remove/contains interleavings over a small key space
    /// (maximising run splits, merges and bridges): `RunSet` matches a
    /// `HashSet` on every observable after every operation.
    #[test]
    fn run_set_matches_hashset(
        ops in prop::collection::vec((0u8..3, 0u64..48), 1..160)
    ) {
        let mut set = RunSet::new();
        let mut model: HashSet<u64> = HashSet::new();
        for (op, key) in ops {
            match op {
                0 => prop_assert_eq!(set.insert(key), model.insert(key)),
                1 => prop_assert_eq!(set.remove(key), model.remove(&key)),
                _ => prop_assert_eq!(set.contains(key), model.contains(&key)),
            }
            prop_assert_eq!(set.len(), model.len());
            prop_assert_eq!(set.is_empty(), model.is_empty());
            let mut expect: Vec<u64> = model.iter().copied().collect();
            expect.sort_unstable();
            let got: Vec<u64> = set.iter().collect();
            prop_assert_eq!(got, expect, "iteration must be sorted and complete");
        }
    }

    /// The drain lifecycle: build from an ascending snapshot (with gaps),
    /// then retire keys in random order until empty — `from_sorted`
    /// agrees with element-wise insertion and the set drains exactly.
    #[test]
    fn from_sorted_then_drain_matches(
        gaps in prop::collection::vec((1u64..4, 0u64..16), 1..64)
    ) {
        let mut keys: Vec<u64> = Vec::new();
        let mut k = 0u64;
        for (gap, _) in &gaps {
            k += gap;
            keys.push(k);
        }
        let mut set = RunSet::from_sorted(keys.iter().copied());
        let built: RunSet = keys.iter().copied().collect();
        prop_assert_eq!(&set, &built, "from_sorted == insert-by-one");
        prop_assert_eq!(set.len(), keys.len());
        // Retire in a scrambled (but deterministic) order.
        let mut order = keys.clone();
        let n = order.len();
        for (i, (_, sel)) in gaps.iter().enumerate() {
            order.swap(i, (*sel as usize) % n);
        }
        let mut model: HashSet<u64> = keys.into_iter().collect();
        for key in order {
            prop_assert_eq!(set.remove(key), model.remove(&key));
            prop_assert_eq!(set.len(), model.len());
        }
        prop_assert!(set.is_empty());
        prop_assert_eq!(set.runs(), 0);
    }
}
