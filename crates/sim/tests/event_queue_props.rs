//! Property tests for the calendar-queue [`EventQueue`]: the `(time, seq)`
//! ordering contract must be indistinguishable from the old heap-only
//! implementation on arbitrary schedules, including ones that cross the
//! near-ring horizon into the far-future tier.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bio_sim::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

/// Reference model: the old implementation's semantics — one binary heap
/// ordered by `(time, seq)`, clock advancing to each popped timestamp.
struct RefQueue {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    seq: u64,
    now: u64,
}

impl RefQueue {
    fn new() -> RefQueue {
        RefQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    fn push(&mut self, at: u64, v: u64) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, v)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(u64, u64)> {
        self.heap.pop().map(|Reverse((at, _, v))| {
            self.now = at;
            (at, v)
        })
    }

    fn pop_at_or_before(&mut self, deadline: u64) -> Option<(u64, u64)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= deadline => self.pop(),
            _ => None,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Events at one instant pop exactly in insertion order.
    #[test]
    fn fifo_at_equal_timestamps(
        vals in prop::collection::vec(0u64..1000, 1..200),
        t in 0u64..10_000_000,
    ) {
        let mut q = EventQueue::new();
        for &v in &vals {
            q.push(SimTime::from_nanos(t), v);
        }
        let mut popped = Vec::new();
        while let Some((at, v)) = q.pop() {
            prop_assert_eq!(at, SimTime::from_nanos(t));
            popped.push(v);
        }
        prop_assert_eq!(popped, vals);
    }

    /// Pop timestamps never go backwards, whatever the push order, and
    /// every pushed event comes back out.
    #[test]
    fn pop_times_are_monotone(
        sched in prop::collection::vec((0u64..500_000_000, 0u64..100), 1..300),
    ) {
        let mut q = EventQueue::new();
        for &(at, v) in &sched {
            q.push(SimTime::from_nanos(at), v);
        }
        prop_assert_eq!(q.len(), sched.len());
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last, "pop went backwards: {at} < {last}");
            last = at;
            count += 1;
        }
        prop_assert_eq!(count, sched.len());
        prop_assert!(q.is_empty());
    }

    /// Interleaved pushes, pops and bounded pops match the old
    /// `BinaryHeap` ordering exactly. Opcode 3 stretches delays ~1000x so
    /// schedules regularly cross the near-ring horizon into the far tier
    /// and migrate back; opcode 4 interleaves `pop_at_or_before` (both
    /// hits and deadline misses) with later pushes, which exercises the
    /// speculative-activation rollback.
    #[test]
    fn matches_binary_heap_reference(
        script in prop::collection::vec((0u8..5, 0u64..200_000, 0u64..1000), 1..400),
    ) {
        let mut q = EventQueue::new();
        let mut r = RefQueue::new();
        for &(op, dt, v) in &script {
            if op == 0 {
                let got = q.pop().map(|(t, ev)| (t.as_nanos(), ev));
                prop_assert_eq!(got, r.pop());
            } else if op == 4 {
                let deadline = q.now() + SimDuration::from_nanos(dt);
                let got = q.pop_at_or_before(deadline).map(|(t, ev)| (t.as_nanos(), ev));
                prop_assert_eq!(got, r.pop_at_or_before(deadline.as_nanos()));
            } else {
                let dt = if op == 3 { dt * 1000 } else { dt };
                let at = q.now() + SimDuration::from_nanos(dt);
                q.push(at, v);
                r.push(at.as_nanos(), v);
            }
        }
        loop {
            let got = q.pop().map(|(t, ev)| (t.as_nanos(), ev));
            let want = r.pop();
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }

    /// Draining through `pop_batch` yields the same sequence as repeated
    /// `pop` calls.
    #[test]
    fn pop_batch_equals_pop_sequence(
        sched in prop::collection::vec((0u64..100_000, 0u64..50), 1..200),
        max in 1usize..9,
    ) {
        let mut by_pop = EventQueue::new();
        let mut by_batch = EventQueue::new();
        for &(at, v) in &sched {
            by_pop.push(SimTime::from_nanos(at), v);
            by_batch.push(SimTime::from_nanos(at), v);
        }
        let mut a = Vec::new();
        while let Some(e) = by_pop.pop() {
            a.push(e);
        }
        let mut b = Vec::new();
        while by_batch.pop_batch(&mut b, max) > 0 {}
        prop_assert_eq!(a, b);
        prop_assert_eq!(by_pop.now(), by_batch.now());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Cohort draining through `pop_batch_at_or_before` is
    /// indistinguishable from the single-pop loop the `IoStack` drivers
    /// used before batching: same events, same `(time, seq)` order, same
    /// deadline misses, same clock — across interleaved pushes (so
    /// batches drain queues that earlier batches partially emptied, the
    /// steady-state shape of the simulator main loop).
    #[test]
    fn batch_drain_matches_single_pop_reference(
        script in prop::collection::vec((0u8..4, 0u64..150_000, 0u64..1000), 1..300),
        max in 1usize..12,
    ) {
        let mut by_batch = EventQueue::new();
        let mut by_pop = EventQueue::new();
        let mut buf = Vec::new();
        for &(op, dt, v) in &script {
            if op == 0 {
                // Drain both queues to a deadline — one in bounded
                // cohorts, one event at a time — and compare the
                // concatenated sequences.
                let deadline = by_batch.now() + SimDuration::from_nanos(dt);
                let mut batched = Vec::new();
                loop {
                    buf.clear();
                    let n = by_batch.pop_batch_at_or_before(deadline, &mut buf, max);
                    prop_assert_eq!(n, buf.len());
                    prop_assert!(n <= max);
                    if n == 0 {
                        break;
                    }
                    // A batch never mixes instants: it is one cohort.
                    prop_assert!(buf.iter().all(|&(t, _)| t == buf[0].0));
                    batched.extend(buf.iter().copied());
                }
                let mut reference = Vec::new();
                while let Some(e) = by_pop.pop_at_or_before(deadline) {
                    reference.push(e);
                }
                prop_assert_eq!(&batched, &reference);
                prop_assert_eq!(by_batch.now(), by_pop.now());
            } else {
                let dt = if op == 3 { dt * 1000 } else { dt };
                let at = by_batch.now() + SimDuration::from_nanos(dt);
                by_batch.push(at, v);
                by_pop.push(at, v);
            }
        }
        // Final full drain: nothing left behind, order still identical.
        let mut batched = Vec::new();
        loop {
            buf.clear();
            if by_batch.pop_batch_at_or_before(SimTime::MAX, &mut buf, max) == 0 {
                break;
            }
            prop_assert!(buf.iter().all(|&(t, _)| t == buf[0].0));
            batched.extend(buf.iter().copied());
        }
        let mut reference = Vec::new();
        while let Some(e) = by_pop.pop_at_or_before(SimTime::MAX) {
            reference.push(e);
        }
        prop_assert_eq!(batched, reference);
        prop_assert!(by_batch.is_empty() && by_pop.is_empty());
    }
}
