//! Property tests for [`SeqTable`] and [`PagedMap`] against `HashMap`
//! references: the dense tables must behave exactly like maps for every
//! random workload of bump-allocated (but possibly out-of-order-used) keys.

use std::collections::HashMap;

use bio_sim::{PagedMap, SeqTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bump-allocated keys, used (inserted/removed/probed) in arbitrary
    /// order: `SeqTable` matches a `HashMap` on every observable.
    #[test]
    fn seq_table_matches_hashmap(
        ops in prop::collection::vec((0u8..4, 0u64..64), 1..120)
    ) {
        let mut table: SeqTable<u64> = SeqTable::new();
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut allocated: Vec<u64> = Vec::new();
        let mut next_key = 0u64;
        for (op, sel) in ops {
            match op {
                0 | 1 => {
                    // Allocate a fresh key; occasionally skip numbers, as
                    // coalescing request allocators do.
                    next_key += 1 + (sel % 3);
                    let key = next_key;
                    allocated.push(key);
                    prop_assert_eq!(table.insert(key, sel), model.insert(key, sel));
                }
                2 => {
                    if !allocated.is_empty() {
                        let key = allocated[(sel as usize) % allocated.len()];
                        prop_assert_eq!(table.remove(key), model.remove(&key));
                    }
                }
                _ => {
                    // Probe known keys plus never-allocated ones.
                    let key = sel;
                    prop_assert_eq!(table.get(key).copied(), model.get(&key).copied());
                    prop_assert_eq!(table.contains(key), model.contains_key(&key));
                }
            }
            prop_assert_eq!(table.len(), model.len());
            prop_assert_eq!(table.is_empty(), model.is_empty());
            let mut expect: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            expect.sort();
            let got: Vec<(u64, u64)> = table.iter().map(|(k, &v)| (k, v)).collect();
            prop_assert_eq!(got, expect, "iteration must be key-ordered and complete");
        }
    }

    /// `PagedMap` matches a `HashMap` under random insert/remove/get over
    /// a key range spanning several leaf pages (and the gaps between).
    #[test]
    fn paged_map_matches_hashmap(
        ops in prop::collection::vec((0u8..3, 0u64..40_000, 0u64..1024), 1..120)
    ) {
        let mut map: PagedMap<u64> = PagedMap::with_key_capacity(4096);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (op, key, val) in ops {
            match op {
                0 => {
                    prop_assert_eq!(map.insert(key, val), model.insert(key, val));
                }
                1 => {
                    prop_assert_eq!(map.remove(key), model.remove(&key));
                }
                _ => {
                    prop_assert_eq!(map.get(key), model.get(&key).copied());
                }
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.is_empty(), model.is_empty());
        }
        let mut expect: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        expect.sort();
        let got: Vec<(u64, u64)> = map.iter().collect();
        prop_assert_eq!(got, expect, "iteration must be key-ordered and complete");
    }
}
