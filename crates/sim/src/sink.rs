//! [`ActionSink`] — a reusable output buffer for Mealy-machine layers.
//!
//! Every layer of the stack (filesystem, block layer, device) is a state
//! machine that turns inputs into a list of output actions. Handing each
//! call a fresh `Vec` puts an allocation on the per-event hot path; an
//! `ActionSink` is owned by the embedding simulator and reused across
//! events, so steady-state routing performs no allocation at all.
//!
//! The protocol is simple: the caller passes `&mut ActionSink<A>` down,
//! the layer `push`es actions, the caller drains them (in order) and the
//! emptied buffer keeps its capacity for the next event.
//!
//! ```
//! use bio_sim::ActionSink;
//!
//! let mut sink: ActionSink<u32> = ActionSink::new();
//! sink.push(1);
//! sink.push(2);
//! let drained: Vec<u32> = sink.drain().collect();
//! assert_eq!(drained, vec![1, 2]);
//! assert!(sink.is_empty()); // capacity retained for the next event
//! ```

/// A reusable, order-preserving buffer of layer output actions.
#[derive(Debug, Clone)]
pub struct ActionSink<A> {
    buf: Vec<A>,
}

impl<A> Default for ActionSink<A> {
    fn default() -> Self {
        Self::new()
    }
}

impl<A> ActionSink<A> {
    /// Creates an empty sink (no allocation until the first push).
    pub const fn new() -> Self {
        ActionSink { buf: Vec::new() }
    }

    /// Creates a sink with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        ActionSink {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends an action.
    #[inline]
    pub fn push(&mut self, action: A) {
        self.buf.push(action);
    }

    /// Number of buffered actions.
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The buffered actions, in emission order.
    #[inline]
    pub fn as_slice(&self) -> &[A] {
        &self.buf
    }

    /// Iterates the buffered actions without draining them.
    pub fn iter(&self) -> std::slice::Iter<'_, A> {
        self.buf.iter()
    }

    /// Removes and returns all buffered actions in order; capacity is
    /// retained.
    pub fn drain(&mut self) -> std::vec::Drain<'_, A> {
        self.buf.drain(..)
    }

    /// Drops the buffered actions, retaining capacity.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Detaches the backing buffer (for borrow-splitting work loops);
    /// return it with [`ActionSink::restore`] to keep the capacity.
    pub fn take_buf(&mut self) -> Vec<A> {
        std::mem::take(&mut self.buf)
    }

    /// Re-attaches a buffer taken with [`ActionSink::take_buf`]. The
    /// buffer is cleared; its capacity is what is being recycled. Actions
    /// pushed into the sink since the `take_buf` are kept — a non-empty
    /// sink only forgoes the capacity recycling (and trips a debug assert,
    /// since the take/restore work loops are expected to fully drain
    /// before anything pushes again).
    pub fn restore(&mut self, mut buf: Vec<A>) {
        debug_assert!(
            self.buf.is_empty(),
            "restore over pending actions: keep them, skip recycling"
        );
        buf.clear();
        if self.buf.is_empty() && buf.capacity() > self.buf.capacity() {
            self.buf = buf;
        }
    }
}

impl<A> Extend<A> for ActionSink<A> {
    fn extend<T: IntoIterator<Item = A>>(&mut self, iter: T) {
        self.buf.extend(iter);
    }
}

impl<'a, A> IntoIterator for &'a ActionSink<A> {
    type Item = &'a A;
    type IntoIter = std::slice::Iter<'a, A>;
    fn into_iter(self) -> Self::IntoIter {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_roundtrip_preserves_order_and_capacity() {
        let mut s = ActionSink::with_capacity(8);
        for i in 0..5 {
            s.push(i);
        }
        assert_eq!(s.len(), 5);
        assert_eq!(s.as_slice(), &[0, 1, 2, 3, 4]);
        let out: Vec<i32> = s.drain().collect();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(s.is_empty());
        assert!(s.buf.capacity() >= 8, "capacity survives draining");
    }

    #[test]
    fn take_and_restore_recycles_the_buffer() {
        let mut s: ActionSink<u8> = ActionSink::new();
        s.push(1);
        let mut buf = s.take_buf();
        assert!(s.is_empty());
        assert_eq!(buf, vec![1]);
        buf.push(2);
        let cap = buf.capacity();
        s.restore(buf);
        assert!(s.is_empty());
        assert_eq!(s.buf.capacity(), cap);
    }

    #[test]
    fn extend_and_iter() {
        let mut s: ActionSink<u8> = ActionSink::new();
        s.extend([1, 2, 3]);
        let doubled: Vec<u8> = (&s).into_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        s.clear();
        assert!(s.is_empty());
    }
}
