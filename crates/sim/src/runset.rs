//! [`RunSet`] — a sorted-run set for dense, mostly-contiguous `u64` keys.
//!
//! The device's drain bookkeeping (flush / preflush / FUA pending-program
//! sets) tracks *cache destage sequences*: bump-allocated, snapshotted in
//! ascending order, and retired one by one. A `HashSet` spends a hash and
//! a probe per membership change on keys that are, in practice, one or two
//! contiguous ranges. This set stores them as sorted half-open runs
//! `[start, end)`: building from a sorted snapshot coalesces into O(runs)
//! memory, membership is a binary search over runs, and removal splits at
//! most one run. For the drain workload (runs ≈ 1) every operation is
//! effectively O(1) with two `u64`s of storage.

/// A set of `u64` keys stored as sorted, disjoint, non-adjacent half-open
/// runs `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunSet {
    runs: Vec<(u64, u64)>,
    len: usize,
}

impl RunSet {
    /// An empty set.
    pub fn new() -> RunSet {
        RunSet::default()
    }

    /// Builds from an ascending key sequence, coalescing adjacent keys
    /// into runs.
    ///
    /// # Panics
    ///
    /// Panics on `u64::MAX` (see [`RunSet::insert`]); debug-asserts that
    /// the input is strictly ascending (the cache's pending-sequence
    /// snapshots are; an unsorted source must insert one by one instead).
    pub fn from_sorted(keys: impl IntoIterator<Item = u64>) -> RunSet {
        let mut set = RunSet::new();
        for k in keys {
            assert_ne!(k, u64::MAX, "RunSet keys must be below u64::MAX");
            if let Some((_, end)) = set.runs.last_mut() {
                debug_assert!(k >= *end, "from_sorted input not ascending at {k}");
                if k == *end {
                    *end += 1;
                    set.len += 1;
                    continue;
                }
            }
            set.runs.push((k, k + 1));
            set.len += 1;
        }
        set
    }

    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored runs (diagnostics; memory is proportional to it).
    pub fn runs(&self) -> usize {
        self.runs.len()
    }

    /// Index of the run containing `key`, if any.
    fn run_of(&self, key: u64) -> Option<usize> {
        let idx = self.runs.partition_point(|&(start, _)| start <= key);
        if idx == 0 {
            return None;
        }
        (key < self.runs[idx - 1].1).then_some(idx - 1)
    }

    /// True when `key` is in the set.
    pub fn contains(&self, key: u64) -> bool {
        self.run_of(key).is_some()
    }

    /// Inserts `key`; returns false if it was already present. Extends or
    /// merges neighbouring runs where possible.
    ///
    /// # Panics
    ///
    /// Panics on `u64::MAX`: the half-open `[start, end)` representation
    /// cannot express a run ending past it, and a wrapped `end` would
    /// corrupt the set silently. The intended keys are bump-allocated
    /// sequences, which never get near the limit — like [`PagedMap`]'s
    /// key cap, an absurd key must fail loudly.
    ///
    /// [`PagedMap`]: crate::PagedMap
    pub fn insert(&mut self, key: u64) -> bool {
        assert_ne!(key, u64::MAX, "RunSet keys must be below u64::MAX");
        if self.contains(key) {
            return false;
        }
        // First run strictly after `key`.
        let idx = self.runs.partition_point(|&(start, _)| start <= key);
        let touches_prev = idx > 0 && self.runs[idx - 1].1 == key;
        let touches_next = idx < self.runs.len() && self.runs[idx].0 == key + 1;
        match (touches_prev, touches_next) {
            (true, true) => {
                // Bridges two runs: merge them.
                self.runs[idx - 1].1 = self.runs[idx].1;
                self.runs.remove(idx);
            }
            (true, false) => self.runs[idx - 1].1 += 1,
            (false, true) => self.runs[idx].0 -= 1,
            (false, false) => self.runs.insert(idx, (key, key + 1)),
        }
        self.len += 1;
        true
    }

    /// Removes `key`; returns false if it was absent. Splits the
    /// containing run when the key is interior.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(i) = self.run_of(key) else {
            return false;
        };
        let (start, end) = self.runs[i];
        match (key == start, key + 1 == end) {
            (true, true) => {
                self.runs.remove(i);
            }
            (true, false) => self.runs[i].0 += 1,
            (false, true) => self.runs[i].1 -= 1,
            (false, false) => {
                self.runs[i].1 = key;
                self.runs.insert(i + 1, (key + 1, end));
            }
        }
        self.len -= 1;
        true
    }

    /// Iterates over the keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|&(start, end)| start..end)
    }
}

impl FromIterator<u64> for RunSet {
    /// Collects arbitrary-order keys (duplicates ignored).
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> RunSet {
        let mut set = RunSet::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_sorted_coalesces_contiguous_keys() {
        let s = RunSet::from_sorted([3, 4, 5, 9, 10, 20]);
        assert_eq!(s.len(), 6);
        assert_eq!(s.runs(), 3);
        assert!(s.contains(4) && s.contains(9) && s.contains(20));
        assert!(!s.contains(6) && !s.contains(0) && !s.contains(21));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 4, 5, 9, 10, 20]);
    }

    #[test]
    fn remove_splits_and_drains() {
        let mut s = RunSet::from_sorted(0..8);
        assert_eq!(s.runs(), 1);
        assert!(s.remove(3), "interior removal splits the run");
        assert_eq!(s.runs(), 2);
        assert!(!s.contains(3));
        assert!(!s.remove(3), "double remove detected");
        for k in [0, 1, 2, 4, 5, 6, 7] {
            assert!(s.remove(k), "removing {k}");
        }
        assert!(s.is_empty());
        assert_eq!(s.runs(), 0);
    }

    #[test]
    fn edge_removals_shrink_runs() {
        let mut s = RunSet::from_sorted(10..14);
        assert!(s.remove(10), "front");
        assert!(s.remove(13), "back");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![11, 12]);
        assert_eq!(s.runs(), 1);
    }

    #[test]
    fn insert_merges_neighbours() {
        let mut s = RunSet::new();
        assert!(s.insert(5));
        assert!(s.insert(7));
        assert_eq!(s.runs(), 2);
        assert!(s.insert(6), "bridge merges both runs");
        assert_eq!(s.runs(), 1);
        assert!(!s.insert(6), "duplicate insert detected");
        assert!(s.insert(4));
        assert!(s.insert(8));
        assert_eq!(s.runs(), 1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn from_iter_accepts_unordered_input() {
        let s: RunSet = [9u64, 2, 3, 9, 1].into_iter().collect();
        assert_eq!(s.len(), 4, "duplicate ignored");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 2, 3, 9]);
    }

    #[test]
    fn max_key_is_rejected_loudly() {
        // u64::MAX cannot be represented as a half-open run; it must fail
        // with a clear message, not wrap and corrupt the set.
        let hit = std::panic::catch_unwind(|| {
            let mut s = RunSet::new();
            s.insert(u64::MAX);
        });
        assert!(hit.is_err());
        let near = u64::MAX - 1;
        let mut s = RunSet::new();
        assert!(s.insert(near), "the largest representable key works");
        assert!(s.contains(near));
        assert!(s.remove(near));
    }

    #[test]
    fn empty_set_behaves() {
        let mut s = RunSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert!(!s.remove(0));
        assert_eq!(s.iter().count(), 0);
    }
}
