//! Deterministic pseudo-random number generation.
//!
//! Every stochastic element of the simulation (workload addresses, latency
//! jitter, crash points, orderless persist subsets) draws from [`SimRng`], a
//! xoshiro256++ generator seeded explicitly. Identical seeds produce
//! identical simulations, which is what makes the experiment harness and the
//! property tests reproducible.
//!
//! ```
//! use bio_sim::SimRng;
//!
//! let mut a = SimRng::new(42);
//! let mut b = SimRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A deterministic xoshiro256++ PRNG.
///
/// Not cryptographically secure; intended purely for simulation
/// reproducibility. The state is seeded via SplitMix64 so that even trivial
/// seeds (0, 1, 2, ...) produce well-mixed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated thread or component its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "SimRng::below called with zero bound");
        // Lemire's multiply-then-shift rejection-free-enough reduction; the
        // modulo bias for 64-bit state and simulation-sized bounds is
        // negligible, but we still do one rejection pass for exactness.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "SimRng::range: lo > hi");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for arrival-process jitter. Returns 0 for non-positive means.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u = 1.0 - self.f64(); // (0, 1]
        -mean * u.ln()
    }

    /// A crude normal via the central limit theorem (12 uniforms); good
    /// enough for latency jitter and avoids pulling in special functions.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.f64();
        }
        mean + (acc - 6.0) * stddev
    }

    /// Pareto-distributed value with minimum `xm` and shape `alpha`; used to
    /// model heavy-tailed device stalls (GC pauses).
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 0` or `xm <= 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(alpha > 0.0 && xm > 0.0, "invalid pareto parameters");
        let u = 1.0 - self.f64(); // (0, 1]
        xm / u.powf(1.0 / alpha)
    }

    /// Chooses a uniformly random element of `items`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }

    /// Fisher–Yates shuffles `items` in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut rng = SimRng::new(4);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "range endpoints should both occur");
        assert_eq!(rng.range(9, 9), 9);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = SimRng::new(5);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = SimRng::new(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp(100.0)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 5.0, "exp mean {mean} off");
        assert_eq!(rng.exp(0.0), 0.0);
    }

    #[test]
    fn normal_has_requested_moments() {
        let mut rng = SimRng::new(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
        assert!((var.sqrt() - 2.0).abs() < 0.1);
    }

    #[test]
    fn pareto_exceeds_minimum() {
        let mut rng = SimRng::new(9);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(10);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.1));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(11);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let items = [1, 2, 3];
        assert!(items.contains(rng.choose(&items).unwrap()));

        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle should permute");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SimRng::new(12);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
