//! Simulated time.
//!
//! All simulation timing uses nanosecond-resolution virtual time. Two
//! newtypes keep instants and durations from being confused:
//! [`SimTime`] is a point on the simulation clock and [`SimDuration`] is a
//! span between two points. Both are thin wrappers around `u64` nanoseconds
//! and are `Copy`.
//!
//! ```
//! use bio_sim::{SimDuration, SimTime};
//!
//! let t0 = SimTime::ZERO;
//! let t1 = t0 + SimDuration::from_micros(70);
//! assert_eq!(t1 - t0, SimDuration::from_micros(70));
//! assert!(t1 > t0);
//! ```

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since simulation start.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds since simulation start.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds since simulation start.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from seconds since simulation start.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since an earlier instant.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating duration since another instant (zero if `other` is later).
    #[inline]
    pub fn saturating_since(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative values clamp to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a float factor, rounding to nanoseconds.
    /// Negative factors clamp to zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor).round().max(0.0) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    /// Human-scaled rendering: picks ns/µs/ms/s based on magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_millis(3).as_millis(), 3);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_micros(100);
        let d = SimDuration::from_micros(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn since_is_difference() {
        let a = SimTime::from_nanos(500);
        let b = SimTime::from_nanos(1_700);
        assert_eq!(b.since(a).as_nanos(), 1_200);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn from_micros_f64_rounds() {
        assert_eq!(SimDuration::from_micros_f64(1.0004).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_micros_f64(1.0006).as_nanos(), 1_001);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::MAX + SimDuration::from_nanos(1), SimTime::MAX);
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }
}
