//! Time-series recording for queue-depth style measurements.
//!
//! Figures 10 and 12 of the paper plot the device command-queue depth over
//! time. [`TimeSeries`] records `(time, value)` step changes and can compute
//! the time-weighted average, the maximum, and a down-sampled trace for
//! plotting.

use crate::time::{SimDuration, SimTime};

/// A step-function time series: the value holds from each sample until the
/// next one.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Records that the value became `value` at time `t`.
    ///
    /// Out-of-order samples are a logic error and panic in debug builds;
    /// samples at the same instant overwrite (the last write wins, matching
    /// "state at the end of the event cascade").
    pub fn record(&mut self, t: SimTime, value: f64) {
        if let Some(last) = self.points.last_mut() {
            debug_assert!(last.0 <= t, "time series went backwards");
            if last.0 == t {
                last.1 = value;
                return;
            }
            // Skip redundant samples to bound memory on long runs.
            if (last.1 - value).abs() < f64::EPSILON {
                return;
            }
        }
        self.points.push((t, value));
    }

    /// Number of recorded step changes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw `(time, value)` step points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The value in effect at time `t` (0.0 before the first sample).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by(|p| p.0.cmp(&t)) {
            Ok(i) => self.points[i].1,
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Time-weighted mean over `[from, to)`. Returns 0 for empty windows.
    pub fn weighted_mean(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0f64;
        let mut cursor = from;
        let mut value = self.value_at(from);
        let start = self.points.partition_point(|p| p.0 <= from);
        for &(t, v) in &self.points[start..] {
            if t >= to {
                break;
            }
            acc += value * t.since(cursor).as_nanos() as f64;
            cursor = t;
            value = v;
        }
        acc += value * to.since(cursor).as_nanos() as f64;
        acc / to.since(from).as_nanos() as f64
    }

    /// Maximum value observed within `[from, to)` (including the value
    /// carried into the window).
    pub fn max_in(&self, from: SimTime, to: SimTime) -> f64 {
        let mut max = self.value_at(from);
        let start = self.points.partition_point(|p| p.0 <= from);
        for &(t, v) in &self.points[start..] {
            if t >= to {
                break;
            }
            max = max.max(v);
        }
        max
    }

    /// Down-samples the series to at most `buckets` evenly spaced samples in
    /// `[from, to)`, returning `(bucket_start, time_weighted_mean)` pairs.
    /// Suitable for ASCII plots of Figs 10/12.
    pub fn resample(&self, from: SimTime, to: SimTime, buckets: usize) -> Vec<(SimTime, f64)> {
        if buckets == 0 || to <= from {
            return Vec::new();
        }
        let span = to.since(from);
        let step = SimDuration::from_nanos((span.as_nanos() / buckets as u64).max(1));
        let mut out = Vec::with_capacity(buckets);
        let mut start = from;
        for _ in 0..buckets {
            let end = (start + step).min(to);
            out.push((start, self.weighted_mean(start, end)));
            start = end;
            if start >= to {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn value_at_steps() {
        let mut ts = TimeSeries::new();
        ts.record(us(10), 1.0);
        ts.record(us(20), 3.0);
        assert_eq!(ts.value_at(us(5)), 0.0);
        assert_eq!(ts.value_at(us(10)), 1.0);
        assert_eq!(ts.value_at(us(15)), 1.0);
        assert_eq!(ts.value_at(us(20)), 3.0);
        assert_eq!(ts.value_at(us(99)), 3.0);
    }

    #[test]
    fn same_instant_overwrites() {
        let mut ts = TimeSeries::new();
        ts.record(us(10), 1.0);
        ts.record(us(10), 2.0);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.value_at(us(10)), 2.0);
    }

    #[test]
    fn redundant_samples_skipped() {
        let mut ts = TimeSeries::new();
        ts.record(us(1), 4.0);
        ts.record(us(2), 4.0);
        ts.record(us(3), 5.0);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn weighted_mean_of_step() {
        let mut ts = TimeSeries::new();
        // 0 until t=10, then 2 until t=20, then 4.
        ts.record(us(10), 2.0);
        ts.record(us(20), 4.0);
        // Window [0, 20): half zero, half 2 -> 1.0
        assert!((ts.weighted_mean(us(0), us(20)) - 1.0).abs() < 1e-9);
        // Window [10, 30): half 2, half 4 -> 3.0
        assert!((ts.weighted_mean(us(10), us(30)) - 3.0).abs() < 1e-9);
        // Degenerate window.
        assert_eq!(ts.weighted_mean(us(5), us(5)), 0.0);
    }

    #[test]
    fn max_in_window() {
        let mut ts = TimeSeries::new();
        ts.record(us(10), 2.0);
        ts.record(us(20), 9.0);
        ts.record(us(30), 1.0);
        assert_eq!(ts.max_in(us(0), us(15)), 2.0);
        assert_eq!(ts.max_in(us(0), us(25)), 9.0);
        // Value carried into the window counts.
        assert_eq!(ts.max_in(us(21), us(25)), 9.0);
        assert_eq!(ts.max_in(us(31), us(40)), 1.0);
    }

    #[test]
    fn resample_covers_window() {
        let mut ts = TimeSeries::new();
        ts.record(us(0), 1.0);
        ts.record(us(50), 3.0);
        let samples = ts.resample(us(0), us(100), 10);
        assert_eq!(samples.len(), 10);
        assert!((samples[0].1 - 1.0).abs() < 1e-9);
        assert!((samples[9].1 - 3.0).abs() < 1e-9);
        assert!(ts.resample(us(10), us(10), 4).is_empty());
        assert!(ts.resample(us(0), us(100), 0).is_empty());
    }
}
