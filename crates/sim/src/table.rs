//! [`SeqTable`] — a dense, sliding-window map for monotonically allocated
//! integer keys.
//!
//! Every hot-path table in the stack (cache destage sequences, in-flight
//! destage records, filesystem request continuations) is keyed by a small
//! integer handed out by a bump counter: keys are *dense*, *monotonic*, and
//! entries die roughly in allocation order. Hashing such keys is pure
//! overhead, so this table stores entries in a ring indexed by
//! `key - base`, where `base` is the oldest key that may still be live.
//!
//! ## Invariants the callers rely on
//!
//! * Keys come from a bump allocator and are never reused after removal.
//!   Insertion order may deviate from key order (e.g. the orderless
//!   destage engine starts programs out of transfer order); the window
//!   extends in both directions to absorb that.
//! * A key is detected as dead — `get`/`remove` return `None` — both when
//!   it was never inserted and when it has already been removed. Stale or
//!   replayed keys therefore cannot alias a different live entry, which is
//!   what makes graceful duplicate-completion handling possible upstack
//!   (the window base acts as the generation check).
//! * Iteration order is key order (== allocation order), which the
//!   writeback cache uses as transfer order.
//!
//! Memory is proportional to the *span* between the oldest live key and
//! the newest, not to the largest key ever allocated: completed prefixes
//! are reclaimed as the window's front advances.

use std::collections::VecDeque;

/// Entries per [`PagedMap`] page (a 4096-entry directory leaf).
const PAGE_SIZE: usize = 4096;

/// A dense, direct-indexed map from small `u64` keys to `T`, backed by a
/// page directory: `map[key]` is two loads (page pointer, slot), and
/// memory plus zero-fill cost scale with the *touched* key pages, not the
/// largest key. This matters for LBA-indexed tables: a device's address
/// space is locally dense (metadata region, journal, data extents) but can
/// have large untouched gaps between regions, which a flat `Vec` would pay
/// to zero on first touch past the gap.
#[derive(Debug, Clone, Default)]
pub struct PagedMap<T> {
    pages: Vec<Option<Box<[Option<T>]>>>,
    live: usize,
}

/// Allocates one zeroed leaf page directly on the heap. Kept out of line
/// (and cold): building the page as a stack temporary inside `insert`
/// would bloat the hot path's frame with a ~100 KiB array and make every
/// call pay stack-probe costs.
#[cold]
#[inline(never)]
fn new_page<T: Copy>() -> Box<[Option<T>]> {
    vec![None; PAGE_SIZE].into_boxed_slice()
}

impl<T: Copy> PagedMap<T> {
    /// An empty map with no directory reserved.
    pub fn new() -> PagedMap<T> {
        PagedMap {
            pages: Vec::new(),
            live: 0,
        }
    }

    /// An empty map whose page directory is pre-sized for keys below
    /// `keys` (the directory itself is just pointers; no leaf pages are
    /// allocated until written).
    pub fn with_key_capacity(keys: usize) -> PagedMap<T> {
        PagedMap {
            pages: Vec::with_capacity(keys.div_ceil(PAGE_SIZE)),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Splits a key into (page, slot) indices. Computed in `u64` and
    /// converted with `try_from` so keys beyond `usize` range (32-bit
    /// targets) read as absent instead of aliasing a wrapped index.
    #[inline]
    fn split(key: u64) -> Option<(usize, usize)> {
        let pi = usize::try_from(key / PAGE_SIZE as u64).ok()?;
        Some((pi, (key % PAGE_SIZE as u64) as usize))
    }

    /// The entry at `key`, if present.
    #[inline]
    pub fn get(&self, key: u64) -> Option<T> {
        let (pi, si) = Self::split(key)?;
        let page = self.pages.get(pi)?.as_ref()?;
        page[si]
    }

    /// Inserts `value` at `key`, returning any previous entry. Allocates
    /// (and zero-fills) only the 4096-entry page containing `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key >= 2^32`. The map is for dense small keys (block
    /// addresses, bump-allocated ids); the directory grows linearly with
    /// the largest key's page, so an absurd key must fail loudly rather
    /// than attempt a multi-gigabyte directory allocation. 2^32 keys
    /// (a 16 TiB device at 4 KiB blocks) caps the directory at 8 MiB.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        assert!(
            key < 1 << 32,
            "PagedMap key {key} out of range: dense keys must stay below 2^32"
        );
        let (pi, si) = Self::split(key).expect("key < 2^32 splits on any target");
        if pi >= self.pages.len() {
            self.pages.resize_with(pi + 1, || None);
        }
        let page = self.pages[pi].get_or_insert_with(new_page);
        let old = page[si].replace(value);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    /// Removes and returns the entry at `key`.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let (pi, si) = Self::split(key)?;
        let old = self.pages.get_mut(pi)?.as_mut()?[si].take();
        if old.is_some() {
            self.live -= 1;
        }
        old
    }

    /// Iterates over `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, T)> + '_ {
        self.pages.iter().enumerate().flat_map(|(pi, page)| {
            page.iter().flat_map(move |p| {
                p.iter()
                    .enumerate()
                    .filter_map(move |(si, s)| s.map(|v| ((pi * PAGE_SIZE + si) as u64, v)))
            })
        })
    }
}

/// Dense sliding-window map from monotonically allocated `u64` keys to `T`.
#[derive(Debug, Clone)]
pub struct SeqTable<T> {
    /// `slots[i]` holds the entry for key `base + i`.
    slots: VecDeque<Option<T>>,
    /// Key of `slots[0]`; keys below this are known-dead.
    base: u64,
    /// Number of live entries.
    len: usize,
}

impl<T> Default for SeqTable<T> {
    fn default() -> Self {
        SeqTable::new()
    }
}

impl<T> SeqTable<T> {
    /// Creates an empty table with its window starting at key 0.
    pub fn new() -> SeqTable<T> {
        SeqTable {
            slots: VecDeque::new(),
            base: 0,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn index_of(&self, key: u64) -> Option<usize> {
        if key < self.base {
            return None;
        }
        let idx = (key - self.base) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// Inserts `value` at `key`, returning any previous entry. The caller
    /// must never reuse a key that has already been removed (bump-allocated
    /// keys guarantee this); re-opening the window below a reclaimed key
    /// would make that key look live again.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        if self.slots.is_empty() {
            // Fresh window: start it at the first key to avoid a dead
            // prefix of empty slots.
            self.base = key;
        } else if key < self.base {
            // Out-of-key-order insert (keys are bump-allocated but may be
            // *used* out of order): extend the window downwards.
            for _ in key..self.base {
                self.slots.push_front(None);
            }
            self.base = key;
        }
        let idx = (key - self.base) as usize;
        while self.slots.len() <= idx {
            self.slots.push_back(None);
        }
        let old = self.slots[idx].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// The entry at `key`, if live.
    pub fn get(&self, key: u64) -> Option<&T> {
        let idx = self.index_of(key)?;
        self.slots[idx].as_ref()
    }

    /// Mutable access to the entry at `key`, if live.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        let idx = self.index_of(key)?;
        self.slots[idx].as_mut()
    }

    /// True when `key` is live.
    pub fn contains(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the entry at `key`. Unknown, stale and
    /// already-removed keys all return `None`.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        let idx = self.index_of(key)?;
        let old = self.slots[idx].take();
        if old.is_some() {
            self.len -= 1;
            // Reclaim the dead prefix so memory tracks the live span.
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.base += 1;
            }
        }
        old
    }

    /// Iterates over `(key, &entry)` pairs in key (= allocation) order.
    ///
    /// The iterator is a named type ([`SeqTableIter`]) so containers that
    /// wrap a `SeqTable` behind another enum (e.g. a dual-backend table
    /// used for equivalence testing) can embed it without boxing.
    pub fn iter(&self) -> SeqTableIter<'_, T> {
        SeqTableIter {
            inner: self.slots.iter().enumerate(),
            base: self.base,
        }
    }

    /// Iterates over `(key, &mut entry)` pairs in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> + '_ {
        let base = self.base;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, s)| s.as_mut().map(|v| (base + i as u64, v)))
    }
}

/// Key-ordered iterator over a [`SeqTable`]'s live entries.
#[derive(Debug)]
pub struct SeqTableIter<'a, T> {
    inner: std::iter::Enumerate<std::collections::vec_deque::Iter<'a, Option<T>>>,
    base: u64,
}

impl<'a, T> Iterator for SeqTableIter<'a, T> {
    type Item = (u64, &'a T);

    fn next(&mut self) -> Option<(u64, &'a T)> {
        for (i, slot) in self.inner.by_ref() {
            if let Some(v) = slot.as_ref() {
                return Some((self.base + i as u64, v));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = SeqTable::new();
        assert!(t.is_empty());
        t.insert(1, "a");
        t.insert(2, "b");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(1), Some(&"a"));
        assert_eq!(t.remove(1), Some("a"));
        assert_eq!(t.remove(1), None, "double remove is detected");
        assert_eq!(t.get(1), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn window_starts_at_first_key() {
        let mut t = SeqTable::new();
        t.insert(1_000, 7u32);
        assert_eq!(t.get(1_000), Some(&7));
        assert_eq!(t.get(999), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn front_removal_advances_base_and_reclaims() {
        let mut t = SeqTable::new();
        for k in 10..20u64 {
            t.insert(k, k * 2);
        }
        for k in 10..15u64 {
            assert_eq!(t.remove(k), Some(k * 2));
        }
        // Keys below the advanced base read as dead, not as aliases.
        assert_eq!(t.get(12), None);
        assert_eq!(t.remove(12), None);
        assert_eq!(t.len(), 5);
        assert_eq!(
            t.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            vec![15, 16, 17, 18, 19]
        );
    }

    #[test]
    fn out_of_order_removal_keeps_holes_dead() {
        let mut t = SeqTable::new();
        for k in 0..6u64 {
            t.insert(k, k);
        }
        t.remove(3);
        assert_eq!(t.get(3), None);
        assert_eq!(
            t.iter().map(|(k, _)| k).collect::<Vec<_>>(),
            vec![0, 1, 2, 4, 5]
        );
        // Removing the front reclaims through the hole.
        t.remove(0);
        t.remove(1);
        t.remove(2);
        assert_eq!(t.iter().map(|(k, _)| k).collect::<Vec<_>>(), vec![4, 5]);
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t = SeqTable::new();
        t.insert(5, 1u32);
        *t.get_mut(5).unwrap() = 9;
        assert_eq!(t.get(5), Some(&9));
        assert!(t.contains(5));
        assert!(!t.contains(4));
    }

    #[test]
    fn paged_map_rejects_absurd_keys_loudly() {
        // Probing a huge key is harmless; inserting one must fail with a
        // clear message instead of attempting a giant directory.
        let mut m: PagedMap<u32> = PagedMap::new();
        m.insert(5, 1);
        assert_eq!(m.get(1 << 40), None);
        assert_eq!(m.remove(1 << 40), None);
        assert_eq!(m.get(5), Some(1));
        let huge = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.insert(1 << 32, 2);
        }));
        assert!(huge.is_err(), "out-of-range insert must panic, not OOM");
    }

    #[test]
    fn iter_mut_visits_live_entries_in_key_order() {
        let mut t = SeqTable::new();
        for k in 3..8u64 {
            t.insert(k, k);
        }
        t.remove(5);
        for (k, v) in t.iter_mut() {
            *v = k * 10;
        }
        assert_eq!(
            t.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>(),
            vec![(3, 30), (4, 40), (6, 60), (7, 70)]
        );
    }

    #[test]
    fn inserts_below_base_extend_window_downwards() {
        let mut t = SeqTable::new();
        // Keys used out of allocation order (orderless destage picking).
        t.insert(5, "e");
        t.insert(3, "c");
        t.insert(7, "g");
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.iter().collect::<Vec<_>>(),
            vec![(3, &"c"), (5, &"e"), (7, &"g")]
        );
        assert_eq!(t.get(4), None);
        assert_eq!(t.remove(3), Some("c"));
        assert_eq!(t.remove(3), None, "reclaimed key stays dead");
        assert_eq!(t.get(5), Some(&"e"));
    }
}
