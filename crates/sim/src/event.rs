//! The event queue and simulation executor scaffolding.
//!
//! A discrete-event simulation advances virtual time by repeatedly popping
//! the earliest scheduled event. [`EventQueue`] is a priority queue ordered
//! by `(time, sequence)` — the sequence number makes events scheduled for the
//! same instant pop in FIFO order, which keeps simulations deterministic.
//!
//! ```
//! use bio_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_micros(5), "late");
//! q.push(SimTime::from_micros(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_micros(1), "early"));
//! ```

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// An entry in the queue. Only `at` and `seq` participate in ordering; the
/// payload is opaque.
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so the `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic min-priority queue of timed events.
///
/// Events at equal timestamps are delivered in insertion order.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics,
    /// in release builds the event fires "now" (monotonicity is preserved).
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after a relative delay from the current time.
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (delivered after everything
    /// already scheduled for this instant).
    pub fn push_now(&mut self, event: E) {
        self.push(self.now, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(3));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "a");
        q.pop();
        q.push_after(SimDuration::from_micros(5), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn push_now_preserves_fifo_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(1), "first");
        q.pop();
        q.push_now("second");
        q.push_now("third");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_nanos(3), 3);
        q.push(SimTime::from_nanos(8), 8);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 8);
        assert!(q.pop().is_none());
    }
}
