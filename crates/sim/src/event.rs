//! The event queue and simulation executor scaffolding.
//!
//! A discrete-event simulation advances virtual time by repeatedly popping
//! the earliest scheduled event. [`EventQueue`] is a deterministic
//! min-priority queue ordered by `(time, sequence)` — the sequence number
//! makes events scheduled for the same instant pop in FIFO order, which
//! keeps simulations deterministic.
//!
//! Internally the queue is a **two-tier bucketed calendar queue** rather
//! than one big binary heap:
//!
//! * near-future events live in a ring of fixed-width time buckets; the
//!   earliest bucket is sorted once and drained from the back (amortised
//!   O(1) pops), with late arrivals into that bucket absorbed by a small
//!   overflow heap so the sorted run is never re-sorted;
//! * far-future events (periodic timers, retry backoffs) overflow into a
//!   conventional heap and migrate into the ring as the clock advances.
//!
//! The `(time, seq)` contract is identical to the old heap-only
//! implementation — property tests in `tests/event_queue_props.rs` check
//! equivalence against a reference model on random schedules.
//!
//! ```
//! use bio_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::from_micros(5), "late");
//! q.push(SimTime::from_micros(1), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (SimTime::from_micros(1), "early"));
//! ```

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Log2 of the bucket width in nanoseconds: 2^13 ns ≈ 8 µs, a few device
/// DMA/CPU steps, so dense near-future traffic spreads across several
/// buckets instead of piling into one.
const BUCKET_SHIFT: u32 = 13;

/// Ring size. The ring covers `NUM_BUCKETS << BUCKET_SHIFT` ≈ 67 ms of
/// virtual time ahead of the clock (one or two measurement windows);
/// anything later waits in the far heap.
const NUM_BUCKETS: usize = 8192;

/// An entry in the queue. Only `at` and `seq` participate in ordering; the
/// payload is opaque.
#[derive(Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> Scheduled<E> {
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        (self.at, self.seq)
    }
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    /// Reversed so a `BinaryHeap` (a max-heap) pops the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Bucket number of a timestamp.
#[inline]
fn bucket_of(at: SimTime) -> u64 {
    at.as_nanos() >> BUCKET_SHIFT
}

/// Sentinel for "no active bucket" (no real timestamp maps to it).
const NO_ACTIVE: u64 = u64::MAX;

/// A deterministic min-priority queue of timed events.
///
/// Events at equal timestamps are delivered in insertion order.
pub struct EventQueue<E> {
    /// Near-future ring: slot `b % NUM_BUCKETS` holds the events of bucket
    /// `b` for `base <= b < base + NUM_BUCKETS`. Slots are unsorted; the
    /// active slot is sorted descending at activation and drained from the
    /// back.
    ring: Vec<Vec<Scheduled<E>>>,
    /// Events held in ring slots (including the active one).
    ring_len: usize,
    /// Bucket number containing the current clock; the ring window starts
    /// here. Only advances when the clock does, so `push` (which requires
    /// `at >= now`) can never land behind the window.
    base: u64,
    /// The bucket currently being drained (`NO_ACTIVE` when none). Its
    /// slot vector is sorted descending by `(time, seq)` so the minimum
    /// pops from the back in O(1).
    active_bucket: u64,
    active_slot: usize,
    /// Late arrivals into the active bucket (e.g. `push_now` storms); kept
    /// out of the sorted run so it never needs re-sorting. Merged with the
    /// run at pop by key comparison.
    overflow: BinaryHeap<Scheduled<E>>,
    /// Far-future events: bucket `>= base + NUM_BUCKETS`. Migrated into
    /// the ring as `base` advances.
    far: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Clone> Clone for EventQueue<E> {
    /// Deep-copies the queue, preserving the clock, sequence counter and
    /// every pending event — the clone pops the exact same `(time, seq)`
    /// stream as the original. This is the `bio-sim` leg of stack
    /// `fork()`: all storage is `Vec`/`BinaryHeap`-backed, so cloning is a
    /// flat memcpy of the live entries.
    fn clone(&self) -> Self {
        EventQueue {
            ring: self.ring.clone(),
            ring_len: self.ring_len,
            base: self.base,
            active_bucket: self.active_bucket,
            active_slot: self.active_slot,
            overflow: self.overflow.clone(),
            far: self.far.clone(),
            next_seq: self.next_seq,
            now: self.now,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    /// Allocation-free; the bucket ring materialises on first push.
    pub fn new() -> Self {
        EventQueue {
            ring: Vec::new(),
            ring_len: 0,
            base: 0,
            active_bucket: NO_ACTIVE,
            active_slot: 0,
            overflow: BinaryHeap::new(),
            far: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; in debug builds it panics,
    /// in release builds the event fires "now" (monotonicity is preserved).
    pub fn push(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Scheduled { at, seq, event };
        let b = bucket_of(at);
        if b == self.active_bucket {
            self.overflow.push(entry);
        } else if b < self.base + NUM_BUCKETS as u64 {
            self.ring_insert(b, entry);
        } else {
            self.far.push(entry);
        }
    }

    #[inline]
    fn ring_insert(&mut self, bucket: u64, entry: Scheduled<E>) {
        if self.ring.is_empty() {
            self.ring.resize_with(NUM_BUCKETS, Vec::new);
        }
        let slot = (bucket % NUM_BUCKETS as u64) as usize;
        self.ring[slot].push(entry);
        self.ring_len += 1;
    }

    /// Schedules `event` after a relative delay from the current time.
    pub fn push_after(&mut self, delay: SimDuration, event: E) {
        self.push(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (delivered after everything
    /// already scheduled for this instant).
    pub fn push_now(&mut self, event: E) {
        self.push(self.now, event);
    }

    /// First non-empty ring slot at or after `base`, with its bucket
    /// number. Requires `ring_len > 0`.
    #[inline]
    fn scan_slot(&self) -> (usize, u64) {
        debug_assert!(self.ring_len > 0);
        let mut b = self.base;
        loop {
            let slot = (b % NUM_BUCKETS as u64) as usize;
            if !self.ring[slot].is_empty() {
                return (slot, b);
            }
            b += 1;
            debug_assert!(b < self.base + NUM_BUCKETS as u64, "ring_len drifted");
        }
    }

    /// Advances the clock (and the ring window) to `at`, migrating newly
    /// visible far-future events into the ring.
    fn advance_to(&mut self, at: SimTime) {
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        let new_base = bucket_of(at);
        if new_base > self.base {
            self.base = new_base;
            let horizon = self.base + NUM_BUCKETS as u64;
            while self.far.peek().is_some_and(|e| bucket_of(e.at) < horizon) {
                let e = self.far.pop().expect("peeked");
                let b = bucket_of(e.at);
                self.ring_insert(b, e);
            }
        }
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        loop {
            // The active bucket is the earliest by construction; its
            // minimum is the better of the sorted run's tail and the
            // overflow top (the overflow is empty on the fast path).
            if self.active_bucket != NO_ACTIVE {
                if self.overflow.is_empty() {
                    if let Some(entry) = self.ring[self.active_slot].pop() {
                        self.ring_len -= 1;
                        self.advance_to(entry.at);
                        return Some((entry.at, entry.event));
                    }
                    self.active_bucket = NO_ACTIVE;
                } else {
                    let run_key = self.ring[self.active_slot].last().map(Scheduled::key);
                    let ovf_key = self.overflow.peek().map(Scheduled::key);
                    let entry = match (run_key, ovf_key) {
                        (Some(r), Some(o)) if r < o => {
                            self.ring_len -= 1;
                            self.ring[self.active_slot].pop().expect("run tail")
                        }
                        _ => self.overflow.pop().expect("overflow is non-empty"),
                    };
                    self.advance_to(entry.at);
                    return Some((entry.at, entry.event));
                }
            }
            if self.ring_len > 0 {
                self.activate_earliest_bucket();
                continue;
            }
            if let Some(head) = self.far.peek() {
                // Jump the window to the far head and pull everything
                // newly visible into the ring. The head itself always
                // migrates: far buckets are `> base`, so the jump raises
                // `base` and the migration horizon covers the head.
                let t = head.at;
                self.advance_to(t);
                debug_assert!(self.ring_len > 0, "far head must migrate into the ring");
                continue;
            }
            return None;
        }
    }

    /// Sorts the earliest non-empty ring bucket for back-pop draining and
    /// marks it active. Requires `ring_len > 0`; does not move the clock.
    fn activate_earliest_bucket(&mut self) {
        let (slot, bucket) = self.scan_slot();
        // Unstable sort: in-place, allocation-free; `(time, seq)` keys
        // are unique so stability is irrelevant. Descending by key, so
        // the earliest entry pops from the back.
        self.ring[slot]
            .sort_unstable_by_key(|e| !(((e.at.as_nanos() as u128) << 64) | e.seq as u128));
        self.active_slot = slot;
        self.active_bucket = bucket;
    }

    /// Key of the earliest pending event, if any (no clock movement).
    fn peek_key(&self) -> Option<(SimTime, u64)> {
        if self.active_bucket != NO_ACTIVE {
            let run = self.ring[self.active_slot].last().map(Scheduled::key);
            let ovf = self.overflow.peek().map(Scheduled::key);
            match (run, ovf) {
                (Some(r), Some(o)) => return Some(r.min(o)),
                (Some(r), None) => return Some(r),
                (None, Some(o)) => return Some(o),
                (None, None) => {}
            }
        }
        if self.ring_len > 0 {
            let (slot, _) = self.scan_slot();
            return self.ring[slot].iter().map(Scheduled::key).min();
        }
        self.far.peek().map(Scheduled::key)
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// Pops the earliest event only if it is scheduled at or before
    /// `deadline`. Activates the earliest bucket once and reads its tail
    /// key, so the ring is traversed once (not a `peek_time` scan plus a
    /// `pop` scan) — the fast path for bounded run loops.
    pub fn pop_at_or_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        let next = loop {
            if self.active_bucket != NO_ACTIVE {
                // O(1): the active run's tail and the overflow top.
                let run = self.ring[self.active_slot].last().map(Scheduled::key);
                let ovf = self.overflow.peek().map(Scheduled::key);
                match (run, ovf) {
                    (Some(r), Some(o)) => break if r < o { r } else { o },
                    (Some(r), None) => break r,
                    (None, Some(o)) => break o,
                    (None, None) => self.active_bucket = NO_ACTIVE,
                }
            } else if self.ring_len > 0 {
                self.activate_earliest_bucket();
            } else {
                match self.far.peek().map(Scheduled::key) {
                    Some(k) => break k,
                    None => return None,
                }
            }
        };
        if next.0 <= deadline {
            self.pop()
        } else {
            // Deadline miss: roll back the speculative activation. The
            // clock has not advanced, so the caller may legally push
            // events *earlier* than this bucket before the next pop — a
            // future bucket left active would shadow them (the pop fast
            // path trusts the active bucket to be the earliest pending
            // one). Overflow entries belong to the active bucket; return
            // them to its ring slot so nothing is orphaned — every
            // NO_ACTIVE code path ignores the overflow heap.
            if self.active_bucket != NO_ACTIVE {
                while let Some(e) = self.overflow.pop() {
                    self.ring[self.active_slot].push(e);
                    self.ring_len += 1;
                }
                self.active_bucket = NO_ACTIVE;
            }
            None
        }
    }

    /// Drains every event scheduled at the earliest pending instant (up to
    /// `max`) into `out`, in FIFO order, advancing the clock to that
    /// instant. Returns the number of events drained.
    ///
    /// Draining one instant at a time keeps batch processing equivalent to
    /// popping one event at a time, as long as batch consumers process the
    /// drained events in order (events pushed *while* processing carry
    /// later sequence numbers, so they sort after the whole batch anyway).
    ///
    /// ```
    /// use bio_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// let t = SimTime::from_micros(3);
    /// q.push(t, "a");
    /// q.push(t, "b");
    /// q.push(SimTime::from_micros(9), "later");
    /// let mut out = Vec::new();
    /// assert_eq!(q.pop_batch(&mut out, 16), 2);
    /// assert_eq!(out, vec![(t, "a"), (t, "b")]);
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn pop_batch(&mut self, out: &mut Vec<(SimTime, E)>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let Some((t, ev)) = self.pop() else { return 0 };
        out.push((t, ev));
        let mut n = 1;
        while n < max && self.peek_time() == Some(t) {
            out.push(self.pop().expect("peeked"));
            n += 1;
        }
        n
    }

    /// Deadline-bounded [`EventQueue::pop_batch`]: drains the earliest
    /// pending instant's events (up to `max`) into `out`, but only when
    /// that instant is at or before `deadline`. Returns the number of
    /// events drained — 0 on an empty queue or a deadline miss (the
    /// queue is untouched and the clock does not advance).
    ///
    /// Only the *first* pop pays the deadline comparison; same-instant
    /// followers are necessarily within the deadline too, so they drain
    /// through the active-bucket fast path.
    ///
    /// ```
    /// use bio_sim::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// let t = SimTime::from_micros(3);
    /// q.push(t, "a");
    /// q.push(t, "b");
    /// q.push(SimTime::from_micros(9), "later");
    /// let mut out = Vec::new();
    /// assert_eq!(q.pop_batch_at_or_before(SimTime::from_micros(5), &mut out, 16), 2);
    /// assert_eq!(out, vec![(t, "a"), (t, "b")]);
    /// assert_eq!(q.pop_batch_at_or_before(SimTime::from_micros(5), &mut out, 16), 0);
    /// ```
    pub fn pop_batch_at_or_before(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<(SimTime, E)>,
        max: usize,
    ) -> usize {
        if max == 0 {
            return 0;
        }
        let Some((t, ev)) = self.pop_at_or_before(deadline) else {
            return 0;
        };
        out.push((t, ev));
        let mut n = 1;
        while n < max && self.has_follower_at(t) {
            out.push(self.pop().expect("follower checked"));
            n += 1;
        }
        n
    }

    /// O(1) check for another pending event at exactly `t`, valid right
    /// after an event at `t` was popped: the pop advanced the window to
    /// `t`, so every remaining event at `t` has migrated out of the far
    /// tier and sits in the active bucket's run or overflow — if neither
    /// holds one, the instant is drained. (A generic `peek_time` would
    /// rescan the ring whenever the pop emptied the active run, which is
    /// the common case for singleton instants.)
    fn has_follower_at(&self, t: SimTime) -> bool {
        if self.active_bucket == NO_ACTIVE {
            return false;
        }
        let run = self.ring[self.active_slot].last().map(Scheduled::key);
        let ovf = self.overflow.peek().map(Scheduled::key);
        matches!(run, Some((rt, _)) if rt == t) || matches!(ovf, Some((ot, _)) if ot == t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len() + self.far.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all pending events without advancing the clock.
    pub fn clear(&mut self) {
        for slot in &mut self.ring {
            slot.clear();
        }
        self.ring_len = 0;
        self.active_bucket = NO_ACTIVE;
        self.overflow.clear();
        self.far.clear();
    }
}

impl<E> core::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_pops_identical_stream() {
        let mut q = EventQueue::new();
        // Spread entries across the ring, the active bucket's overflow and
        // the far heap, then check the clone drains byte-identically.
        for i in 0..200u64 {
            q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        q.push(SimTime::from_millis(500), 1000); // far heap
        let _ = q.pop(); // activate a bucket
        q.push(q.now(), 1001); // overflow of the active bucket
        let mut c = q.clone();
        assert_eq!(q.len(), c.len());
        loop {
            let a = q.pop();
            let b = c.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(3));
    }

    #[test]
    fn push_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "a");
        q.pop();
        q.push_after(SimDuration::from_micros(5), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn push_now_preserves_fifo_at_same_instant() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(1), "first");
        q.pop();
        q.push_now("second");
        q.push_now("third");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(5), 5);
        q.push(SimTime::from_nanos(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime::from_nanos(3), 3);
        q.push(SimTime::from_nanos(8), 8);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 8);
        assert!(q.pop().is_none());
    }

    #[test]
    fn far_future_events_cross_the_ring_horizon() {
        // Events far beyond the ring window must pop in order after the
        // window migrates to them.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), "far");
        q.push(SimTime::from_nanos(10), "near");
        q.push(SimTime::from_secs(5), "far2");
        q.push(SimTime::from_millis(40), "mid");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn pushes_into_active_bucket_keep_order() {
        // Pop from a bucket, then push events landing back into the still
        // active bucket (the overflow path): order must hold.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        q.push(t, 1);
        q.push(t + SimDuration::from_nanos(50), 4);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push_now(2); // same instant as `now`, seq-ordered after 1
        q.push(t + SimDuration::from_nanos(20), 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    fn pop_batch_drains_one_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(2);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_micros(3), 9);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 8), 2);
        assert_eq!(out, vec![(t, 1), (t, 2)]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out, 8), 1);
        assert_eq!(out[0].1, 9);
        assert_eq!(q.pop_batch(&mut out, 8), 0);
    }

    #[test]
    fn pop_batch_respects_max() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 4), 4);
        assert_eq!(
            out.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn pop_batch_at_or_before_bounds_the_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(2);
        q.push(t, 1);
        q.push(t, 2);
        q.push(SimTime::from_micros(30), 9);
        let mut out = Vec::new();
        let d = SimTime::from_micros(10);
        assert_eq!(q.pop_batch_at_or_before(d, &mut out, 8), 2);
        assert_eq!(out, vec![(t, 1), (t, 2)]);
        assert_eq!(q.now(), t, "clock advanced to the drained instant");
        // The next instant is past the deadline: nothing drains, nothing
        // is lost, and the clock stays put.
        assert_eq!(q.pop_batch_at_or_before(d, &mut out, 8), 0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), t);
        assert_eq!(q.pop_batch_at_or_before(SimTime::MAX, &mut out, 0), 0);
    }

    #[test]
    fn pop_at_or_before_respects_the_deadline() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(5), "in");
        q.push(SimTime::from_micros(50), "out");
        let d = SimTime::from_micros(10);
        assert_eq!(q.pop_at_or_before(d).unwrap().1, "in");
        assert_eq!(q.pop_at_or_before(d), None);
        assert_eq!(q.len(), 1, "later event stays queued");
    }

    #[test]
    fn deadline_miss_keeps_overflow_events() {
        // A deadline miss must not orphan events that were sitting in the
        // active bucket's overflow heap.
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_nanos(200), "b"); // overflow of the active bucket
        assert_eq!(q.pop_at_or_before(SimTime::from_nanos(150)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(200)));
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn deadline_miss_with_far_event_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(10), "far");
        q.push(SimTime::from_nanos(200), "b"); // overflow of the active bucket
        assert_eq!(q.pop_at_or_before(SimTime::from_nanos(150)), None);
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn deadline_miss_does_not_shadow_later_pushes() {
        // A miss must not leave a future bucket active: the clock has not
        // moved, so pushes between the miss and the next pop may target
        // earlier buckets and must still pop first.
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(50), "late");
        assert_eq!(q.pop_at_or_before(SimTime::from_millis(10)), None);
        q.push(SimTime::from_millis(20), "early");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(20)));
        assert_eq!(q.pop().unwrap().1, "early");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.pop().is_none());
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(4), 1);
        q.push(SimTime::from_secs(60), 2);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_micros(4));
    }
}
