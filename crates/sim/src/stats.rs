//! Latency statistics: histograms, percentile summaries, counters.
//!
//! The paper reports mean / median / p99 / p99.9 / p99.99 fsync latencies
//! (Table 1), so the histogram here is built to answer exactly those
//! queries. It is a log-bucketed histogram (HdrHistogram-style, 64 buckets
//! per power of two) with bounded relative error, so millions of samples
//! cost constant memory.
//!
//! ```
//! use bio_sim::{LatencyHistogram, SimDuration};
//!
//! let mut h = LatencyHistogram::new();
//! for us in 1..=1000u64 {
//!     h.record(SimDuration::from_micros(us));
//! }
//! let s = h.summary();
//! assert!(s.p50 >= SimDuration::from_micros(480) && s.p50 <= SimDuration::from_micros(520));
//! ```

use core::fmt;

use crate::time::SimDuration;

/// Sub-bucket resolution: 64 linear buckets per power-of-two span gives a
/// worst-case relative quantile error of ~1.6%.
const SUB_BUCKET_BITS: u32 = 6;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// A log-bucketed latency histogram with percentile queries.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// counts[exp][sub]: exp indexes the power-of-two span of the value.
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // 64 exponent spans cover the entire u64 nanosecond range.
        LatencyHistogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros();
        let shift = exp - SUB_BUCKET_BITS;
        let sub = ((ns >> shift) as usize) & (SUB_BUCKETS - 1);
        ((exp - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Midpoint value represented by bucket `idx` (inverse of `index_of`).
    fn value_of(idx: usize) -> u64 {
        let span = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if span == 0 {
            return sub;
        }
        let exp = span as u32 + SUB_BUCKET_BITS - 1;
        let base = 1u64 << exp;
        let shift = exp - SUB_BUCKET_BITS;
        base + (sub << shift) + (1u64 << shift) / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[Self::index_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Arithmetic mean of all samples ([`SimDuration::ZERO`] when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / self.total as u128) as u64)
    }

    /// Smallest recorded sample ([`SimDuration::ZERO`] when empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Value at quantile `q` in `[0, 1]` (bucket-midpoint approximation,
    /// ~1.6% relative error). Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        // The extreme ranks are tracked exactly.
        if rank == 1 {
            return SimDuration::from_nanos(self.min_ns);
        }
        if rank == self.total {
            return SimDuration::from_nanos(self.max_ns);
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to observed extremes so q=0/q=1 are exact.
                let v = Self::value_of(idx).clamp(self.min_ns, self.max_ns);
                return SimDuration::from_nanos(v);
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// The percentile summary: the paper's Table 1 shape (mean / median /
    /// p99 / p99.9 / p99.99) plus p95 for the server-workload latency
    /// tables (fig16).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            p9999: self.quantile(0.9999),
            max: self.max(),
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
    }
}

/// Mean and tail percentiles of a latency distribution (Table 1 shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// 99.99th percentile.
    pub p9999: SimDuration,
    /// Maximum observed.
    pub max: SimDuration,
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} p99.9={} p99.99={} max={}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.p999, self.p9999, self.max
        )
    }
}

/// A monotonically increasing named counter with convenience arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero and returns the prior value.
    pub fn take(&mut self) -> u64 {
        core::mem::take(&mut self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Computes mean of a slice of f64 (0 for empty input).
pub fn mean_f64(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.99), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_summary() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(123));
        let s = h.summary();
        assert_eq!(s.count, 1);
        // Bucketed values carry ~1.6% relative error.
        let err = (s.p50.as_nanos() as f64 - 123_000.0).abs() / 123_000.0;
        assert!(err < 0.02, "p50 error {err}");
        assert_eq!(s.max, SimDuration::from_micros(123));
    }

    #[test]
    fn quantiles_of_uniform_ramp() {
        let mut h = LatencyHistogram::new();
        for us in 1..=10_000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let check = |q: f64, expect_us: f64| {
            let got = h.quantile(q).as_nanos() as f64 / 1000.0;
            let err = (got - expect_us).abs() / expect_us;
            assert!(err < 0.03, "q={q}: got {got}us want {expect_us}us");
        };
        check(0.5, 5_000.0);
        check(0.95, 9_500.0);
        check(0.99, 9_900.0);
        check(0.999, 9_990.0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(300));
        assert_eq!(h.mean(), SimDuration::from_nanos(200));
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_nanos(17));
        h.record(SimDuration::from_millis(90));
        assert_eq!(h.min(), SimDuration::from_nanos(17));
        assert_eq!(h.max(), SimDuration::from_millis(90));
        // q=0 / q=1 clamp to observed extremes.
        assert_eq!(h.quantile(0.0), SimDuration::from_nanos(17));
        assert_eq!(h.quantile(1.0), SimDuration::from_millis(90));
    }

    #[test]
    fn small_values_are_exact() {
        // Values below SUB_BUCKETS land in unit-width buckets.
        let mut h = LatencyHistogram::new();
        for ns in 0..SUB_BUCKETS as u64 {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.quantile(0.0), SimDuration::ZERO);
        assert_eq!(h.count(), SUB_BUCKETS as u64);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), SimDuration::from_micros(1000));
        assert_eq!(a.min(), SimDuration::from_micros(10));
    }

    #[test]
    fn reset_clears() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_input() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn index_value_roundtrip_error_bounded() {
        for ns in [1u64, 63, 64, 65, 1000, 4096, 1 << 20, (1 << 40) + 12345] {
            let idx = LatencyHistogram::index_of(ns);
            let v = LatencyHistogram::value_of(idx);
            let err = (v as f64 - ns as f64).abs() / ns as f64;
            assert!(err < 0.016, "ns={ns} v={v} err={err}");
        }
    }
}
