//! # bio-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the barrier-enabled IO stack reproduction. Everything
//! above this crate (flash device, block layer, filesystem, workloads) is a
//! state machine driven by events popped from an [`EventQueue`]; this crate
//! supplies the primitives they share:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond virtual time,
//! * [`EventQueue`] — the deterministic `(time, seq)`-ordered event queue
//!   (a two-tier bucketed calendar queue: near-future time-bucket ring +
//!   far-future heap),
//! * [`ActionSink`] — the reusable output buffer the layer state machines
//!   write their actions into (allocation-free event routing),
//! * [`SimRng`] — seeded xoshiro256++ randomness,
//! * [`SeqTable`] — a dense sliding-window map for bump-allocated integer
//!   keys (request ids, destage sequences) that detects stale keys,
//! * [`PagedMap`] — a direct-indexed map for small keys (LBAs) whose
//!   memory scales with touched key pages, not the largest key,
//! * [`RunSet`] — a sorted-run set for dense, mostly-contiguous keys
//!   (the device's flush/preflush/FUA drain bookkeeping),
//! * [`LatencyHistogram`] / [`LatencySummary`] — percentile statistics
//!   (the paper's Table 1 shape),
//! * [`TimeSeries`] — step-function recording for queue-depth plots
//!   (Figs 10 and 12).
//!
//! The simulation is single-threaded on purpose: simulated concurrency
//! (application threads, the JBD commit thread, the flush thread, the device
//! controller) is modelled as interleaved events, so every run is exactly
//! reproducible from its seed.
//!
//! ```
//! use bio_sim::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { DmaDone, FlushDone }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_micros(70), Ev::DmaDone);
//! q.push(SimTime::from_micros(500), Ev::FlushDone);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, Ev::DmaDone);
//! assert_eq!(t, SimTime::from_micros(70));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod rng;
mod runset;
mod series;
mod sink;
mod stats;
mod table;
mod time;

pub use event::EventQueue;
pub use rng::SimRng;
pub use runset::RunSet;
pub use series::TimeSeries;
pub use sink::ActionSink;
pub use stats::{mean_f64, Counter, LatencyHistogram, LatencySummary};
pub use table::{PagedMap, SeqTable, SeqTableIter};
pub use time::{SimDuration, SimTime};
