//! Property tests for the RAID-0 stripe addressing in [`Topology`].
//!
//! Two invariants back the multi-device refactor:
//!
//! * `locate` / `global` are exact inverses — no address is lost or
//!   aliased by striping;
//! * `split_range` partitions a global block range: every block lands in
//!   exactly one per-device run, lengths sum to the range, and each
//!   device's run is contiguous in its local address space.

use bio_block::Topology;
use bio_flash::Lba;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn locate_global_round_trip(
        queues in 1usize..8,
        devices in 1usize..6,
        stripe in 1u64..32,
        lba in 0u64..100_000,
    ) {
        let t = Topology::new(queues, devices, stripe);
        let (dev, local) = t.locate(Lba(lba));
        prop_assert!(dev < devices);
        prop_assert_eq!(t.global(dev, local), Lba(lba));
    }

    #[test]
    fn global_locate_round_trip(
        devices in 1usize..6,
        stripe in 1u64..32,
        dev in 0usize..6,
        local in 0u64..50_000,
    ) {
        let t = Topology::new(1, devices, stripe);
        let dev = dev % devices;
        let g = t.global(dev, Lba(local));
        prop_assert_eq!(t.locate(g), (dev, Lba(local)));
    }

    #[test]
    fn split_range_partitions_the_range(
        devices in 1usize..6,
        stripe in 1u64..16,
        start in 0u64..10_000,
        count in 1u64..200,
    ) {
        let t = Topology::new(1, devices, stripe);
        let parts = t.split_range(Lba(start), count);
        // Lengths cover the range, at most one run per device.
        prop_assert_eq!(parts.iter().map(|p| p.3).sum::<u64>(), count);
        prop_assert!(parts.len() <= devices);
        for (i, (dev, local, off, len)) in parts.iter().enumerate() {
            prop_assert!(*dev < devices);
            prop_assert!(*off + *len <= count);
            prop_assert!(parts.iter().skip(i + 1).all(|p| p.0 != *dev),
                "one run per device");
            // The run is the image of exactly its global blocks.
            for k in 0..*len {
                let g = t.global(*dev, Lba(local.0 + k));
                prop_assert!(g.0 >= start && g.0 < start + count,
                    "local block maps back inside the range");
            }
        }
        // Every global block is covered by exactly one run.
        for g in start..start + count {
            let (gd, gl) = t.locate(Lba(g));
            let hits = parts
                .iter()
                .filter(|(d, l, _, n)| gd == *d && gl.0 >= l.0 && gl.0 < l.0 + n)
                .count();
            prop_assert_eq!(hits, 1, "block {} covered once", g);
        }
    }
}
