//! End-to-end block layer behaviour over the simulated device.

use bio_block::{
    ActionSink, BlockAction, BlockConfig, BlockEvent, BlockLayer, BlockRequest, DispatchMode,
    ReqFlags, ReqId, SchedulerKind, Topology,
};
use bio_flash::{audit_epoch_order, BlockTag, Device, DeviceProfile, Lba};
use bio_sim::{EventQueue, SimTime};

struct Harness {
    layer: BlockLayer,
    q: EventQueue<BlockEvent>,
    /// One reusable sink for every submit/handle call, like the real
    /// embedding stack.
    out: ActionSink<BlockAction>,
    done: Vec<(ReqId, SimTime)>,
}

impl Harness {
    fn new(profile: DeviceProfile, mode: DispatchMode) -> Harness {
        Harness::with_topology(profile, mode, Topology::single())
    }

    fn with_topology(profile: DeviceProfile, mode: DispatchMode, topology: Topology) -> Harness {
        let devices = (0..topology.nr_devices)
            .map(|i| Device::new(profile.clone(), 99 + i as u64))
            .collect();
        let cfg = BlockConfig::new(SchedulerKind::Elevator, mode).with_topology(topology);
        Harness {
            layer: BlockLayer::new(devices, cfg),
            q: EventQueue::new(),
            out: ActionSink::new(),
            done: Vec::new(),
        }
    }

    fn apply(&mut self) {
        for a in self.out.drain() {
            match a {
                BlockAction::Complete(id, at) => self.done.push((id, at)),
                BlockAction::After(d, ev) => self.q.push_after(d, ev),
            }
        }
    }

    fn submit(&mut self, req: BlockRequest) {
        let now = self.q.now();
        self.layer.submit(req, now, &mut self.out);
        self.apply();
    }

    fn run(&mut self) {
        while let Some((now, ev)) = self.q.pop() {
            self.layer.handle(ev, now, &mut self.out);
            self.apply();
        }
    }

    fn run_steps(&mut self, n: usize) {
        for _ in 0..n {
            let Some((now, ev)) = self.q.pop() else {
                return;
            };
            self.layer.handle(ev, now, &mut self.out);
            self.apply();
        }
    }
}

fn w(id: u64, lba: u64, flags: ReqFlags) -> BlockRequest {
    BlockRequest::write(ReqId(id), Lba(lba), vec![BlockTag(id + 1000)], flags)
}

#[test]
fn requests_complete_through_the_stack() {
    let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::OrderPreserving);
    for i in 0..4 {
        h.submit(w(i, i * 10, ReqFlags::NONE));
    }
    h.run();
    assert_eq!(h.done.len(), 4);
    assert_eq!(h.layer.stats().submitted, 4);
    assert!(
        h.layer.stats().dispatched <= 4,
        "merging can reduce commands"
    );
    assert_eq!(h.layer.stats().completed, 4);
}

#[test]
fn merged_requests_complete_every_bio() {
    let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::OrderPreserving);
    // Fill the device queue (UFS QD = 16) so later requests pool in the
    // scheduler, where merging happens.
    for i in 0..16 {
        h.submit(w(i, i * 50, ReqFlags::NONE));
    }
    // Four adjacent blocks merge into one command while waiting.
    for i in 16..20 {
        h.submit(w(i, 1000 + i, ReqFlags::NONE));
    }
    h.run();
    assert_eq!(h.done.len(), 20, "each bio gets its completion");
    assert!(
        h.layer.stats().dispatched < 20,
        "adjacent waiting writes should merge ({} dispatched)",
        h.layer.stats().dispatched
    );
}

#[test]
fn busy_device_retries_and_completes_everything() {
    // UFS QD is 16; submit far more and let the retry path drain them.
    let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::OrderPreserving);
    for i in 0..120u64 {
        // Spread LBAs so nothing merges.
        h.submit(w(i, i * 7, ReqFlags::NONE));
    }
    h.run();
    assert_eq!(h.done.len(), 120);
}

#[test]
fn barrier_epochs_survive_crash_in_order_preserving_mode() {
    for seed_steps in 0..12usize {
        let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::OrderPreserving);
        h.layer.device_mut().record_history(true);
        let mut id = 0;
        for epoch in 0..5u64 {
            for i in 0..3u64 {
                let flags = if i == 2 {
                    ReqFlags::BARRIER
                } else {
                    ReqFlags::ORDERED
                };
                h.submit(w(id, epoch * 16 + i, flags));
                id += 1;
            }
        }
        h.submit(BlockRequest::flush(ReqId(9999)));
        h.run_steps(5 + seed_steps * 3);
        let img = h.layer.device().crash_image();
        let hist = h.layer.device().history().unwrap();
        let violations = audit_epoch_order(hist, &img);
        assert!(
            violations.is_empty(),
            "steps {seed_steps}: violations {violations:?}"
        );
    }
}

#[test]
fn legacy_mode_strips_barrier_semantics() {
    // In legacy dispatch the barrier flag must not reach the device: the
    // device cache sees a single epoch.
    let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::Legacy);
    h.layer.device_mut().record_history(true);
    h.submit(w(1, 0, ReqFlags::BARRIER));
    h.submit(w(2, 10, ReqFlags::BARRIER));
    h.run();
    let hist = h.layer.device().history().unwrap();
    assert!(
        hist.iter().all(|t| t.epoch == 0),
        "legacy mode must not advance device epochs: {hist:?}"
    );
}

#[test]
fn order_preserving_mode_advances_device_epochs() {
    let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::OrderPreserving);
    h.layer.device_mut().record_history(true);
    h.submit(w(1, 0, ReqFlags::BARRIER));
    h.submit(w(2, 10, ReqFlags::BARRIER));
    h.run();
    let hist = h.layer.device().history().unwrap();
    let epochs: Vec<u64> = hist.iter().map(|t| t.epoch).collect();
    assert_eq!(epochs, vec![0, 1]);
}

#[test]
fn flush_completes_after_drain() {
    let mut h = Harness::new(DeviceProfile::ufs(), DispatchMode::OrderPreserving);
    h.submit(w(1, 0, ReqFlags::NONE));
    h.submit(BlockRequest::flush(ReqId(2)));
    h.run();
    let t_w = h.done.iter().find(|(id, _)| *id == ReqId(1)).unwrap().1;
    let t_f = h.done.iter().find(|(id, _)| *id == ReqId(2)).unwrap().1;
    assert!(t_f > t_w, "flush must complete after the write it drains");
    assert_eq!(
        h.layer.device().crash_image().tag(Lba(0)),
        BlockTag(1001),
        "flushed data is durable"
    );
}

#[test]
fn non_blocking_barrier_dispatch_fills_the_queue() {
    // With order-preserving dispatch, barrier writes do not wait for each
    // other at the host: the device queue depth should exceed 1 even though
    // every write is a barrier (this is Fig 9 scenario B's mechanism).
    let mut h = Harness::new(DeviceProfile::plain_ssd(), DispatchMode::OrderPreserving);
    for i in 0..16u64 {
        h.submit(w(i, i * 5, ReqFlags::BARRIER));
    }
    let peak = h
        .layer
        .device()
        .qd_series()
        .max_in(SimTime::ZERO, SimTime::from_secs(1));
    assert!(peak >= 8.0, "barrier writes queued without waiting: {peak}");
    h.run();
    assert_eq!(h.done.len(), 16);
}

// ---------------------------------------------------------------------
// Multi-queue / multi-device lane topologies.
// ---------------------------------------------------------------------

#[test]
fn multi_lane_requests_complete_through_the_stack() {
    let mut h = Harness::with_topology(
        DeviceProfile::ufs(),
        DispatchMode::OrderPreserving,
        Topology::new(2, 2, 4),
    );
    for i in 0..40u64 {
        h.submit(w(i, i * 6, ReqFlags::NONE));
    }
    h.submit(BlockRequest::flush(ReqId(1000)));
    h.run();
    assert_eq!(h.done.len(), 41);
    // Striping spreads the writes over both devices.
    assert!(h.layer.devices()[0].stats().blocks_written > 0);
    assert!(h.layer.devices()[1].stats().blocks_written > 0);
    let lanes = h.layer.lane_stats();
    assert_eq!(lanes.len(), 4);
    assert!(lanes.iter().all(|l| l.queued == 0));
}

#[test]
fn sequencer_counts_global_epochs() {
    let mut h = Harness::with_topology(
        DeviceProfile::ufs(),
        DispatchMode::OrderPreserving,
        Topology::new(2, 2, 1),
    );
    let mut id = 0;
    for epoch in 0..5u64 {
        for i in 0..4u64 {
            let flags = if i == 3 {
                ReqFlags::BARRIER
            } else {
                ReqFlags::ORDERED
            };
            // Span both devices so every epoch exercises cross-lane order.
            h.submit(w(id, epoch * 32 + i * 2, flags));
            id += 1;
        }
    }
    h.run();
    assert_eq!(h.done.len(), 20);
    assert_eq!(h.layer.stats().epochs_sequenced, 5);
}

#[test]
fn multi_lane_barrier_epochs_survive_crash_on_every_device() {
    // Cross-lane sequencing must keep each device's local epoch stream
    // consistent: crash at an arbitrary point and audit every device
    // against its own transfer history.
    for seed_steps in 0..12usize {
        let mut h = Harness::with_topology(
            DeviceProfile::ufs(),
            DispatchMode::OrderPreserving,
            Topology::new(2, 2, 1),
        );
        for dev in h.layer.devices_mut() {
            dev.record_history(true);
        }
        let mut id = 0;
        for epoch in 0..5u64 {
            for i in 0..3u64 {
                let flags = if i == 2 {
                    ReqFlags::BARRIER
                } else {
                    ReqFlags::ORDERED
                };
                // 2-block writes at 1-block stripes: every write spans
                // both devices.
                let lba = epoch * 16 + i * 2;
                h.submit(BlockRequest::write(
                    ReqId(id),
                    Lba(lba),
                    vec![BlockTag(id + 1000), BlockTag(id + 2000)],
                    flags,
                ));
                id += 1;
            }
        }
        h.submit(BlockRequest::flush(ReqId(9999)));
        h.run_steps(5 + seed_steps * 4);
        for (di, dev) in h.layer.devices().iter().enumerate() {
            let img = dev.crash_image();
            let hist = dev.history().unwrap();
            let violations = audit_epoch_order(hist, &img);
            assert!(
                violations.is_empty(),
                "steps {seed_steps} device {di}: violations {violations:?}"
            );
        }
    }
}

#[test]
fn striped_final_state_matches_single_device() {
    // The same workload lands the same tags, wherever the blocks live:
    // remap each device-local image through the topology and compare with
    // the 1×1 run.
    let run = |topology: Topology| {
        let mut h = Harness::with_topology(
            DeviceProfile::ufs(),
            DispatchMode::OrderPreserving,
            topology,
        );
        for i in 0..30u64 {
            let flags = if i % 5 == 4 {
                ReqFlags::BARRIER
            } else {
                ReqFlags::NONE
            };
            h.submit(BlockRequest::write(
                ReqId(i),
                Lba(i * 3),
                vec![BlockTag(i + 1), BlockTag(i + 100), BlockTag(i + 200)],
                flags,
            ));
        }
        h.submit(BlockRequest::flush(ReqId(5000)));
        h.run();
        assert_eq!(h.done.len(), 31);
        let mut global: Vec<(Lba, BlockTag)> = Vec::new();
        for (di, dev) in h.layer.devices().iter().enumerate() {
            for (local, tag) in dev.final_image().iter() {
                global.push((topology.global(di, local), tag));
            }
        }
        global.sort_by_key(|(lba, _)| lba.0);
        global
    };
    let single = run(Topology::single());
    let striped = run(Topology::new(2, 3, 2));
    assert_eq!(single, striped);
}
