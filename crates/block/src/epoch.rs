//! Epoch-based IO scheduling with *Epoch-Based Barrier Reassignment*
//! (§3.3 of the paper).
//!
//! Rules:
//!
//! 1. partial order **between** epochs is preserved;
//! 2. requests **within** an epoch schedule freely (under the wrapped
//!    scheduler's discipline);
//! 3. orderless requests schedule freely across epochs.
//!
//! Mechanism: when a barrier request arrives, its barrier flag is stripped
//! and the queue stops accepting new requests. The queued requests (all of
//! one epoch, plus orderless strays) are dispatched under the inner
//! discipline; the *last order-preserving request to leave the queue* is
//! re-designated as the barrier. Only then does the queue unblock — which
//! is exactly the Fig 5 scenario reproduced in the tests below.

use std::collections::VecDeque;

use crate::request::{BlockRequest, MergedRequest};
use crate::scheduler::IoScheduler;

/// The epoch scheduler: wraps any [`IoScheduler`] and adds barrier
/// awareness.
///
/// In the classical single-lane stack it is self-contained: a barrier
/// arrival blocks the queue and draining the epoch unblocks it. In a
/// multi-lane topology each lane runs one `EpochScheduler` in
/// *coordinated* mode: the cross-lane sequencer in the block layer calls
/// [`EpochScheduler::fence`] on every lane when a barrier closes the
/// global epoch, and only calls [`EpochScheduler::release`] once **every**
/// lane reports [`EpochScheduler::is_drained`] — so no device starts the
/// successor epoch while another lane still owes requests from the
/// predecessor.
#[derive(Debug)]
pub struct EpochScheduler {
    inner: Box<dyn IoScheduler + Send>,
    /// Requests that arrived while the queue was blocked.
    pending: VecDeque<BlockRequest>,
    /// True between barrier arrival and epoch drain.
    blocked: bool,
    /// Set when the stripped barrier must be re-attached to the last
    /// order-preserving request leaving the queue.
    barrier_owed: bool,
    /// Coordinated mode: fencing and release are driven externally by the
    /// cross-lane epoch sequencer; draining never self-unblocks.
    coordinated: bool,
    /// Barriers reassigned so far (observability for tests/metrics).
    reassignments: u64,
    /// Epochs this lane has drained and released (each unblock closes
    /// exactly one epoch on this lane). The crash engine's capture hooks
    /// read this to prove cross-lane epoch alignment at a capture point.
    epochs_released: u64,
}

impl Clone for EpochScheduler {
    fn clone(&self) -> Self {
        EpochScheduler {
            inner: self.inner.clone_box(),
            pending: self.pending.clone(),
            blocked: self.blocked,
            barrier_owed: self.barrier_owed,
            coordinated: self.coordinated,
            reassignments: self.reassignments,
            epochs_released: self.epochs_released,
        }
    }
}

impl EpochScheduler {
    /// Wraps an inner scheduler (self-contained single-lane mode).
    pub fn new(inner: Box<dyn IoScheduler + Send>) -> EpochScheduler {
        EpochScheduler {
            inner,
            pending: VecDeque::new(),
            blocked: false,
            barrier_owed: false,
            coordinated: false,
            reassignments: 0,
            epochs_released: 0,
        }
    }

    /// Wraps an inner scheduler in coordinated (multi-lane) mode: the
    /// caller owns epoch fencing via [`EpochScheduler::fence`] /
    /// [`EpochScheduler::release`].
    pub fn coordinated(inner: Box<dyn IoScheduler + Send>) -> EpochScheduler {
        let mut s = EpochScheduler::new(inner);
        s.coordinated = true;
        s
    }

    /// Closes the current epoch on this lane (coordinated mode): stop
    /// admitting requests, and owe a barrier to the last order-preserving
    /// request if the lane holds any — that request closes the epoch on
    /// this lane's device.
    pub fn fence(&mut self) {
        debug_assert!(self.coordinated, "fence is driven by the sequencer");
        self.blocked = true;
        if self.inner.contains_ordered() {
            self.barrier_owed = true;
        }
    }

    /// True when this lane has dispatched its share of the fenced epoch
    /// (no order-preserving requests left in the inner scheduler).
    pub fn is_drained(&self) -> bool {
        !self.inner.contains_ordered()
    }

    /// Reopens the lane after every lane drained the fenced epoch
    /// (coordinated mode).
    pub fn release(&mut self) {
        debug_assert!(self.coordinated, "release is driven by the sequencer");
        self.unblock();
    }

    /// True while the queue refuses new requests (epoch draining).
    pub fn is_blocked(&self) -> bool {
        self.blocked
    }

    /// Number of barrier reassignments performed.
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    /// Epochs this lane has drained and released so far.
    pub fn epochs_released(&self) -> u64 {
        self.epochs_released
    }

    fn accept(&mut self, mut req: BlockRequest) {
        debug_assert!(
            !(self.coordinated && req.flags.barrier),
            "coordinated lanes receive barrier parts pre-stripped by the sequencer"
        );
        if req.flags.barrier {
            // Strip the barrier flag, remember we owe one, and block.
            req.flags.barrier = false;
            req.flags.ordered = true;
            self.barrier_owed = true;
            self.blocked = true;
        }
        self.inner.enqueue(req);
    }

    fn unblock(&mut self) {
        self.blocked = false;
        self.epochs_released += 1;
        // Re-admit buffered requests; one of them may be another barrier,
        // which re-blocks the queue and stops the drain.
        while !self.blocked {
            let Some(req) = self.pending.pop_front() else {
                break;
            };
            self.accept(req);
        }
    }
}

impl IoScheduler for EpochScheduler {
    fn clone_box(&self) -> Box<dyn IoScheduler + Send> {
        Box::new(self.clone())
    }

    fn enqueue(&mut self, req: BlockRequest) {
        if self.blocked {
            self.pending.push_back(req);
        } else {
            self.accept(req);
        }
    }

    fn dequeue(&mut self) -> Option<MergedRequest> {
        let mut m = self.inner.dequeue()?;
        if m.req.flags.is_order_preserving() && !self.inner.contains_ordered() {
            // Last order-preserving request of the epoch: it becomes the
            // barrier (Epoch-Based Barrier Reassignment).
            if self.barrier_owed {
                m.req.flags.barrier = true;
                self.barrier_owed = false;
                self.reassignments += 1;
            }
            if self.blocked && !self.coordinated {
                self.unblock();
            }
        }
        Some(m)
    }

    fn len(&self) -> usize {
        self.inner.len() + self.pending.len()
    }

    fn contains_ordered(&self) -> bool {
        self.inner.contains_ordered() || self.pending.iter().any(|r| r.flags.is_order_preserving())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqFlags, ReqId};
    use crate::scheduler::{ElevatorScheduler, NoopScheduler};
    use bio_flash::{BlockTag, Lba};

    fn w(id: u64, start: u64, flags: ReqFlags) -> BlockRequest {
        BlockRequest::write(ReqId(id), Lba(start), vec![BlockTag(id)], flags)
    }

    fn epoch_noop() -> EpochScheduler {
        EpochScheduler::new(Box::new(NoopScheduler::new()))
    }

    #[test]
    fn barrier_blocks_queue() {
        let mut s = epoch_noop();
        s.enqueue(w(1, 0, ReqFlags::ORDERED));
        s.enqueue(w(2, 10, ReqFlags::BARRIER));
        assert!(s.is_blocked());
        s.enqueue(w(3, 20, ReqFlags::NONE));
        // Req 3 arrived while blocked: buffered, not in the inner queue.
        assert_eq!(s.len(), 3);
        // Drain the epoch; after the last ordered request leaves, unblock.
        let a = s.dequeue().unwrap();
        assert_eq!(a.req.id, ReqId(1));
        assert!(!a.req.flags.barrier);
        let b = s.dequeue().unwrap();
        assert_eq!(b.req.id, ReqId(2));
        assert!(b.req.flags.barrier, "last ordered request carries barrier");
        assert!(!s.is_blocked());
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(3));
    }

    #[test]
    fn barrier_reassigned_to_last_leaver() {
        // Fig 5: w1, w2 ordered; w4 barrier; elevator dispatches by LBA so
        // w4 (low LBA) leaves before w1 (high LBA); the barrier must ride
        // out on whichever ordered request leaves LAST.
        let mut s = EpochScheduler::new(Box::new(ElevatorScheduler::new()));
        s.enqueue(w(1, 90, ReqFlags::ORDERED));
        s.enqueue(w(2, 50, ReqFlags::ORDERED));
        s.enqueue(w(4, 10, ReqFlags::BARRIER));
        let order: Vec<(u64, bool)> =
            std::iter::from_fn(|| s.dequeue().map(|m| (m.req.id.0, m.req.flags.barrier))).collect();
        assert_eq!(order.len(), 3);
        // Elevator order: 10, 50, 90 -> ids 4, 2, 1.
        assert_eq!(
            order.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![4, 2, 1]
        );
        // Only the last carries the barrier.
        assert_eq!(
            order.iter().map(|(_, b)| *b).collect::<Vec<_>>(),
            vec![false, false, true]
        );
        assert_eq!(s.reassignments(), 1);
    }

    #[test]
    fn fig5_scenario_end_to_end() {
        // fsync() issues w1, w2 ordered and w4 barrier; pdflush issues
        // orderless w3, w5, w6 interleaved: w1 w2 w3 w5 w4(barrier) w6.
        // w6 arrives after the barrier so it must wait for the next epoch.
        let mut s = EpochScheduler::new(Box::new(ElevatorScheduler::new()));
        s.enqueue(w(1, 10, ReqFlags::ORDERED));
        s.enqueue(w(2, 30, ReqFlags::ORDERED));
        s.enqueue(w(3, 20, ReqFlags::NONE));
        s.enqueue(w(5, 50, ReqFlags::NONE));
        s.enqueue(w(4, 40, ReqFlags::BARRIER));
        s.enqueue(w(6, 5, ReqFlags::NONE)); // blocked: buffered
        let mut first_epoch: Vec<u64> = Vec::new();
        let mut barrier_id = None;
        while barrier_id.is_none() {
            let m = s.dequeue().unwrap();
            first_epoch.push(m.req.id.0);
            if m.req.flags.barrier {
                barrier_id = Some(m.req.id.0);
            }
        }
        // w6 was not dispatched within the first epoch.
        assert!(!first_epoch.contains(&6));
        // The barrier went to an order-preserving request (w1, w2 or w4).
        assert!([1, 2, 4].contains(&barrier_id.unwrap()));
        // Remaining requests (w6 and any leftover orderless) now flow.
        let rest: Vec<u64> = std::iter::from_fn(|| s.dequeue().map(|m| m.req.id.0)).collect();
        assert!(rest.contains(&6));
    }

    #[test]
    fn orderless_requests_flow_without_barriers() {
        let mut s = epoch_noop();
        s.enqueue(w(1, 0, ReqFlags::NONE));
        s.enqueue(w(2, 10, ReqFlags::NONE));
        assert!(!s.is_blocked());
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(1));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(2));
        assert_eq!(s.reassignments(), 0);
    }

    #[test]
    fn consecutive_barriers_make_consecutive_epochs() {
        let mut s = epoch_noop();
        s.enqueue(w(1, 0, ReqFlags::BARRIER));
        s.enqueue(w(2, 10, ReqFlags::BARRIER)); // buffered while blocked
        s.enqueue(w(3, 20, ReqFlags::ORDERED)); // buffered
        let a = s.dequeue().unwrap();
        assert!(a.req.flags.barrier);
        // Unblocked, re-admitted w2 (barrier: re-blocks) but not yet w3?
        // w2 is itself a barrier so after it is admitted the queue blocks
        // again and w3 stays pending.
        let b = s.dequeue().unwrap();
        assert_eq!(b.req.id, ReqId(2));
        assert!(b.req.flags.barrier);
        let c = s.dequeue().unwrap();
        assert_eq!(c.req.id, ReqId(3));
        assert!(
            !c.req.flags.barrier,
            "no barrier owed for the trailing epoch"
        );
        assert_eq!(s.reassignments(), 2);
    }

    #[test]
    fn merged_ordered_requests_share_one_barrier() {
        // Two adjacent ordered writes merge inside the inner scheduler; the
        // merged request is the last ordered leaver and carries the barrier.
        let mut s = epoch_noop();
        s.enqueue(w(1, 10, ReqFlags::ORDERED));
        s.enqueue(w(2, 11, ReqFlags::BARRIER));
        let m = s.dequeue().unwrap();
        assert_eq!(m.ids.len(), 2, "requests merged");
        assert!(m.req.flags.barrier);
        assert!(!s.is_blocked());
    }

    #[test]
    fn len_counts_pending() {
        let mut s = epoch_noop();
        s.enqueue(w(1, 0, ReqFlags::BARRIER));
        s.enqueue(w(2, 1, ReqFlags::NONE));
        s.enqueue(w(3, 2, ReqFlags::NONE));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }
}
