//! Order-Preserving Dispatch (§3.4) and the block layer facade.
//!
//! [`BlockLayer`] owns the device array and glues the pieces together:
//!
//! * requests are queued through per-lane IO schedulers — one lane per
//!   `(device, hardware queue)` pair of the configured [`Topology`], each
//!   wrapping the configured base scheduler in an [`EpochScheduler`];
//! * logical addresses are striped RAID-0 style across the devices; a
//!   request spanning several stripes is split into per-device parts and
//!   completes upward only when every part has completed;
//! * a cross-lane **epoch sequencer** keeps barrier semantics intact on
//!   the multi-queue path: a barrier closes the global epoch on every
//!   lane at once, and the successor epoch is released to the devices
//!   only after each lane has drained its share of the predecessor;
//! * dispatchable requests are converted to device commands. In
//!   [`DispatchMode::OrderPreserving`] a barrier write is tagged with the
//!   SCSI **ordered** priority, which is "the only thing the host block
//!   device driver does" to guarantee transfer order without blocking the
//!   caller;
//! * when a device queue is full the request is held back on its lane and
//!   redispatch is retried after the SCSI-style retry interval (Fig 6(b));
//! * device completions are translated back into per-request completions
//!   (a merged request completes every constituent bio).

use std::collections::VecDeque;

use bio_flash::{BlockTag, CmdId, Command, DevAction, DevEvent, Device, Priority, WriteFlags};
use bio_sim::{ActionSink, SeqTable, SimDuration, SimTime};

use crate::epoch::EpochScheduler;
use crate::request::{BlockRequest, MergedRequest, ReqId, ReqOp};
use crate::scheduler::{IoScheduler, SchedulerKind};
use crate::topology::Topology;

/// How the dispatch module enforces transfer order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Legacy stack: every command dispatches with `simple` priority;
    /// ordering is whatever the caller enforces by waiting
    /// (Wait-on-Transfer).
    Legacy,
    /// Order-preserving dispatch: barrier writes carry the `ordered`
    /// priority and the `REQ_BARRIER` device flag.
    #[default]
    OrderPreserving,
}

/// How the block layer maps a request to a hardware queue on a multi-queue
/// topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneRouting {
    /// Spread by request id (round-robin-ish; the historical default).
    #[default]
    ByRequestId,
    /// Route by submitting context ([`BlockRequest::origin`]): every
    /// request from one thread lands on one deterministic hardware queue,
    /// like the kernel's per-CPU software queues feeding blk-mq.
    ByThread,
}

/// Everything the block layer needs to know, in one place: the base
/// scheduler, the dispatch discipline, the lane [`Topology`] and the
/// software-queue routing policy.
///
/// Replaces the old `BlockLayer::new(dev, scheduler, dispatch)` positional
/// constructor so new knobs extend this struct instead of churning every
/// call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockConfig {
    /// Base IO scheduler each lane wraps in an epoch scheduler.
    pub scheduler: SchedulerKind,
    /// Dispatch discipline.
    pub dispatch: DispatchMode,
    /// Lane topology (queues × devices, stripe unit).
    pub topology: Topology,
    /// Hardware-queue selection policy.
    pub routing: LaneRouting,
}

impl Default for BlockConfig {
    fn default() -> BlockConfig {
        BlockConfig {
            scheduler: SchedulerKind::Elevator,
            dispatch: DispatchMode::OrderPreserving,
            topology: Topology::single(),
            routing: LaneRouting::ByRequestId,
        }
    }
}

impl BlockConfig {
    /// Config with the given scheduler and dispatch mode on the classical
    /// 1 queue × 1 device topology.
    pub fn new(scheduler: SchedulerKind, dispatch: DispatchMode) -> BlockConfig {
        BlockConfig {
            scheduler,
            dispatch,
            ..BlockConfig::default()
        }
    }

    /// Builder-style topology override.
    pub fn with_topology(mut self, topology: Topology) -> BlockConfig {
        self.topology = topology;
        self
    }

    /// Builder-style routing override.
    pub fn with_routing(mut self, routing: LaneRouting) -> BlockConfig {
        self.routing = routing;
        self
    }
}

/// SCSI-style retry delay when the device queue is full (the paper quotes
/// 3 ms for SCSI devices).
pub const BUSY_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(3);

/// Events the block layer schedules for itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEvent {
    /// A device-internal event to forward to device `dev`.
    Dev {
        /// Device index in the topology.
        dev: u32,
        /// The device event to forward.
        ev: DevEvent,
    },
    /// Retry dispatching on lane `lane` after a device-busy bounce.
    Retry {
        /// Lane index (`device * nr_hw_queues + hw_queue`).
        lane: u32,
    },
}

/// What the block layer reports upward after processing an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAction {
    /// A bio completed (one per constituent of a merged request).
    Complete(ReqId, SimTime),
    /// Schedule `BlockEvent` after the delay.
    After(SimDuration, BlockEvent),
}

/// Block-layer statistics (aggregated over all lanes).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockStats {
    /// Requests submitted by the filesystem.
    pub submitted: u64,
    /// Commands dispatched to the devices.
    pub dispatched: u64,
    /// Completions delivered upward.
    pub completed: u64,
    /// Device-busy bounces (each costs a retry interval).
    pub busy_retries: u64,
    /// Per-device parts created by stripe splitting (0 on a single-device
    /// topology, where requests pass through whole).
    pub split_parts: u64,
    /// Global epochs released by the cross-lane sequencer (multi-lane
    /// topologies only; the single-lane epoch scheduler sequences itself).
    pub epochs_sequenced: u64,
    /// Events dropped because they referenced a lane or device that does
    /// not exist (stale or forged events; handlers are total and never
    /// abort on a bad index).
    pub dropped_events: u64,
    /// Preflush writes decomposed into an all-device flush broadcast
    /// followed by the write (multi-device topologies only; a single
    /// device honours `flush_before` in the command itself).
    pub preflush_fanouts: u64,
}

/// Per-lane dispatch statistics.
#[derive(Debug, Clone, Copy)]
pub struct LaneStats {
    /// Device this lane feeds.
    pub device: usize,
    /// Hardware queue index on that device.
    pub hw_queue: usize,
    /// Commands dispatched by this lane.
    pub dispatched: u64,
    /// Device-busy bounces on this lane.
    pub busy_retries: u64,
    /// Barrier reassignments performed by this lane's epoch scheduler.
    pub reassignments: u64,
    /// Epochs this lane has drained and released so far.
    pub epochs_released: u64,
    /// Requests currently queued (scheduler + held).
    pub queued: usize,
    /// Requests (or split parts) the routing policy placed on this lane —
    /// how evenly the [`LaneRouting`] choice spreads the submitted load.
    pub routed: u64,
}

/// One `(device, hardware queue)` lane: scheduler plus dispatch state.
#[derive(Debug, Clone)]
struct Lane {
    sched: EpochScheduler,
    /// A dispatched request the device bounced; retried on `Retry`.
    held: Option<MergedRequest>,
    retry_pending: bool,
    dispatched: u64,
    busy_retries: u64,
    /// Requests routed to this lane at admission.
    routed: u64,
}

impl Lane {
    /// True when this lane holds no order-preserving work from the fenced
    /// epoch (its share has reached the device).
    fn drained(&self) -> bool {
        self.sched.is_drained()
            && self
                .held
                .as_ref()
                .is_none_or(|m| !m.req.flags.is_order_preserving())
    }
}

/// Split-request bookkeeping: parts still in flight plus the original bio
/// ids to complete when the last part lands. A preflush write's phase-1
/// flush fan-out additionally parks the write itself in `then`, admitted
/// once every device has drained its cache.
#[derive(Debug, Clone)]
struct SplitState {
    remaining: u32,
    ids: Vec<ReqId>,
    then: Option<Box<BlockRequest>>,
}

/// An in-flight device command: the bio ids it answers for, plus the
/// write-payload buffer to hand back to the submitter's arena when the
/// command completes.
#[derive(Debug, Clone)]
struct InflightCmd {
    ids: Vec<ReqId>,
    payload: Vec<BlockTag>,
}

/// Cap on the completion-side payload-buffer pool; beyond it buffers are
/// simply dropped.
const RECLAIM_POOL_CAP: usize = 64;

/// The order-preserving block device layer over an N-queue × M-device
/// lane topology.
///
/// `Clone` deep-copies the layer — lanes (schedulers included, via
/// `IoScheduler::clone_box`), devices, in-flight tables and sequencer
/// state — so a clone evolves bit-identically under the same event
/// stream. This is the `bio-block` leg of stack `fork()`.
#[derive(Debug, Clone)]
pub struct BlockLayer {
    topology: Topology,
    mode: DispatchMode,
    routing: LaneRouting,
    lanes: Vec<Lane>,
    devs: Vec<Device>,
    /// Commands in flight per device, keyed by the bump-allocated
    /// [`CmdId`] (dense sliding-window table; commands complete roughly in
    /// dispatch order, so the window stays narrow and a completion for an
    /// already-retired id reads as absent instead of aliasing).
    inflight: Vec<SeqTable<InflightCmd>>,
    /// Per-device command-id allocators (each device sees a dense,
    /// monotonically increasing id stream).
    next_cmd: Vec<u64>,
    /// Cross-lane epoch sequencer: requests buffered while the
    /// predecessor epoch drains (multi-lane topologies only).
    front: VecDeque<BlockRequest>,
    /// True while the sequencer holds the successor epoch back.
    gate_closed: bool,
    /// Part id → split key (multi-lane request splitting).
    parts: SeqTable<u64>,
    /// Split key → outstanding-part state.
    splits: SeqTable<SplitState>,
    next_part: u64,
    next_split: u64,
    stats: BlockStats,
    /// Reusable scratch for device actions — the device write path runs
    /// once per command, so this keeps the hot loop allocation-free.
    dev_scratch: Vec<DevAction>,
    /// Payload buffers retired by completed write commands, awaiting
    /// return to the submitting filesystem's arena.
    reclaimed: Vec<Vec<BlockTag>>,
}

impl BlockLayer {
    /// Builds a block layer over `devices` (one per topology device, in
    /// device-index order) with the given configuration. Each lane's
    /// epoch scheduler wraps the chosen base scheduler — with no barrier
    /// requests it behaves exactly like the base scheduler, so the legacy
    /// configurations are unaffected.
    ///
    /// # Panics
    ///
    /// Panics when `devices.len()` does not match the topology.
    pub fn new(devices: Vec<Device>, cfg: BlockConfig) -> BlockLayer {
        cfg.topology.validate();
        assert_eq!(
            devices.len(),
            cfg.topology.nr_devices,
            "device count must match the topology"
        );
        let single = cfg.topology.is_single();
        let lanes = (0..cfg.topology.nr_lanes())
            .map(|_| Lane {
                sched: if single {
                    EpochScheduler::new(cfg.scheduler.build())
                } else {
                    EpochScheduler::coordinated(cfg.scheduler.build())
                },
                held: None,
                retry_pending: false,
                dispatched: 0,
                busy_retries: 0,
                routed: 0,
            })
            .collect();
        let n = devices.len();
        BlockLayer {
            topology: cfg.topology,
            mode: cfg.dispatch,
            routing: cfg.routing,
            lanes,
            inflight: (0..n).map(|_| SeqTable::new()).collect(),
            next_cmd: vec![1; n],
            devs: devices,
            front: VecDeque::new(),
            gate_closed: false,
            parts: SeqTable::new(),
            splits: SeqTable::new(),
            next_part: 1,
            next_split: 1,
            stats: BlockStats::default(),
            dev_scratch: Vec::new(),
            reclaimed: Vec::new(),
        }
    }

    /// The lane topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// All devices, in device-index order.
    pub fn devices(&self) -> &[Device] {
        &self.devs
    }

    /// Device `i` (metrics, crash injection).
    pub fn device_at(&self, i: usize) -> &Device {
        &self.devs[i]
    }

    /// Single-device convenience accessor.
    ///
    /// # Panics
    ///
    /// Panics on a multi-device topology; use [`BlockLayer::devices`] or
    /// [`BlockLayer::device_at`] there.
    pub fn device(&self) -> &Device {
        assert!(
            self.devs.len() == 1,
            "BlockLayer::device() on a {}-device topology; use devices()/device_at(i)",
            self.devs.len()
        );
        &self.devs[0]
    }

    /// Mutable access to the single device (history recording).
    ///
    /// # Panics
    ///
    /// Panics on a multi-device topology; use
    /// [`BlockLayer::devices_mut`] there.
    pub fn device_mut(&mut self) -> &mut Device {
        assert!(
            self.devs.len() == 1,
            "BlockLayer::device_mut() on a {}-device topology; use devices_mut()",
            self.devs.len()
        );
        &mut self.devs[0]
    }

    /// Mutable access to all devices.
    pub fn devices_mut(&mut self) -> &mut [Device] {
        &mut self.devs
    }

    /// Block-layer statistics (aggregated over all lanes).
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Per-lane statistics, in lane-index order.
    pub fn lane_stats(&self) -> Vec<LaneStats> {
        self.lanes
            .iter()
            .enumerate()
            .map(|(i, l)| LaneStats {
                device: self.topology.lane_device(i),
                hw_queue: i % self.topology.nr_hw_queues,
                dispatched: l.dispatched,
                busy_retries: l.busy_retries,
                reassignments: l.sched.reassignments(),
                epochs_released: l.sched.epochs_released(),
                queued: l.sched.len() + usize::from(l.held.is_some()),
                routed: l.routed,
            })
            .collect()
    }

    /// Pops one payload buffer retired by a completed write command, for
    /// return to the submitter's arena (cleared, capacity preserved).
    pub fn pop_reclaimed_payload(&mut self) -> Option<Vec<BlockTag>> {
        self.reclaimed.pop()
    }

    /// Banks a retired payload buffer for return to the submitter.
    fn reclaim_payload(&mut self, mut buf: Vec<BlockTag>) {
        if self.reclaimed.len() < RECLAIM_POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.reclaimed.push(buf);
        }
    }

    /// Requests waiting in the block layer (not yet dispatched), summed
    /// over every lane plus the sequencer's front buffer.
    pub fn queued(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.sched.len() + usize::from(l.held.is_some()))
            .sum::<usize>()
            + self.front.len()
    }

    /// Submits a request from the filesystem.
    pub fn submit(&mut self, req: BlockRequest, now: SimTime, out: &mut ActionSink<BlockAction>) {
        self.stats.submitted += 1;
        if self.topology.is_single() {
            // A single-lane topology always constructs lane 0; a missing
            // lane here would mean a half-built layer, and a submit path
            // must drop, not abort (totality: see docs/INVARIANTS.md).
            let Some(lane) = self.lanes.first_mut() else {
                self.stats.dropped_events += 1;
                return;
            };
            lane.routed += 1;
            lane.sched.enqueue(req);
            self.pump_lane(0, now, out);
        } else {
            if self.gate_closed {
                self.front.push_back(req);
            } else {
                self.admit(req);
            }
            self.run_multi(now, out);
        }
    }

    /// Handles a previously scheduled [`BlockEvent`].
    pub fn handle(&mut self, ev: BlockEvent, now: SimTime, out: &mut ActionSink<BlockAction>) {
        match ev {
            BlockEvent::Dev { dev, ev } => {
                let di = dev as usize;
                // Device events carry their target index; a forged or
                // stale index reads as absent and the event drops.
                if di >= self.devs.len() {
                    self.stats.dropped_events += 1;
                    return;
                }
                let mut scratch = std::mem::take(&mut self.dev_scratch);
                if let Some(d) = self.devs.get_mut(di) {
                    d.handle(ev, now, &mut scratch);
                }
                self.apply_dev_actions(di, &mut scratch, now, out);
                self.dev_scratch = scratch;
                // Completions free device queue slots: keep dispatching.
                if self.topology.is_single() {
                    self.pump_lane(0, now, out);
                } else {
                    self.run_multi(now, out);
                }
            }
            BlockEvent::Retry { lane } => {
                let Some(l) = self.lanes.get_mut(lane as usize) else {
                    self.stats.dropped_events += 1;
                    return;
                };
                l.retry_pending = false;
                if self.topology.is_single() {
                    self.pump_lane(0, now, out);
                } else {
                    self.run_multi(now, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Multi-lane path: striping, splitting and the epoch sequencer.
    // ------------------------------------------------------------------

    /// Splits `req` into per-device parts and enqueues them on their
    /// lanes; a barrier additionally fences every lane and closes the
    /// sequencer gate (the cross-lane epoch boundary).
    fn admit(&mut self, mut req: BlockRequest) {
        debug_assert!(!self.gate_closed, "admit only while the gate is open");
        // REQ_PREFLUSH on a striped volume: a write's preflush only
        // reaches its own device, but the blocks it orders after may sit
        // in *any* device's cache (the journal and its descriptor blocks
        // stripe independently). Do what md does: broadcast a flush to
        // every device first, and only admit the write — preflush
        // satisfied, FUA and ordering flags intact — once all of them
        // have drained.
        if req.flags.preflush && matches!(req.op, ReqOp::Write { .. }) {
            let hw_queue = self.hw_queue_for(&req);
            req.flags.preflush = false;
            let key = self.next_split;
            self.next_split += 1;
            for dev in 0..self.topology.nr_devices {
                let part = BlockRequest {
                    id: self.alloc_part(key),
                    op: ReqOp::Flush,
                    flags: crate::request::ReqFlags::NONE,
                    origin: req.origin,
                };
                let lane = self.topology.lane(dev, hw_queue);
                self.lanes[lane].routed += 1;
                self.lanes[lane].sched.enqueue(part);
            }
            self.stats.preflush_fanouts += 1;
            self.splits.insert(
                key,
                SplitState {
                    remaining: self.topology.nr_devices as u32,
                    ids: Vec::new(),
                    then: Some(Box::new(req)),
                },
            );
            return;
        }
        let closes_epoch = req.flags.barrier;
        if closes_epoch {
            // Strip the barrier exactly like the single-lane epoch
            // scheduler: the parts are order-preserving members of the
            // closing epoch, and each lane re-attaches a barrier to its
            // own last ordered leaver so every participating device
            // closes its local epoch.
            req.flags.barrier = false;
            req.flags.ordered = true;
        }
        let hw_queue = self.hw_queue_for(&req);
        let key = self.next_split;
        self.next_split += 1;
        let mut remaining = 0u32;
        match &req.op {
            ReqOp::Write { start, tags } => {
                for (dev, local, off, n) in self.topology.split_range(*start, tags.len() as u64) {
                    let part = BlockRequest {
                        id: self.alloc_part(key),
                        op: ReqOp::Write {
                            start: local,
                            tags: tags[off as usize..(off + n) as usize].to_vec(),
                        },
                        flags: req.flags,
                        origin: req.origin,
                    };
                    remaining += 1;
                    let lane = self.topology.lane(dev, hw_queue);
                    self.lanes[lane].routed += 1;
                    self.lanes[lane].sched.enqueue(part);
                }
            }
            ReqOp::Read { start, count } => {
                for (dev, local, _off, n) in self.topology.split_range(*start, *count) {
                    let part = BlockRequest {
                        id: self.alloc_part(key),
                        op: ReqOp::Read {
                            start: local,
                            count: n,
                        },
                        flags: req.flags,
                        origin: req.origin,
                    };
                    remaining += 1;
                    let lane = self.topology.lane(dev, hw_queue);
                    self.lanes[lane].routed += 1;
                    self.lanes[lane].sched.enqueue(part);
                }
            }
            // A flush drains every device's cache.
            ReqOp::Flush => {
                for dev in 0..self.topology.nr_devices {
                    let part = BlockRequest {
                        id: self.alloc_part(key),
                        op: ReqOp::Flush,
                        flags: req.flags,
                        origin: req.origin,
                    };
                    remaining += 1;
                    let lane = self.topology.lane(dev, hw_queue);
                    self.lanes[lane].routed += 1;
                    self.lanes[lane].sched.enqueue(part);
                }
            }
        }
        self.stats.split_parts += u64::from(remaining) - 1;
        self.splits.insert(
            key,
            SplitState {
                remaining,
                ids: vec![req.id],
                then: None,
            },
        );
        // The original payload was sliced into per-device parts above;
        // hand its buffer back to the submitter's arena.
        if let ReqOp::Write { tags, .. } = req.op {
            self.reclaim_payload(tags);
        }
        if closes_epoch {
            for lane in &mut self.lanes {
                lane.sched.fence();
            }
            self.gate_closed = true;
        }
    }

    fn hw_queue_for(&self, req: &BlockRequest) -> usize {
        match self.routing {
            LaneRouting::ByRequestId => (req.id.0 % self.topology.nr_hw_queues as u64) as usize,
            LaneRouting::ByThread => req.origin as usize % self.topology.nr_hw_queues,
        }
    }

    fn alloc_part(&mut self, key: u64) -> ReqId {
        let pid = self.next_part;
        self.next_part += 1;
        self.parts.insert(pid, key);
        ReqId(pid)
    }

    /// Pumps every lane, then lets the sequencer release the successor
    /// epoch once each lane has drained its share of the fenced one —
    /// repeating until neither makes progress.
    fn run_multi(&mut self, now: SimTime, out: &mut ActionSink<BlockAction>) {
        loop {
            for li in 0..self.lanes.len() {
                self.pump_lane(li, now, out);
            }
            if self.gate_closed && self.lanes.iter().all(Lane::drained) {
                self.gate_closed = false;
                self.stats.epochs_sequenced += 1;
                for lane in &mut self.lanes {
                    lane.sched.release();
                }
                // Re-admit buffered requests; a buffered barrier closes
                // the gate again and stops the drain (the next epoch
                // boundary).
                while !self.gate_closed {
                    let Some(req) = self.front.pop_front() else {
                        break;
                    };
                    self.admit(req);
                }
                continue; // newly admitted requests need pumping
            }
            break;
        }
    }

    // ------------------------------------------------------------------
    // Per-lane dispatch (the single-lane fast path runs exactly this on
    // lane 0).
    // ------------------------------------------------------------------

    fn pump_lane(&mut self, li: usize, now: SimTime, out: &mut ActionSink<BlockAction>) {
        let di = self.topology.lane_device(li);
        let mut scratch = std::mem::take(&mut self.dev_scratch);
        loop {
            // Re-offer a held (bounced) request first to preserve order.
            let m = match self.lanes[li].held.take() {
                Some(m) => m,
                None => {
                    if !self.devs[di].can_accept() {
                        break;
                    }
                    match self.lanes[li].sched.dequeue() {
                        Some(m) => m,
                        None => break,
                    }
                }
            };
            let cmd = self.build_command(di, &m);
            let cmd_id = cmd.id;
            match self.devs[di].submit(cmd, now, &mut scratch) {
                Ok(()) => {
                    self.stats.dispatched += 1;
                    self.lanes[li].dispatched += 1;
                    // The request is consumed here; its payload buffer
                    // parks in the in-flight table until completion, when
                    // it is reclaimed for the submitter's arena.
                    let MergedRequest { req, ids } = m;
                    let payload = match req.op {
                        ReqOp::Write { tags, .. } => tags,
                        _ => Vec::new(),
                    };
                    self.inflight[di].insert(cmd_id.0, InflightCmd { ids, payload });
                    self.apply_dev_actions(di, &mut scratch, now, out);
                }
                Err(_cmd) => {
                    // Device busy: hold the request and retry later
                    // (Fig 6(b) — the kernel daemon inherits the retry).
                    self.stats.busy_retries += 1;
                    self.lanes[li].busy_retries += 1;
                    self.lanes[li].held = Some(m);
                    if !self.lanes[li].retry_pending {
                        self.lanes[li].retry_pending = true;
                        out.push(BlockAction::After(
                            BUSY_RETRY_INTERVAL,
                            BlockEvent::Retry { lane: li as u32 },
                        ));
                    }
                    break;
                }
            }
        }
        self.dev_scratch = scratch;
    }

    fn build_command(&mut self, di: usize, m: &MergedRequest) -> Command {
        let id = CmdId(self.next_cmd[di]);
        self.next_cmd[di] += 1;
        let flags = m.req.flags;
        match &m.req.op {
            ReqOp::Write { start, tags } => {
                let wf = WriteFlags {
                    fua: flags.fua,
                    flush_before: flags.preflush,
                    barrier: flags.barrier && self.mode == DispatchMode::OrderPreserving,
                };
                let prio = if flags.barrier && self.mode == DispatchMode::OrderPreserving {
                    Priority::Ordered
                } else {
                    Priority::Simple
                };
                Command::write(id, *start, tags.clone(), wf).with_priority(prio)
            }
            ReqOp::Read { start, count } => Command::read(id, *start, *count),
            ReqOp::Flush => Command::flush(id),
        }
    }

    /// Drains `actions` (the reusable device scratch) into block actions.
    fn apply_dev_actions(
        &mut self,
        di: usize,
        actions: &mut Vec<DevAction>,
        _now: SimTime,
        out: &mut ActionSink<BlockAction>,
    ) {
        for a in actions.drain(..) {
            match a {
                DevAction::Complete(c) => {
                    // The sliding window makes a retired id read as
                    // absent, so a duplicated or forged completion is
                    // dropped instead of double-completing its bios.
                    let Some(InflightCmd { ids, payload }) = self.inflight[di].remove(c.id.0)
                    else {
                        debug_assert!(false, "completion for unknown command {:?}", c.id);
                        continue;
                    };
                    self.reclaim_payload(payload);
                    if self.topology.is_single() {
                        for rid in ids {
                            self.stats.completed += 1;
                            out.push(BlockAction::Complete(rid, c.at));
                        }
                    } else {
                        // Multi-lane: ids are internal part ids; a bio
                        // completes when its last part does.
                        for pid in ids {
                            self.finish_part(pid, c.at, out);
                        }
                    }
                }
                DevAction::After(d, ev) => {
                    out.push(BlockAction::After(
                        d,
                        BlockEvent::Dev { dev: di as u32, ev },
                    ));
                }
            }
        }
    }

    fn finish_part(&mut self, pid: ReqId, at: SimTime, out: &mut ActionSink<BlockAction>) {
        let Some(key) = self.parts.remove(pid.0) else {
            debug_assert!(false, "completion for unknown part {pid}");
            return;
        };
        let Some(st) = self.splits.get_mut(key) else {
            debug_assert!(false, "part {pid} names a retired split {key}");
            return;
        };
        st.remaining -= 1;
        if st.remaining == 0 {
            let st = self.splits.remove(key).expect("split state present");
            for rid in st.ids {
                self.stats.completed += 1;
                out.push(BlockAction::Complete(rid, at));
            }
            // Phase 2 of a preflush fan-out: every device's cache has
            // drained, the parked write may now issue.
            if let Some(w) = st.then {
                if self.gate_closed {
                    self.front.push_back(*w);
                } else {
                    self.admit(*w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ReqFlags;
    use bio_flash::{BlockTag, DeviceProfile, Lba};

    #[test]
    fn single_lane_flags_on_flush_parts() {
        // Barrier flags only ever appear on writes; make sure the
        // flush fan-out path copies flags verbatim.
        let f = BlockRequest::flush(ReqId(7));
        assert_eq!(f.flags, ReqFlags::NONE);
    }

    #[test]
    fn config_builder_defaults_to_single_lane() {
        let c = BlockConfig::default();
        assert!(c.topology.is_single());
        let c = BlockConfig::new(SchedulerKind::Noop, DispatchMode::Legacy)
            .with_topology(Topology::new(2, 2, 8));
        assert_eq!(c.topology.nr_lanes(), 4);
    }

    #[test]
    #[should_panic(expected = "device count must match")]
    fn device_count_must_match_topology() {
        let cfg = BlockConfig::default().with_topology(Topology::new(1, 2, 8));
        BlockLayer::new(vec![Device::new(DeviceProfile::ufs(), 1)], cfg);
    }

    #[test]
    #[should_panic(expected = "use devices()/device_at(i)")]
    fn singular_device_accessor_panics_on_multi_device() {
        let cfg = BlockConfig::default().with_topology(Topology::new(1, 2, 8));
        let layer = BlockLayer::new(
            vec![
                Device::new(DeviceProfile::ufs(), 1),
                Device::new(DeviceProfile::ufs(), 2),
            ],
            cfg,
        );
        let _ = layer.device();
    }

    #[test]
    fn preflush_write_drains_every_device_first() {
        // Park a dirty block in device 1's cache, then issue a preflush
        // write that stripes to device 0 only: the md-style fan-out must
        // flush BOTH devices before the write issues, so at completion no
        // cache holds anything and the earlier block is durable.
        let cfg = BlockConfig::default().with_topology(Topology::new(1, 2, 1));
        let mut layer = BlockLayer::new(
            vec![
                Device::new(DeviceProfile::ufs(), 1),
                Device::new(DeviceProfile::ufs(), 2),
            ],
            cfg,
        );
        let mut out = ActionSink::new();
        let mut q = bio_sim::EventQueue::new();
        let mut drive = |layer: &mut BlockLayer, out: &mut ActionSink<BlockAction>| {
            let mut done = Vec::new();
            let mut last = SimTime::ZERO;
            loop {
                for a in out.drain() {
                    match a {
                        BlockAction::Complete(rid, _) => done.push(rid),
                        BlockAction::After(d, ev) => q.push_after(d, ev),
                    }
                }
                let Some((now, ev)) = q.pop() else { break };
                last = now;
                layer.handle(ev, now, out);
            }
            (done, last)
        };
        // Lba(1) lands on device 1 (1-block stripes), stays in its cache.
        layer.submit(
            BlockRequest::write(ReqId(1), Lba(1), vec![BlockTag(11)], ReqFlags::NONE),
            SimTime::ZERO,
            &mut out,
        );
        let (done, t1) = drive(&mut layer, &mut out);
        assert_eq!(done, vec![ReqId(1)]);
        assert!(layer
            .device_at(1)
            .cache()
            .entries_in_order()
            .next()
            .is_some());
        // Preflush+FUA write to Lba(0) (device 0 only by striping).
        let flags = ReqFlags {
            ordered: false,
            barrier: false,
            fua: true,
            preflush: true,
        };
        layer.submit(
            BlockRequest::write(ReqId(2), Lba(0), vec![BlockTag(20)], flags),
            t1,
            &mut out,
        );
        let (done, _) = drive(&mut layer, &mut out);
        assert_eq!(done, vec![ReqId(2)]);
        assert_eq!(layer.stats().preflush_fanouts, 1);
        for di in 0..2 {
            assert!(
                layer
                    .device_at(di)
                    .cache()
                    .entries_in_order()
                    .next()
                    .is_none(),
                "device {di} cache not drained by the preflush fan-out"
            );
        }
        // The parked block became durable before the commit-style write.
        assert_eq!(
            layer.device_at(1).crash_image().tag(Lba(0)),
            BlockTag(11),
            "device-local image keeps the flushed block"
        );
    }

    #[test]
    fn split_write_completes_once_all_parts_land() {
        // 2 devices, 1-block stripes: a 4-block write splits into two
        // 2-block parts; the bio must complete exactly once.
        let cfg = BlockConfig::default().with_topology(Topology::new(1, 2, 1));
        let mut layer = BlockLayer::new(
            vec![
                Device::new(DeviceProfile::ufs(), 1),
                Device::new(DeviceProfile::ufs(), 2),
            ],
            cfg,
        );
        let mut out = ActionSink::new();
        let tags = vec![BlockTag(1), BlockTag(2), BlockTag(3), BlockTag(4)];
        layer.submit(
            BlockRequest::write(ReqId(1), Lba(0), tags, ReqFlags::NONE),
            SimTime::ZERO,
            &mut out,
        );
        // Drive scheduled events to completion.
        let mut q = bio_sim::EventQueue::new();
        let mut done = 0;
        loop {
            for a in out.drain() {
                match a {
                    BlockAction::Complete(rid, _) => {
                        assert_eq!(rid, ReqId(1));
                        done += 1;
                    }
                    BlockAction::After(d, ev) => q.push_after(d, ev),
                }
            }
            let Some((now, ev)) = q.pop() else { break };
            layer.handle(ev, now, &mut out);
        }
        assert_eq!(done, 1, "split bio completes exactly once");
        assert_eq!(layer.stats().split_parts, 1);
        assert_eq!(layer.devices()[0].stats().blocks_written, 2);
        assert_eq!(layer.devices()[1].stats().blocks_written, 2);
    }
}
