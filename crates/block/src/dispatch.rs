//! Order-Preserving Dispatch (§3.4) and the block layer facade.
//!
//! [`BlockLayer`] owns the device and glues the pieces together:
//!
//! * requests are queued through the configured IO scheduler (epoch-based
//!   or a legacy one);
//! * dispatchable requests are converted to device commands. In
//!   [`DispatchMode::OrderPreserving`] a barrier write is tagged with the
//!   SCSI **ordered** priority, which is "the only thing the host block
//!   device driver does" to guarantee transfer order without blocking the
//!   caller;
//! * when the device queue is full the request is held back and redispatch
//!   is retried after the SCSI-style retry interval (Fig 6(b));
//! * device completions are translated back into per-request completions
//!   (a merged request completes every constituent bio).

use bio_flash::{CmdId, Command, DevAction, DevEvent, Device, Priority, WriteFlags};
use bio_sim::{ActionSink, SeqTable, SimDuration, SimTime};

use crate::epoch::EpochScheduler;
use crate::request::{BlockRequest, MergedRequest, ReqId, ReqOp};
use crate::scheduler::{IoScheduler, SchedulerKind};

/// How the dispatch module enforces transfer order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Legacy stack: every command dispatches with `simple` priority;
    /// ordering is whatever the caller enforces by waiting
    /// (Wait-on-Transfer).
    Legacy,
    /// Order-preserving dispatch: barrier writes carry the `ordered`
    /// priority and the `REQ_BARRIER` device flag.
    #[default]
    OrderPreserving,
}

/// SCSI-style retry delay when the device queue is full (the paper quotes
/// 3 ms for SCSI devices).
pub const BUSY_RETRY_INTERVAL: SimDuration = SimDuration::from_millis(3);

/// Events the block layer schedules for itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEvent {
    /// A device-internal event to forward.
    Dev(DevEvent),
    /// Retry dispatching after a device-busy bounce.
    Retry,
}

/// What the block layer reports upward after processing an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockAction {
    /// A bio completed (one per constituent of a merged request).
    Complete(ReqId, SimTime),
    /// Schedule `BlockEvent` after the delay.
    After(SimDuration, BlockEvent),
}

/// Block-layer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockStats {
    /// Requests submitted by the filesystem.
    pub submitted: u64,
    /// Commands dispatched to the device.
    pub dispatched: u64,
    /// Completions delivered upward.
    pub completed: u64,
    /// Device-busy bounces (each costs a retry interval).
    pub busy_retries: u64,
}

/// The order-preserving block device layer.
#[derive(Debug)]
pub struct BlockLayer {
    sched: EpochScheduler,
    mode: DispatchMode,
    dev: Device,
    /// Commands in flight at the device, keyed by the bump-allocated
    /// [`CmdId`] (dense sliding-window table; commands complete roughly in
    /// dispatch order, so the window stays narrow and a completion for an
    /// already-retired id reads as absent instead of aliasing).
    inflight: SeqTable<Vec<ReqId>>,
    /// A dispatched request the device bounced; retried on `Retry`.
    held: Option<MergedRequest>,
    retry_pending: bool,
    next_cmd: u64,
    stats: BlockStats,
    /// Reusable scratch for device actions — the device write path runs
    /// once per command, so this keeps the hot loop allocation-free.
    dev_scratch: Vec<DevAction>,
}

impl BlockLayer {
    /// Builds a block layer over `dev` with the given scheduler and
    /// dispatch mode. The epoch scheduler always wraps the chosen base
    /// scheduler — with no barrier requests it behaves exactly like the
    /// base scheduler, so the legacy configurations are unaffected.
    pub fn new(dev: Device, base: SchedulerKind, mode: DispatchMode) -> BlockLayer {
        BlockLayer {
            sched: EpochScheduler::new(base.build()),
            mode,
            dev,
            inflight: SeqTable::new(),
            held: None,
            retry_pending: false,
            next_cmd: 1,
            stats: BlockStats::default(),
            dev_scratch: Vec::new(),
        }
    }

    /// Access to the device (metrics, crash injection).
    pub fn device(&self) -> &Device {
        &self.dev
    }

    /// Mutable access to the device (history recording).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.dev
    }

    /// Block-layer statistics.
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Requests waiting in the scheduler (not yet dispatched).
    pub fn queued(&self) -> usize {
        self.sched.len() + usize::from(self.held.is_some())
    }

    /// Submits a request from the filesystem.
    pub fn submit(&mut self, req: BlockRequest, now: SimTime, out: &mut ActionSink<BlockAction>) {
        self.stats.submitted += 1;
        self.sched.enqueue(req);
        self.pump(now, out);
    }

    /// Handles a previously scheduled [`BlockEvent`].
    pub fn handle(&mut self, ev: BlockEvent, now: SimTime, out: &mut ActionSink<BlockAction>) {
        match ev {
            BlockEvent::Dev(dev_ev) => {
                let mut scratch = std::mem::take(&mut self.dev_scratch);
                self.dev.handle(dev_ev, now, &mut scratch);
                self.apply_dev_actions(&mut scratch, now, out);
                self.dev_scratch = scratch;
                // Completions free device queue slots: keep dispatching.
                self.pump(now, out);
            }
            BlockEvent::Retry => {
                self.retry_pending = false;
                self.pump(now, out);
            }
        }
    }

    fn pump(&mut self, now: SimTime, out: &mut ActionSink<BlockAction>) {
        let mut scratch = std::mem::take(&mut self.dev_scratch);
        loop {
            // Re-offer a held (bounced) request first to preserve order.
            let m = match self.held.take() {
                Some(m) => m,
                None => {
                    if !self.dev.can_accept() {
                        break;
                    }
                    match self.sched.dequeue() {
                        Some(m) => m,
                        None => break,
                    }
                }
            };
            let cmd = self.build_command(&m);
            let ids = m.ids.clone();
            let cmd_id = cmd.id;
            match self.dev.submit(cmd, now, &mut scratch) {
                Ok(()) => {
                    self.stats.dispatched += 1;
                    self.inflight.insert(cmd_id.0, ids);
                    self.apply_dev_actions(&mut scratch, now, out);
                }
                Err(_cmd) => {
                    // Device busy: hold the request and retry later
                    // (Fig 6(b) — the kernel daemon inherits the retry).
                    self.stats.busy_retries += 1;
                    self.held = Some(m);
                    if !self.retry_pending {
                        self.retry_pending = true;
                        out.push(BlockAction::After(BUSY_RETRY_INTERVAL, BlockEvent::Retry));
                    }
                    break;
                }
            }
        }
        self.dev_scratch = scratch;
    }

    fn build_command(&mut self, m: &MergedRequest) -> Command {
        let id = CmdId(self.next_cmd);
        self.next_cmd += 1;
        let flags = m.req.flags;
        match &m.req.op {
            ReqOp::Write { start, tags } => {
                let wf = WriteFlags {
                    fua: flags.fua,
                    flush_before: flags.preflush,
                    barrier: flags.barrier && self.mode == DispatchMode::OrderPreserving,
                };
                let prio = if flags.barrier && self.mode == DispatchMode::OrderPreserving {
                    Priority::Ordered
                } else {
                    Priority::Simple
                };
                Command::write(id, *start, tags.clone(), wf).with_priority(prio)
            }
            ReqOp::Read { start, count } => Command::read(id, *start, *count),
            ReqOp::Flush => Command::flush(id),
        }
    }

    /// Drains `actions` (the reusable device scratch) into block actions.
    fn apply_dev_actions(
        &mut self,
        actions: &mut Vec<DevAction>,
        _now: SimTime,
        out: &mut ActionSink<BlockAction>,
    ) {
        for a in actions.drain(..) {
            match a {
                DevAction::Complete(c) => {
                    // The sliding window makes a retired id read as
                    // absent, so a duplicated or forged completion is
                    // dropped instead of double-completing its bios.
                    let Some(ids) = self.inflight.remove(c.id.0) else {
                        debug_assert!(false, "completion for unknown command {:?}", c.id);
                        continue;
                    };
                    for rid in ids {
                        self.stats.completed += 1;
                        out.push(BlockAction::Complete(rid, c.at));
                    }
                }
                DevAction::After(d, ev) => {
                    out.push(BlockAction::After(d, BlockEvent::Dev(ev)));
                }
            }
        }
    }
}
