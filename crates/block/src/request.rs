//! Block-layer request model.
//!
//! The paper extends the kernel's request flags with two attributes
//! (§3.1): `REQ_ORDERED` marks an *order-preserving* request (a member of
//! the current epoch) and `REQ_BARRIER` marks the epoch delimiter. Plain
//! requests are *orderless* and may be scheduled across epochs.

use core::fmt;

use bio_flash::{BlockTag, Lba};

/// Block-layer request identifier (one per bio submitted by the
/// filesystem).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

impl fmt::Display for ReqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req:{}", self.0)
    }
}

/// Request attribute flags (the kernel's `REQ_*` bits that matter here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReqFlags {
    /// `REQ_ORDERED`: member of the current epoch; must not be reordered
    /// across a barrier.
    pub ordered: bool,
    /// `REQ_BARRIER`: delimits an epoch. Implies `ordered`.
    pub barrier: bool,
    /// `REQ_FUA`: complete only when on the storage surface.
    pub fua: bool,
    /// `REQ_FLUSH`: flush the writeback cache before servicing.
    pub preflush: bool,
}

impl ReqFlags {
    /// Plain orderless request.
    pub const NONE: ReqFlags = ReqFlags {
        ordered: false,
        barrier: false,
        fua: false,
        preflush: false,
    };

    /// Order-preserving request (`REQ_ORDERED`).
    pub const ORDERED: ReqFlags = ReqFlags {
        ordered: true,
        barrier: false,
        fua: false,
        preflush: false,
    };

    /// Barrier write (`REQ_ORDERED|REQ_BARRIER`).
    pub const BARRIER: ReqFlags = ReqFlags {
        ordered: true,
        barrier: true,
        fua: false,
        preflush: false,
    };

    /// The classical journal commit (`REQ_FLUSH|REQ_FUA`).
    pub const FLUSH_FUA: ReqFlags = ReqFlags {
        ordered: false,
        barrier: false,
        fua: true,
        preflush: true,
    };

    /// True if the request participates in epoch ordering.
    pub fn is_order_preserving(self) -> bool {
        self.ordered || self.barrier
    }
}

/// The operation a request performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqOp {
    /// Write consecutive blocks starting at `start`.
    Write {
        /// First block.
        start: Lba,
        /// Content version per block.
        tags: Vec<BlockTag>,
    },
    /// Read consecutive blocks.
    Read {
        /// First block.
        start: Lba,
        /// Block count.
        count: u64,
    },
    /// Explicit cache flush.
    Flush,
}

/// A request submitted to the block layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRequest {
    /// Identifier; completions are reported against it.
    pub id: ReqId,
    /// The operation.
    pub op: ReqOp,
    /// Ordering/durability attributes.
    pub flags: ReqFlags,
    /// Submitting-context key for software-queue affinity (the kernel's
    /// per-CPU software queue): requests from the same context map to the
    /// same hardware queue under [`LaneRouting::ByThread`]. `0` is the
    /// kernel/daemon context (journal, pdflush).
    ///
    /// [`LaneRouting::ByThread`]: crate::LaneRouting::ByThread
    pub origin: u32,
}

impl BlockRequest {
    /// Creates a write request.
    pub fn write(id: ReqId, start: Lba, tags: Vec<BlockTag>, flags: ReqFlags) -> BlockRequest {
        BlockRequest {
            id,
            op: ReqOp::Write { start, tags },
            flags,
            origin: 0,
        }
    }

    /// Creates a read request.
    pub fn read(id: ReqId, start: Lba, count: u64) -> BlockRequest {
        BlockRequest {
            id,
            op: ReqOp::Read { start, count },
            flags: ReqFlags::NONE,
            origin: 0,
        }
    }

    /// Creates a flush request.
    pub fn flush(id: ReqId) -> BlockRequest {
        BlockRequest {
            id,
            op: ReqOp::Flush,
            flags: ReqFlags::NONE,
            origin: 0,
        }
    }

    /// Builder-style submitting-context override (thread-affine lane
    /// routing).
    pub fn with_origin(mut self, origin: u32) -> BlockRequest {
        self.origin = origin;
        self
    }

    /// Number of blocks moved.
    pub fn blocks(&self) -> u64 {
        match &self.op {
            ReqOp::Write { tags, .. } => tags.len() as u64,
            ReqOp::Read { count, .. } => *count,
            ReqOp::Flush => 0,
        }
    }

    /// Write span as `(start, end_exclusive)`, if this is a write.
    pub fn write_span(&self) -> Option<(Lba, Lba)> {
        match &self.op {
            ReqOp::Write { start, tags } => Some((*start, start.offset(tags.len() as u64))),
            _ => None,
        }
    }
}

/// A request merged from one or more bios; remembers every constituent id
/// so each original submitter gets its completion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergedRequest {
    /// The representative request (contiguous union of constituents).
    pub req: BlockRequest,
    /// All constituent ids (includes `req.id`).
    pub ids: Vec<ReqId>,
}

impl MergedRequest {
    /// Wraps a single request.
    pub fn single(req: BlockRequest) -> MergedRequest {
        let ids = vec![req.id];
        MergedRequest { req, ids }
    }

    /// Attempts to merge `other` into this request. Succeeds only for
    /// write-write merges with exactly adjacent spans, and caps the result
    /// at `max_blocks`. The merged request is order-preserving if either
    /// constituent is (§3.3).
    pub fn try_merge(&mut self, other: &MergedRequest, max_blocks: u64) -> bool {
        let (Some((s1, e1)), Some((s2, e2))) = (self.req.write_span(), other.req.write_span())
        else {
            return false;
        };
        if self.req.blocks() + other.req.blocks() > max_blocks {
            return false;
        }
        // FUA/preflush writes have point semantics; never merge them.
        if self.req.flags.fua
            || self.req.flags.preflush
            || other.req.flags.fua
            || other.req.flags.preflush
        {
            return false;
        }
        let (ReqOp::Write { tags: t1, .. }, ReqOp::Write { tags: t2, .. }) =
            (&self.req.op, &other.req.op)
        else {
            return false;
        };
        let merged_op = if e1 == s2 {
            // Back merge: other follows self.
            let mut tags = t1.clone();
            tags.extend_from_slice(t2);
            ReqOp::Write { start: s1, tags }
        } else if e2 == s1 {
            // Front merge: other precedes self.
            let mut tags = t2.clone();
            tags.extend_from_slice(t1);
            ReqOp::Write { start: s2, tags }
        } else {
            return false;
        };
        self.req.op = merged_op;
        self.req.flags.ordered |= other.req.flags.ordered;
        self.req.flags.barrier |= other.req.flags.barrier;
        self.ids.extend_from_slice(&other.ids);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wreq(id: u64, start: u64, n: u64, flags: ReqFlags) -> MergedRequest {
        let tags = (0..n).map(|i| BlockTag(id * 100 + i)).collect();
        MergedRequest::single(BlockRequest::write(ReqId(id), Lba(start), tags, flags))
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn flags_classification() {
        assert!(ReqFlags::ORDERED.is_order_preserving());
        assert!(ReqFlags::BARRIER.is_order_preserving());
        assert!(!ReqFlags::NONE.is_order_preserving());
        assert!(ReqFlags::FLUSH_FUA.fua && ReqFlags::FLUSH_FUA.preflush);
    }

    #[test]
    fn spans_and_blocks() {
        let r = BlockRequest::write(
            ReqId(1),
            Lba(10),
            vec![BlockTag(1), BlockTag(2)],
            ReqFlags::NONE,
        );
        assert_eq!(r.blocks(), 2);
        assert_eq!(r.write_span(), Some((Lba(10), Lba(12))));
        assert_eq!(BlockRequest::flush(ReqId(2)).blocks(), 0);
        assert_eq!(BlockRequest::read(ReqId(3), Lba(0), 4).write_span(), None);
    }

    #[test]
    fn back_merge_concatenates() {
        let mut a = wreq(1, 10, 2, ReqFlags::NONE);
        let b = wreq(2, 12, 2, ReqFlags::NONE);
        assert!(a.try_merge(&b, 64));
        assert_eq!(a.req.blocks(), 4);
        assert_eq!(a.req.write_span(), Some((Lba(10), Lba(14))));
        assert_eq!(a.ids, vec![ReqId(1), ReqId(2)]);
    }

    #[test]
    fn front_merge_prepends() {
        let mut a = wreq(1, 12, 2, ReqFlags::NONE);
        let b = wreq(2, 10, 2, ReqFlags::NONE);
        assert!(a.try_merge(&b, 64));
        assert_eq!(a.req.write_span(), Some((Lba(10), Lba(14))));
        match &a.req.op {
            ReqOp::Write { tags, .. } => {
                assert_eq!(tags[0], BlockTag(200)); // b's first block leads
                assert_eq!(tags[2], BlockTag(100));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn non_adjacent_do_not_merge() {
        let mut a = wreq(1, 10, 2, ReqFlags::NONE);
        let b = wreq(2, 13, 2, ReqFlags::NONE);
        assert!(!a.try_merge(&b, 64));
        assert_eq!(a.req.blocks(), 2);
    }

    #[test]
    fn merge_respects_size_cap() {
        let mut a = wreq(1, 0, 3, ReqFlags::NONE);
        let b = wreq(2, 3, 2, ReqFlags::NONE);
        assert!(!a.try_merge(&b, 4));
        assert!(a.try_merge(&b, 5));
    }

    #[test]
    fn merged_inherits_order_preservation() {
        let mut a = wreq(1, 0, 1, ReqFlags::NONE);
        let b = wreq(2, 1, 1, ReqFlags::ORDERED);
        assert!(a.try_merge(&b, 64));
        assert!(a.req.flags.is_order_preserving());
    }

    #[test]
    fn fua_and_flush_never_merge() {
        let mut a = wreq(1, 0, 1, ReqFlags::FLUSH_FUA);
        let b = wreq(2, 1, 1, ReqFlags::NONE);
        assert!(!a.try_merge(&b, 64));
        let mut c = wreq(3, 4, 1, ReqFlags::NONE);
        let d = wreq(4, 5, 1, ReqFlags::FLUSH_FUA);
        assert!(!c.try_merge(&d, 64));
    }

    #[test]
    fn reads_do_not_merge_with_writes() {
        let mut a = wreq(1, 0, 1, ReqFlags::NONE);
        let b = MergedRequest::single(BlockRequest::read(ReqId(2), Lba(1), 1));
        assert!(!a.try_merge(&b, 64));
    }
}
