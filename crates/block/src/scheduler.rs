//! Baseline IO schedulers: NOOP (FIFO with merging) and a single-queue
//! elevator (CFQ-lite: LBA-sorted batches with merging).
//!
//! These are the "existing IO scheduler" the paper's epoch scheduler wraps
//! (§3.3) and the baselines the legacy stack runs on.

use std::collections::VecDeque;

use crate::request::{BlockRequest, MergedRequest, ReqOp};

/// Maximum size of a merged request, in blocks (512 KiB at 4 KiB blocks,
/// matching the kernel's default `max_sectors_kb`).
pub const MAX_MERGE_BLOCKS: u64 = 128;

/// A single-queue IO scheduler: requests go in, dispatchable (possibly
/// merged) requests come out.
pub trait IoScheduler: core::fmt::Debug {
    /// Deep-copies the scheduler behind a fresh box (the `bio-block` leg
    /// of stack `fork()` — lanes hold schedulers as trait objects).
    fn clone_box(&self) -> Box<dyn IoScheduler + Send>;
    /// Adds a request to the queue, merging where allowed.
    fn enqueue(&mut self, req: BlockRequest);
    /// Removes the next request to dispatch, or `None` if the queue is
    /// empty (or blocked).
    fn dequeue(&mut self) -> Option<MergedRequest>;
    /// Queued (not yet dispatched) request count.
    fn len(&self) -> usize;
    /// True when no requests are queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// True while any queued request is order-preserving (used by the
    /// epoch scheduler to find the epoch's last leaver exactly, even after
    /// merges).
    fn contains_ordered(&self) -> bool;
}

/// FIFO scheduler with adjacent-write merging (the kernel's NOOP).
#[derive(Debug, Clone, Default)]
pub struct NoopScheduler {
    queue: VecDeque<MergedRequest>,
}

impl NoopScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> NoopScheduler {
        NoopScheduler::default()
    }
}

impl IoScheduler for NoopScheduler {
    fn clone_box(&self) -> Box<dyn IoScheduler + Send> {
        Box::new(self.clone())
    }

    fn enqueue(&mut self, req: BlockRequest) {
        let incoming = MergedRequest::single(req);
        for existing in self.queue.iter_mut() {
            if existing.try_merge(&incoming, MAX_MERGE_BLOCKS) {
                return;
            }
        }
        self.queue.push_back(incoming);
    }

    fn dequeue(&mut self) -> Option<MergedRequest> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn contains_ordered(&self) -> bool {
        self.queue.iter().any(|m| m.req.flags.is_order_preserving())
    }
}

/// Elevator scheduler: merges like NOOP but dispatches in ascending-LBA
/// sweeps (one-way elevator), approximating CFQ's seek-minimising order.
/// Reads and flushes keep FIFO order relative to their arrival batch.
#[derive(Debug, Clone, Default)]
pub struct ElevatorScheduler {
    queue: VecDeque<MergedRequest>,
    /// Position of the last dispatched write, for the sweep.
    head: u64,
}

impl ElevatorScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> ElevatorScheduler {
        ElevatorScheduler::default()
    }
}

impl IoScheduler for ElevatorScheduler {
    fn clone_box(&self) -> Box<dyn IoScheduler + Send> {
        Box::new(self.clone())
    }

    fn enqueue(&mut self, req: BlockRequest) {
        let incoming = MergedRequest::single(req);
        for existing in self.queue.iter_mut() {
            if existing.try_merge(&incoming, MAX_MERGE_BLOCKS) {
                return;
            }
        }
        self.queue.push_back(incoming);
    }

    fn dequeue(&mut self) -> Option<MergedRequest> {
        if self.queue.is_empty() {
            return None;
        }
        // Non-write requests (flush, read) dispatch FIFO-first if they are
        // at the head, preserving their arrival semantics.
        if !matches!(self.queue[0].req.op, ReqOp::Write { .. }) {
            return self.queue.pop_front();
        }
        // Pick the write with the smallest LBA >= head, else wrap to the
        // smallest overall (one-way elevator), but never pass a non-write.
        let mut best: Option<(usize, u64)> = None;
        let mut wrap: Option<(usize, u64)> = None;
        for (i, m) in self.queue.iter().enumerate() {
            let ReqOp::Write { start, .. } = &m.req.op else {
                break; // do not sweep past a flush/read
            };
            let lba = start.0;
            if lba >= self.head {
                if best.is_none_or(|(_, b)| lba < b) {
                    best = Some((i, lba));
                }
            } else if wrap.is_none_or(|(_, b)| lba < b) {
                wrap = Some((i, lba));
            }
        }
        let (idx, lba) = best.or(wrap)?;
        let m = self.queue.remove(idx).expect("index valid");
        self.head = lba + m.req.blocks();
        Some(m)
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn contains_ordered(&self) -> bool {
        self.queue.iter().any(|m| m.req.flags.is_order_preserving())
    }
}

/// Scheduler selection for stack configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// FIFO + merging.
    Noop,
    /// LBA-sweep + merging (CFQ-lite).
    #[default]
    Elevator,
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(self) -> Box<dyn IoScheduler + Send> {
        match self {
            SchedulerKind::Noop => Box::new(NoopScheduler::new()),
            SchedulerKind::Elevator => Box::new(ElevatorScheduler::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ReqFlags, ReqId};
    use bio_flash::{BlockTag, Lba};

    fn w(id: u64, start: u64, n: u64) -> BlockRequest {
        let tags = (0..n).map(|i| BlockTag(id * 1000 + i)).collect();
        BlockRequest::write(ReqId(id), Lba(start), tags, ReqFlags::NONE)
    }

    #[test]
    fn noop_is_fifo() {
        let mut s = NoopScheduler::new();
        s.enqueue(w(1, 100, 1));
        s.enqueue(w(2, 0, 1));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(1));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(2));
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn noop_merges_adjacent() {
        let mut s = NoopScheduler::new();
        s.enqueue(w(1, 10, 2));
        s.enqueue(w(2, 12, 2));
        assert_eq!(s.len(), 1);
        let m = s.dequeue().unwrap();
        assert_eq!(m.req.blocks(), 4);
        assert_eq!(m.ids.len(), 2);
    }

    #[test]
    fn elevator_sweeps_ascending() {
        let mut s = ElevatorScheduler::new();
        s.enqueue(w(1, 50, 1));
        s.enqueue(w(2, 10, 1));
        s.enqueue(w(3, 90, 1));
        let order: Vec<u64> = std::iter::from_fn(|| s.dequeue().map(|m| m.req.id.0)).collect();
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn elevator_wraps_after_sweep() {
        let mut s = ElevatorScheduler::new();
        s.enqueue(w(1, 50, 1));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(1)); // head now 51
        s.enqueue(w(2, 10, 1));
        s.enqueue(w(3, 60, 1));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(3), "continue sweep");
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(2), "then wrap");
    }

    #[test]
    fn elevator_does_not_sweep_past_flush() {
        let mut s = ElevatorScheduler::new();
        s.enqueue(w(1, 50, 1));
        s.enqueue(BlockRequest::flush(ReqId(2)));
        s.enqueue(w(3, 10, 1));
        // Write before the flush dispatches first; the flush fences the
        // sweep so req 3 cannot jump ahead of it.
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(1));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(2));
        assert_eq!(s.dequeue().unwrap().req.id, ReqId(3));
    }

    #[test]
    fn elevator_merges() {
        let mut s = ElevatorScheduler::new();
        s.enqueue(w(1, 10, 2));
        s.enqueue(w(2, 8, 2));
        assert_eq!(s.len(), 1);
        assert_eq!(s.dequeue().unwrap().req.blocks(), 4);
    }

    #[test]
    fn kind_builds() {
        assert_eq!(SchedulerKind::Noop.build().len(), 0);
        assert_eq!(SchedulerKind::Elevator.build().len(), 0);
    }
}
