//! # bio-block — the order-preserving block device layer
//!
//! The host half of the paper's contribution (§3): a block layer that
//! preserves the partial order imposed by the filesystem all the way to
//! the storage device, without Wait-on-Transfer or Wait-on-Flush.
//!
//! * [`BlockRequest`] carries the new request attributes `REQ_ORDERED` and
//!   `REQ_BARRIER` alongside the classical `REQ_FLUSH`/`REQ_FUA`;
//! * [`EpochScheduler`] implements Epoch-Based Barrier Reassignment on top
//!   of a wrapped legacy scheduler ([`NoopScheduler`] or
//!   [`ElevatorScheduler`]);
//! * [`BlockLayer`] implements Order-Preserving Dispatch: barrier writes
//!   go out with the SCSI `ordered` priority, device-busy bounces retry on
//!   a timer, and merged requests fan completions back out to every
//!   constituent bio;
//! * [`Topology`] generalises the layer to N hardware queues × M devices
//!   (blk-mq style lanes with RAID-0 LBA striping); a cross-lane epoch
//!   sequencer keeps barrier epochs globally ordered across lanes. The
//!   default 1×1 topology is exactly the classical single-queue stack.
//!
//! ```
//! use bio_block::{
//!     ActionSink, BlockConfig, BlockLayer, BlockRequest, ReqFlags, ReqId,
//! };
//! use bio_flash::{BlockTag, Device, DeviceProfile, Lba};
//! use bio_sim::SimTime;
//!
//! let dev = Device::new(DeviceProfile::ufs(), 7);
//! let mut layer = BlockLayer::new(vec![dev], BlockConfig::default());
//! // One reusable sink serves every submit/handle call.
//! let mut out = ActionSink::new();
//! let req = BlockRequest::write(ReqId(1), Lba(0), vec![BlockTag(1)], ReqFlags::BARRIER);
//! layer.submit(req, SimTime::ZERO, &mut out);
//! assert!(!out.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dispatch;
mod epoch;
mod request;
mod scheduler;
mod topology;

pub use bio_sim::ActionSink;
pub use dispatch::{
    BlockAction, BlockConfig, BlockEvent, BlockLayer, BlockStats, DispatchMode, LaneRouting,
    LaneStats, BUSY_RETRY_INTERVAL,
};
pub use epoch::EpochScheduler;
pub use request::{BlockRequest, MergedRequest, ReqFlags, ReqId, ReqOp};
pub use scheduler::{
    ElevatorScheduler, IoScheduler, NoopScheduler, SchedulerKind, MAX_MERGE_BLOCKS,
};
pub use topology::Topology;
