//! Multi-queue, multi-device lane topology (the blk-mq model).
//!
//! The block layer is generalised from one scheduler feeding one device to
//! a grid of **lanes**: each device exposes `nr_hw_queues` hardware
//! submission queues, and every `(device, queue)` pair is an independent
//! lane with its own epoch scheduler, dispatch state and in-flight table.
//! Logical block addresses are striped RAID-0 style across the devices in
//! units of `stripe_blocks`.
//!
//! The default topology is a single queue on a single device — exactly the
//! stack the paper evaluates — and every layer above treats that case as a
//! straight pass-through.

use bio_flash::Lba;

/// Shape of the block layer: hardware queues per device, device count and
/// the RAID-0 stripe unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Hardware submission queues per device (blk-mq's `nr_hw_queues`).
    pub nr_hw_queues: usize,
    /// Devices the LBA space is striped over.
    pub nr_devices: usize,
    /// Stripe unit in 4 KiB blocks: consecutive runs of this many blocks
    /// rotate round-robin across the devices.
    pub stripe_blocks: u64,
}

impl Default for Topology {
    fn default() -> Topology {
        Topology::single()
    }
}

impl Topology {
    /// The classical 1 queue × 1 device stack.
    pub fn single() -> Topology {
        Topology {
            nr_hw_queues: 1,
            nr_devices: 1,
            stripe_blocks: 8,
        }
    }

    /// Builds an `nr_hw_queues` × `nr_devices` topology.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn new(nr_hw_queues: usize, nr_devices: usize, stripe_blocks: u64) -> Topology {
        let t = Topology {
            nr_hw_queues,
            nr_devices,
            stripe_blocks,
        };
        t.validate();
        t
    }

    /// Asserts the topology is well-formed.
    pub fn validate(&self) {
        assert!(self.nr_hw_queues >= 1, "need at least one hardware queue");
        assert!(self.nr_devices >= 1, "need at least one device");
        assert!(self.stripe_blocks >= 1, "stripe unit must be >= 1 block");
    }

    /// Total lane count (`nr_devices * nr_hw_queues`).
    pub fn nr_lanes(&self) -> usize {
        self.nr_devices * self.nr_hw_queues
    }

    /// True for the classical single-queue single-device shape.
    pub fn is_single(&self) -> bool {
        self.nr_lanes() == 1
    }

    /// Lane index of `(device, hw_queue)`.
    pub fn lane(&self, device: usize, hw_queue: usize) -> usize {
        debug_assert!(device < self.nr_devices && hw_queue < self.nr_hw_queues);
        device * self.nr_hw_queues + hw_queue
    }

    /// Device served by `lane`.
    pub fn lane_device(&self, lane: usize) -> usize {
        lane / self.nr_hw_queues
    }

    /// Maps a global LBA to `(device index, device-local LBA)`.
    ///
    /// Global stripe `s` lives on device `s % nr_devices` at local stripe
    /// `s / nr_devices`; the offset within the stripe is preserved.
    pub fn locate(&self, lba: Lba) -> (usize, Lba) {
        let stripe = lba.0 / self.stripe_blocks;
        let off = lba.0 % self.stripe_blocks;
        let device = (stripe % self.nr_devices as u64) as usize;
        let local = (stripe / self.nr_devices as u64) * self.stripe_blocks + off;
        (device, Lba(local))
    }

    /// Inverse of [`Topology::locate`]: maps a device-local LBA back to
    /// the global address.
    pub fn global(&self, device: usize, local: Lba) -> Lba {
        let local_stripe = local.0 / self.stripe_blocks;
        let off = local.0 % self.stripe_blocks;
        Lba((local_stripe * self.nr_devices as u64 + device as u64) * self.stripe_blocks + off)
    }

    /// Splits the global block range `[start, start + count)` into
    /// per-device contiguous runs, in ascending global order.
    ///
    /// Each element is `(device, local start, offset into the global
    /// range, length)`. A contiguous global range lands on each device as
    /// one contiguous local run, so the result holds at most `nr_devices`
    /// entries; with a single device it is the identity split.
    pub fn split_range(&self, start: Lba, count: u64) -> Vec<(usize, Lba, u64, u64)> {
        let mut parts: Vec<(usize, Lba, u64, u64)> = Vec::new();
        let mut at = start.0;
        let end = start.0 + count;
        while at < end {
            let chunk = (self.stripe_blocks - at % self.stripe_blocks).min(end - at);
            let (device, local) = self.locate(Lba(at));
            match parts.iter_mut().find(|p| p.0 == device) {
                Some(p) => {
                    debug_assert_eq!(p.1 .0 + p.3, local.0, "per-device runs are contiguous");
                    p.3 += chunk;
                }
                None => parts.push((device, local, at - start.0, chunk)),
            }
            at += chunk;
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_is_identity() {
        let t = Topology::single();
        assert!(t.is_single());
        assert_eq!(t.locate(Lba(12345)), (0, Lba(12345)));
        assert_eq!(t.global(0, Lba(12345)), Lba(12345));
        assert_eq!(t.split_range(Lba(100), 20), vec![(0, Lba(100), 0, 20)]);
    }

    #[test]
    fn locate_round_trips() {
        let t = Topology::new(2, 4, 8);
        for g in 0..512u64 {
            let (d, l) = t.locate(Lba(g));
            assert!(d < 4);
            assert_eq!(t.global(d, l), Lba(g));
        }
    }

    #[test]
    fn striping_rotates_devices() {
        let t = Topology::new(1, 2, 4);
        assert_eq!(t.locate(Lba(0)), (0, Lba(0)));
        assert_eq!(t.locate(Lba(4)), (1, Lba(0)));
        assert_eq!(t.locate(Lba(8)), (0, Lba(4)));
        assert_eq!(t.locate(Lba(11)), (0, Lba(7)));
    }

    #[test]
    fn split_range_covers_and_partitions() {
        let t = Topology::new(1, 3, 4);
        let parts = t.split_range(Lba(2), 26);
        let total: u64 = parts.iter().map(|p| p.3).sum();
        assert_eq!(total, 26);
        // Every global block appears in exactly one part.
        for g in 2..28u64 {
            let hits = parts
                .iter()
                .filter(|(d, l, _, n)| {
                    let (gd, gl) = t.locate(Lba(g));
                    gd == *d && gl.0 >= l.0 && gl.0 < l.0 + n
                })
                .count();
            assert_eq!(hits, 1, "block {g}");
        }
    }

    #[test]
    fn lane_indexing() {
        let t = Topology::new(4, 2, 8);
        assert_eq!(t.nr_lanes(), 8);
        assert_eq!(t.lane(1, 3), 7);
        assert_eq!(t.lane_device(7), 1);
        assert_eq!(t.lane_device(3), 0);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_rejected() {
        Topology::new(1, 0, 8);
    }
}
