//! # bio-fs — BarrierFS, EXT4 and OptFS journaling over the barrier stack
//!
//! The filesystem layer of the reproduction (§4 of the paper):
//!
//! * **EXT4** baseline — ordered-mode journaling, one committing
//!   transaction, `FLUSH|FUA` commit blocks, Wait-on-Transfer everywhere
//!   (plus the `nobarrier` variant);
//! * **BarrierFS** — Dual-Mode Journaling with a commit thread that never
//!   waits for transfers and a flush thread that provides durability on
//!   demand; the new interfaces [`Filesystem::fbarrier`] and
//!   [`Filesystem::fdatabarrier`]; multi-transaction page conflicts via
//!   the conflict-page list (§4.3);
//! * **OptFS** — `osync` semantics with selective data journaling and
//!   delayed durability, as the closest prior work;
//! * a **crash-consistency checker** ([`check_crash_consistency`]) that
//!   replays ground-truth transaction records against a device crash
//!   image and reports commit-order, torn-transaction, ordered-data and
//!   durability violations.
//!
//! ```
//! use bio_fs::{ActionSink, Filesystem, FsConfig, FsMode, ThreadId};
//! use bio_sim::SimTime;
//!
//! let mut fs = Filesystem::new(FsConfig::new(FsMode::BarrierFs));
//! // The embedding simulator owns one reusable sink for all events.
//! let mut out = ActionSink::new();
//! let f = fs.create(ThreadId(0), &mut out);
//! fs.write(ThreadId(0), f, 0, 4, SimTime::ZERO, &mut out);
//! // fdatabarrier: the storage mfence — returns without blocking.
//! let outcome = fs.fdatabarrier(ThreadId(0), f, SimTime::ZERO, &mut out);
//! assert_eq!(outcome, bio_fs::SyscallOutcome::Done);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod file;
mod fs;
mod journal;
mod layout;
mod recovery;
mod txn;

pub use bio_sim::ActionSink;
pub use config::{FsConfig, FsMode};
pub use file::{DirtyTracker, File, FileId, FileTable};
pub use fs::{Filesystem, FsAction, FsEvent, FsStats, SyscallOutcome};
pub use journal::JournalError;
pub use layout::Layout;
pub use recovery::{check_crash_consistency, ConsistencyCheck, FsViolation, TxnRecord};
pub use txn::{ConflictEntry, ConflictList, ThreadId, Txn, TxnId, TxnState, TxnTable};
