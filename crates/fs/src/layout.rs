//! On-disk layout: metadata region, circular journal, data extents.
//!
//! ```text
//! | inode/meta blocks | journal (circular) | data extents ... |
//! 0                   meta_end             data_start
//! ```
//!
//! Every write in the simulation is tagged with a unique [`BlockTag`] so
//! the crash checker can identify exactly which version of which block
//! survived; [`Layout`] also hands those tags out.

use bio_flash::{BlockTag, Lba};

/// Disk layout and allocators.
#[derive(Debug, Clone)]
pub struct Layout {
    meta_blocks: u64,
    journal_blocks: u64,
    next_meta: u64,
    journal_head: u64,
    next_data: u64,
    next_tag: u64,
}

impl Layout {
    /// Creates a layout with room for `meta_blocks` metadata blocks and a
    /// `journal_blocks`-block journal.
    pub fn new(meta_blocks: u64, journal_blocks: u64) -> Layout {
        assert!(meta_blocks > 0 && journal_blocks >= 16, "layout too small");
        Layout {
            meta_blocks,
            journal_blocks,
            next_meta: 0,
            journal_head: 0,
            next_data: 0,
            next_tag: 1,
        }
    }

    /// First journal block.
    pub fn journal_start(&self) -> Lba {
        Lba(self.meta_blocks)
    }

    /// First data block.
    pub fn data_start(&self) -> Lba {
        Lba(self.meta_blocks + self.journal_blocks)
    }

    /// Journal capacity in blocks.
    pub fn journal_blocks(&self) -> u64 {
        self.journal_blocks
    }

    /// Allocates one metadata home block (e.g. an inode block).
    ///
    /// # Panics
    ///
    /// Panics when the metadata region is exhausted.
    pub fn alloc_meta(&mut self) -> Lba {
        assert!(
            self.next_meta < self.meta_blocks,
            "metadata region exhausted ({} blocks)",
            self.meta_blocks
        );
        let lba = Lba(self.next_meta);
        self.next_meta += 1;
        lba
    }

    /// Allocates `n` consecutive journal blocks, wrapping circularly. A
    /// transaction never straddles the wrap point: if it does not fit in
    /// the remaining tail, allocation restarts at the journal head
    /// (matching jbd2, which skips the tail).
    pub fn alloc_journal(&mut self, n: u64) -> Lba {
        assert!(n <= self.journal_blocks, "transaction larger than journal");
        if self.journal_head + n > self.journal_blocks {
            self.journal_head = 0;
        }
        let lba = Lba(self.meta_blocks + self.journal_head);
        self.journal_head += n;
        lba
    }

    /// Allocates `n` consecutive data blocks (simple extent bump
    /// allocator).
    pub fn alloc_data(&mut self, n: u64) -> Lba {
        let lba = Lba(self.meta_blocks + self.journal_blocks + self.next_data);
        self.next_data += n;
        lba
    }

    /// Hands out a fresh unique content tag.
    pub fn next_tag(&mut self) -> BlockTag {
        let t = BlockTag(self.next_tag);
        self.next_tag += 1;
        t
    }

    /// Hands out `n` fresh tags.
    pub fn next_tags(&mut self, n: usize) -> Vec<BlockTag> {
        (0..n).map(|_| self.next_tag()).collect()
    }

    /// Hands out `n` fresh tags into an existing buffer (arena-recycled
    /// payload path; same tag stream as [`Layout::next_tags`]).
    pub fn next_tags_into(&mut self, n: usize, buf: &mut Vec<BlockTag>) {
        buf.extend((0..n).map(|_| {
            let t = BlockTag(self.next_tag);
            self.next_tag += 1;
            t
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut l = Layout::new(64, 128);
        let m = l.alloc_meta();
        assert!(m.0 < 64);
        assert_eq!(l.journal_start(), Lba(64));
        assert_eq!(l.data_start(), Lba(192));
        let d = l.alloc_data(4);
        assert!(d.0 >= 192);
    }

    #[test]
    fn journal_wraps_without_straddling() {
        let mut l = Layout::new(8, 16);
        let a = l.alloc_journal(10);
        assert_eq!(a, Lba(8));
        // 6 blocks remain; a 7-block txn must wrap to the start.
        let b = l.alloc_journal(7);
        assert_eq!(b, Lba(8));
        // Next allocation continues after it.
        let c = l.alloc_journal(2);
        assert_eq!(c, Lba(15));
    }

    #[test]
    fn tags_are_unique_and_monotonic() {
        let mut l = Layout::new(4, 16);
        let a = l.next_tag();
        let b = l.next_tag();
        assert!(b > a);
        let batch = l.next_tags(3);
        assert_eq!(batch.len(), 3);
        assert!(batch[0] > b && batch[2] > batch[0]);
    }

    #[test]
    fn data_extents_advance() {
        let mut l = Layout::new(4, 16);
        let a = l.alloc_data(3);
        let b = l.alloc_data(1);
        assert_eq!(b.0, a.0 + 3);
    }

    #[test]
    #[should_panic(expected = "metadata region exhausted")]
    fn meta_exhaustion_panics() {
        let mut l = Layout::new(1, 16);
        l.alloc_meta();
        l.alloc_meta();
    }

    #[test]
    #[should_panic(expected = "larger than journal")]
    fn oversized_txn_rejected() {
        Layout::new(4, 16).alloc_journal(17);
    }
}
