//! Filesystem configuration: journaling mode and host-side timing.

use bio_sim::SimDuration;

/// Which journaling implementation the filesystem runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsMode {
    /// Stock EXT4, ordered journaling, journal commit sealed with
    /// `FLUSH|FUA` (the paper's EXT4-DR baseline; on a supercap device the
    /// flush is cheap, giving the "quick flush" variant of §4.4).
    #[default]
    Ext4,
    /// EXT4 mounted `nobarrier`: the commit block is a plain write, no
    /// flush anywhere (EXT4-OD). Fast and crash-unsafe.
    Ext4NoBarrier,
    /// BarrierFS with Dual-Mode Journaling (§4): order-preserving dispatch,
    /// separate commit and flush threads, `fbarrier`/`fdatabarrier`.
    BarrierFs,
    /// OptFS-style optimistic crash consistency: `osync` semantics with
    /// Wait-on-Transfer ordering, delayed durability, and selective data
    /// journaling.
    OptFs,
}

impl FsMode {
    /// True when the mode needs the order-preserving block layer
    /// (REQ_ORDERED/REQ_BARRIER reach the device).
    pub fn uses_barriers(self) -> bool {
        matches!(self, FsMode::BarrierFs)
    }

    /// True when journal commit waits for each DMA transfer
    /// (Wait-on-Transfer; Eq. 2 of the paper).
    pub fn wait_on_transfer(self) -> bool {
        !matches!(self, FsMode::BarrierFs)
    }
}

/// Host-side timing and journaling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FsConfig {
    /// Journaling implementation.
    pub mode: FsMode,
    /// Journal area size in 4 KiB blocks.
    pub journal_blocks: u64,
    /// Kernel timer-tick granularity for inode timestamps. Writes landing
    /// in the same tick do not re-dirty the inode, which makes `fsync`
    /// degenerate to `fdatasync` (the effect behind Fig 11).
    pub timer_tick: SimDuration,
    /// Latency of blocking and being rescheduled (one sleep/wake pair).
    pub ctx_switch: SimDuration,
    /// Wake-to-run latency of the JBD/commit thread after an application
    /// thread triggers a commit (the paper instruments ~160 µs between the
    /// application thread and the commit thread on their server).
    pub commit_thread_wake: SimDuration,
    /// Interval of the background writeback daemon (pdflush); dirty data
    /// pages older than one interval get written back as orderless
    /// requests.
    pub writeback_interval: SimDuration,
    /// OptFS: background durability flush interval (delayed flushes).
    pub optfs_flush_interval: SimDuration,
    /// OptFS: CPU cost to scan one journaled page during `osync` (the
    /// selective-data-journaling overhead the paper discusses in §6.5).
    pub optfs_scan_per_page: SimDuration,
    /// Maximum dirty data pages written back per pdflush round.
    pub writeback_batch: usize,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig::new(FsMode::Ext4)
    }
}

impl FsConfig {
    /// Sensible defaults for a mode (values motivated in DESIGN.md).
    pub fn new(mode: FsMode) -> FsConfig {
        FsConfig {
            mode,
            journal_blocks: 8192,
            timer_tick: SimDuration::from_millis(4), // one jiffy at HZ=250 (Linux 3.10)
            ctx_switch: SimDuration::from_micros(15),
            commit_thread_wake: SimDuration::from_micros(30),
            writeback_interval: SimDuration::from_millis(500),
            optfs_flush_interval: SimDuration::from_millis(100),
            optfs_scan_per_page: SimDuration::from_micros(2),
            writeback_batch: 64,
        }
    }

    /// Builder-style journal size override.
    pub fn with_journal_blocks(mut self, blocks: u64) -> FsConfig {
        self.journal_blocks = blocks.max(16);
        self
    }

    /// Builder-style timer-tick override.
    pub fn with_timer_tick(mut self, tick: SimDuration) -> FsConfig {
        self.timer_tick = tick;
        self
    }

    /// Validates parameters.
    ///
    /// # Panics
    ///
    /// Panics if the journal is too small to hold one transaction.
    pub fn validate(&self) {
        assert!(self.journal_blocks >= 16, "journal too small");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_properties() {
        assert!(FsMode::BarrierFs.uses_barriers());
        assert!(!FsMode::Ext4.uses_barriers());
        assert!(FsMode::Ext4.wait_on_transfer());
        assert!(FsMode::OptFs.wait_on_transfer());
        assert!(!FsMode::BarrierFs.wait_on_transfer());
    }

    #[test]
    fn defaults_validate() {
        for mode in [
            FsMode::Ext4,
            FsMode::Ext4NoBarrier,
            FsMode::BarrierFs,
            FsMode::OptFs,
        ] {
            FsConfig::new(mode).validate();
        }
    }

    #[test]
    fn builders() {
        let c = FsConfig::new(FsMode::BarrierFs)
            .with_journal_blocks(256)
            .with_timer_tick(SimDuration::from_millis(1));
        assert_eq!(c.journal_blocks, 256);
        assert_eq!(c.timer_tick, SimDuration::from_millis(1));
    }

    #[test]
    #[should_panic(expected = "journal too small")]
    fn tiny_journal_rejected() {
        let c = FsConfig {
            journal_blocks: 4,
            ..FsConfig::default()
        };
        c.validate();
    }
}
