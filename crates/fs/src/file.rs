//! The file table: inodes, extents, dirty-page tracking.
//!
//! Files are block-granular. Each file owns one inode home block in the
//! metadata region and a set of data extents. Dirty data pages carry the
//! tag assigned at `write()` time (overwrites before writeback replace the
//! tag in place — page-cache semantics); the inode has two dirt bits,
//! because `fdatasync` ignores timestamp-only changes while `fsync` does
//! not (§6.3's timer-tick effect).
//!
//! [`FileId`]s are dense, contiguous small integers (the table is the
//! allocator), so the table is a direct-indexed `Vec` — the same idiom as
//! the per-thread syscall table in `fs.rs` and the dense hot-path indexes
//! in `bio-flash`. Deleted files keep their slot (marked dead) so ids are
//! never reused and stale references cannot alias a new file.

use std::collections::BTreeMap;

use bio_flash::{BlockTag, Lba};

use crate::layout::Layout;
use crate::txn::TxnId;

/// File identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// One file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inode home block in the metadata region.
    pub inode_lba: Lba,
    /// Size in blocks (highest written block + 1).
    pub size_blocks: u64,
    /// Extent map: file-block offset → starting LBA, length.
    extents: Vec<(u64, Lba, u64)>,
    /// Dirty data pages: file block → content tag.
    pub dirty_data: BTreeMap<u64, BlockTag>,
    /// Blocks ever written back (used by OptFS selective data journaling:
    /// an overwrite of committed content is journaled, not written in
    /// place).
    pub committed_blocks: BTreeMap<u64, ()>,
    /// Inode content version (bumped on any metadata change).
    pub meta_tag: BlockTag,
    /// Size/allocation changed since last journal commit (`fdatasync`
    /// must commit).
    pub alloc_dirty: bool,
    /// Timestamp changed since last commit (`fsync` must commit,
    /// `fdatasync` may skip).
    pub mtime_dirty: bool,
    /// Timer tick of the last timestamp update.
    pub mtime_tick: u64,
    /// Transaction currently holding this inode's dirty buffer.
    pub txn: Option<TxnId>,
    /// Live (deleted files keep their slot, dead).
    pub live: bool,
}

impl File {
    /// True if a journal commit is needed to persist this file's metadata
    /// for the given syscall flavour.
    pub fn metadata_dirty(&self, datasync: bool) -> bool {
        if datasync {
            self.alloc_dirty
        } else {
            self.alloc_dirty || self.mtime_dirty
        }
    }

    /// Resolves a file block offset to its LBA, if allocated.
    pub fn lba_of(&self, block: u64) -> Option<Lba> {
        for &(off, lba, len) in &self.extents {
            if block >= off && block < off + len {
                return Some(Lba(lba.0 + (block - off)));
            }
        }
        None
    }
}

/// The file table.
#[derive(Debug, Clone, Default)]
pub struct FileTable {
    files: Vec<File>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> FileTable {
        FileTable::default()
    }

    /// Creates a file, allocating its inode block.
    pub fn create(&mut self, layout: &mut Layout) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File {
            inode_lba: layout.alloc_meta(),
            size_blocks: 0,
            extents: Vec::new(),
            dirty_data: BTreeMap::new(),
            committed_blocks: BTreeMap::new(),
            meta_tag: layout.next_tag(),
            alloc_dirty: true, // a fresh inode must be journaled
            mtime_dirty: true,
            mtime_tick: u64::MAX,
            txn: None,
            live: true,
        });
        id
    }

    /// Immutable file access.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn get(&self, id: FileId) -> &File {
        &self.files[id.0 as usize]
    }

    /// Mutable file access.
    pub fn get_mut(&mut self, id: FileId) -> &mut File {
        &mut self.files[id.0 as usize]
    }

    /// Number of files ever created.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Ensures blocks `[offset, offset+n)` are allocated, extending the
    /// file with a fresh extent if needed. Returns true when an allocation
    /// happened (metadata change).
    pub fn ensure_allocated(
        &mut self,
        id: FileId,
        layout: &mut Layout,
        offset: u64,
        n: u64,
    ) -> bool {
        let file = &mut self.files[id.0 as usize];
        let end = offset + n;
        let mut allocated = false;
        // Allocate any missing tail as one extent (files grow mostly
        // append-style in the workloads).
        let mut cursor = offset;
        while cursor < end {
            if file.lba_of(cursor).is_some() {
                cursor += 1;
                continue;
            }
            let run_len = end - cursor;
            let lba = layout.alloc_data(run_len);
            file.extents.push((cursor, lba, run_len));
            allocated = true;
            cursor = end;
        }
        if end > file.size_blocks {
            file.size_blocks = end;
            allocated = true;
        }
        allocated
    }

    /// Iterates over live file ids.
    pub fn ids(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.live)
            .map(|(i, _)| FileId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FileTable, Layout) {
        (FileTable::new(), Layout::new(64, 128))
    }

    #[test]
    fn create_allocates_inode() {
        let (mut ft, mut l) = setup();
        let a = ft.create(&mut l);
        let b = ft.create(&mut l);
        assert_ne!(ft.get(a).inode_lba, ft.get(b).inode_lba);
        assert!(ft.get(a).alloc_dirty, "fresh inode needs journaling");
        assert_eq!(ft.len(), 2);
    }

    #[test]
    fn allocation_extends_extents() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        assert!(ft.ensure_allocated(f, &mut l, 0, 4));
        assert_eq!(ft.get(f).size_blocks, 4);
        let lba0 = ft.get(f).lba_of(0).unwrap();
        let lba3 = ft.get(f).lba_of(3).unwrap();
        assert_eq!(lba3.0, lba0.0 + 3);
        // Re-allocating the same range is a no-op.
        assert!(!ft.ensure_allocated(f, &mut l, 0, 4));
    }

    #[test]
    fn sparse_extension_allocates_gap() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        ft.ensure_allocated(f, &mut l, 0, 2);
        ft.ensure_allocated(f, &mut l, 5, 2);
        assert!(ft.get(f).lba_of(6).is_some());
        assert_eq!(ft.get(f).size_blocks, 7);
    }

    #[test]
    fn metadata_dirty_flavours() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        let file = ft.get_mut(f);
        file.alloc_dirty = false;
        file.mtime_dirty = true;
        assert!(file.metadata_dirty(false), "fsync sees mtime");
        assert!(!file.metadata_dirty(true), "fdatasync ignores mtime");
        file.alloc_dirty = true;
        assert!(file.metadata_dirty(true));
    }

    #[test]
    fn ids_iterates_live_files() {
        let (mut ft, mut l) = setup();
        let a = ft.create(&mut l);
        let b = ft.create(&mut l);
        ft.get_mut(a).live = false;
        let ids: Vec<FileId> = ft.ids().collect();
        assert_eq!(ids, vec![b]);
    }
}
