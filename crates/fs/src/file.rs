//! The file table: inodes, extents, dirty-page tracking.
//!
//! Files are block-granular. Each file owns one inode home block in the
//! metadata region and a set of data extents. Dirty data pages carry the
//! tag assigned at `write()` time (overwrites before writeback replace the
//! tag in place — page-cache semantics); the inode has two dirt bits,
//! because `fdatasync` ignores timestamp-only changes while `fsync` does
//! not (§6.3's timer-tick effect).
//!
//! [`FileId`]s are dense, contiguous small integers (the table is the
//! allocator), so the table is a direct-indexed `Vec` — the same idiom as
//! the per-thread syscall table in `fs.rs` and the dense hot-path indexes
//! in `bio-flash`. Deleted files keep their slot (marked dead) so ids are
//! never reused and stale references cannot alias a new file.

use std::collections::BTreeMap;

use bio_flash::{BlockTag, Lba};

use crate::layout::Layout;
use crate::txn::TxnId;

/// File identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// Sorted, run-based dirty-page tracker: dirty blocks are stored as
/// maximal runs of consecutive file blocks (`start`, one tag per block)
/// instead of one map entry per block.
///
/// Dirty sets are overwhelmingly contiguous (appends, sequential
/// overwrites), so the run list stays tiny, and the drain paths
/// (`fsync`'s collect-then-clear, pdflush's budgeted take) walk runs
/// rather than per-block `BTreeMap` entries. All iteration and drain
/// orders are ascending block order — exactly the order the previous
/// `BTreeMap<u64, BlockTag>` produced, which the request-formation code
/// relies on for byte-identical output.
#[derive(Debug, Clone, Default)]
pub struct DirtyTracker {
    /// Sorted, non-overlapping, non-adjacent runs: `(first block, tags)`
    /// where `tags[i]` belongs to block `start + i`.
    runs: Vec<(u64, Vec<BlockTag>)>,
    /// Total dirty blocks across all runs.
    blocks: usize,
}

impl DirtyTracker {
    /// An empty tracker.
    pub fn new() -> DirtyTracker {
        DirtyTracker::default()
    }

    /// Number of dirty blocks.
    pub fn len(&self) -> usize {
        self.blocks
    }

    /// True when nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.blocks == 0
    }

    /// Number of runs (for tests and diagnostics).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Marks `block` dirty with `tag`, replacing the tag in place when the
    /// block was already dirty (page-cache semantics). Returns true when
    /// the block was newly dirtied.
    pub fn insert(&mut self, block: u64, tag: BlockTag) -> bool {
        // Index of the first run starting after `block`; the run that
        // could contain or extend-to `block` is the one before it.
        let idx = self.runs.partition_point(|(s, _)| *s <= block);
        if idx > 0 {
            let (start, tags) = &mut self.runs[idx - 1];
            let off = (block - *start) as usize;
            if off < tags.len() {
                tags[off] = tag; // overwrite in place
                return false;
            }
            if off == tags.len() {
                // Extends the previous run; may bridge to the next.
                tags.push(tag);
                self.blocks += 1;
                if idx < self.runs.len() && self.runs[idx].0 == block + 1 {
                    let (_, next_tags) = self.runs.remove(idx);
                    self.runs[idx - 1].1.extend(next_tags);
                }
                return true;
            }
        }
        if idx < self.runs.len() && self.runs[idx].0 == block + 1 {
            // Prepends to the following run.
            let (start, tags) = &mut self.runs[idx];
            *start = block;
            tags.insert(0, tag);
            self.blocks += 1;
            return true;
        }
        self.runs.insert(idx, (block, vec![tag]));
        self.blocks += 1;
        true
    }

    /// True when `block` is dirty.
    pub fn contains(&self, block: u64) -> bool {
        self.tag_at(block).is_some()
    }

    /// The tag of a dirty block, if dirty.
    pub fn tag_at(&self, block: u64) -> Option<BlockTag> {
        let idx = self.runs.partition_point(|(s, _)| *s <= block);
        let (start, tags) = self.runs.get(idx.checked_sub(1)?)?;
        tags.get((block - start) as usize).copied()
    }

    /// Iterates over `(block, tag)` pairs in ascending block order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, BlockTag)> + '_ {
        self.runs.iter().flat_map(|(start, tags)| {
            tags.iter()
                .enumerate()
                .map(move |(i, t)| (start + i as u64, *t))
        })
    }

    /// Drains every run, returning them in ascending block order.
    pub fn take_runs(&mut self) -> Vec<(u64, Vec<BlockTag>)> {
        self.blocks = 0;
        std::mem::take(&mut self.runs)
    }

    /// Drains up to `n` dirty blocks, lowest block first (the pdflush
    /// budget), returning `(block, tag)` pairs in ascending order.
    pub fn take_blocks(&mut self, n: usize) -> Vec<(u64, BlockTag)> {
        let mut out = Vec::with_capacity(n.min(self.blocks));
        while out.len() < n && !self.runs.is_empty() {
            let want = n - out.len();
            if self.runs[0].1.len() <= want {
                let (start, tags) = self.runs.remove(0);
                out.extend(
                    tags.into_iter()
                        .enumerate()
                        .map(|(i, t)| (start + i as u64, t)),
                );
            } else {
                let (start, tags) = &mut self.runs[0];
                let first = *start;
                *start += want as u64;
                out.extend(
                    tags.drain(..want)
                        .enumerate()
                        .map(|(i, t)| (first + i as u64, t)),
                );
            }
        }
        self.blocks -= out.len();
        out
    }

    /// Drops every dirty block, returning how many were dropped.
    pub fn clear(&mut self) -> usize {
        self.runs.clear();
        std::mem::take(&mut self.blocks)
    }
}

/// One file.
#[derive(Debug, Clone)]
pub struct File {
    /// Inode home block in the metadata region.
    pub inode_lba: Lba,
    /// Size in blocks (highest written block + 1).
    pub size_blocks: u64,
    /// Extent map: file-block offset → starting LBA, length.
    extents: Vec<(u64, Lba, u64)>,
    /// Dirty data pages, tracked as sorted runs of consecutive blocks.
    pub dirty_data: DirtyTracker,
    /// Blocks ever written back (used by OptFS selective data journaling:
    /// an overwrite of committed content is journaled, not written in
    /// place).
    pub committed_blocks: BTreeMap<u64, ()>,
    /// Inode content version (bumped on any metadata change).
    pub meta_tag: BlockTag,
    /// Size/allocation changed since last journal commit (`fdatasync`
    /// must commit).
    pub alloc_dirty: bool,
    /// Timestamp changed since last commit (`fsync` must commit,
    /// `fdatasync` may skip).
    pub mtime_dirty: bool,
    /// Timer tick of the last timestamp update.
    pub mtime_tick: u64,
    /// Transaction currently holding this inode's dirty buffer.
    pub txn: Option<TxnId>,
    /// Live (deleted files keep their slot, dead).
    pub live: bool,
}

impl File {
    /// True if a journal commit is needed to persist this file's metadata
    /// for the given syscall flavour.
    pub fn metadata_dirty(&self, datasync: bool) -> bool {
        if datasync {
            self.alloc_dirty
        } else {
            self.alloc_dirty || self.mtime_dirty
        }
    }

    /// Resolves a file block offset to its LBA, if allocated.
    ///
    /// The extent list is kept sorted by file offset and non-overlapping
    /// (see [`File::insert_extent`]), so at most one extent can contain
    /// `block`: the last one starting at or before it.
    pub fn lba_of(&self, block: u64) -> Option<Lba> {
        let idx = self.extents.partition_point(|&(off, _, _)| off <= block);
        let &(off, lba, len) = self.extents.get(idx.checked_sub(1)?)?;
        (block < off + len).then(|| Lba(lba.0 + (block - off)))
    }

    /// Number of extents (for tests and diagnostics).
    pub fn extent_count(&self) -> usize {
        self.extents.len()
    }

    /// Inserts a run at its sorted position, merging into the preceding
    /// extent when the run is contiguous in both file offset and LBA —
    /// which every append is, because the data allocator is a bump
    /// allocator. Without the merge an append-heavy file accumulates one
    /// extent per write and every later lookup pays for all of them.
    fn insert_extent(&mut self, start: u64, lba: Lba, len: u64) {
        let idx = self.extents.partition_point(|&(off, _, _)| off <= start);
        if let Some((poff, plba, plen)) = idx.checked_sub(1).map(|i| &mut self.extents[i]) {
            if *poff + *plen == start && plba.0 + *plen == lba.0 {
                *plen += len;
                return;
            }
        }
        self.extents.insert(idx, (start, lba, len));
    }
}

/// The file table.
#[derive(Debug, Clone, Default)]
pub struct FileTable {
    files: Vec<File>,
}

impl FileTable {
    /// Creates an empty table.
    pub fn new() -> FileTable {
        FileTable::default()
    }

    /// Creates a file, allocating its inode block.
    pub fn create(&mut self, layout: &mut Layout) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(File {
            inode_lba: layout.alloc_meta(),
            size_blocks: 0,
            extents: Vec::new(),
            dirty_data: DirtyTracker::new(),
            committed_blocks: BTreeMap::new(),
            meta_tag: layout.next_tag(),
            alloc_dirty: true, // a fresh inode must be journaled
            mtime_dirty: true,
            mtime_tick: u64::MAX,
            txn: None,
            live: true,
        });
        id
    }

    /// Immutable file access.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn get(&self, id: FileId) -> &File {
        &self.files[id.0 as usize]
    }

    /// Mutable file access.
    pub fn get_mut(&mut self, id: FileId) -> &mut File {
        &mut self.files[id.0 as usize]
    }

    /// Number of files ever created.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Ensures blocks `[offset, offset+n)` are allocated, extending the
    /// file with a fresh extent if needed. Returns true when an allocation
    /// happened (metadata change).
    pub fn ensure_allocated(
        &mut self,
        id: FileId,
        layout: &mut Layout,
        offset: u64,
        n: u64,
    ) -> bool {
        let file = &mut self.files[id.0 as usize];
        let end = offset + n;
        let mut allocated = false;
        // One allocation covers everything from the first unallocated
        // block to `end` (files grow mostly append-style in the
        // workloads). Already-allocated blocks inside that span keep
        // their existing mapping; only the holes get extents pointing
        // into the fresh run, so the extent list stays non-overlapping.
        let mut cursor = offset;
        while cursor < end && file.lba_of(cursor).is_some() {
            cursor += 1;
        }
        if cursor < end {
            let base = layout.alloc_data(end - cursor);
            allocated = true;
            let mut a = cursor;
            while a < end {
                if file.lba_of(a).is_some() {
                    a += 1;
                    continue;
                }
                let mut b = a + 1;
                while b < end && file.lba_of(b).is_none() {
                    b += 1;
                }
                file.insert_extent(a, Lba(base.0 + (a - cursor)), b - a);
                a = b;
            }
        }
        if end > file.size_blocks {
            file.size_blocks = end;
            allocated = true;
        }
        allocated
    }

    /// Iterates over live file ids.
    pub fn ids(&self) -> impl Iterator<Item = FileId> + '_ {
        self.files
            .iter()
            .enumerate()
            .filter(|(_, f)| f.live)
            .map(|(i, _)| FileId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FileTable, Layout) {
        (FileTable::new(), Layout::new(64, 128))
    }

    #[test]
    fn create_allocates_inode() {
        let (mut ft, mut l) = setup();
        let a = ft.create(&mut l);
        let b = ft.create(&mut l);
        assert_ne!(ft.get(a).inode_lba, ft.get(b).inode_lba);
        assert!(ft.get(a).alloc_dirty, "fresh inode needs journaling");
        assert_eq!(ft.len(), 2);
    }

    #[test]
    fn allocation_extends_extents() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        assert!(ft.ensure_allocated(f, &mut l, 0, 4));
        assert_eq!(ft.get(f).size_blocks, 4);
        let lba0 = ft.get(f).lba_of(0).unwrap();
        let lba3 = ft.get(f).lba_of(3).unwrap();
        assert_eq!(lba3.0, lba0.0 + 3);
        // Re-allocating the same range is a no-op.
        assert!(!ft.ensure_allocated(f, &mut l, 0, 4));
    }

    #[test]
    fn appends_merge_into_one_extent() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        for block in 0..16 {
            ft.ensure_allocated(f, &mut l, block, 1);
        }
        let file = ft.get(f);
        assert_eq!(file.extent_count(), 1, "bump-allocated appends merge");
        let lba0 = file.lba_of(0).unwrap();
        for block in 0..16 {
            assert_eq!(file.lba_of(block), Some(Lba(lba0.0 + block)));
        }
    }

    #[test]
    fn spanning_write_keeps_existing_mappings() {
        // Allocate [5, 7), then write [0, 10): the span allocation must
        // not remap the already-allocated middle, and the holes on both
        // sides resolve into the fresh run.
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        ft.ensure_allocated(f, &mut l, 5, 2);
        let old5 = ft.get(f).lba_of(5).unwrap();
        ft.ensure_allocated(f, &mut l, 0, 10);
        let file = ft.get(f);
        assert_eq!(file.lba_of(5), Some(old5), "overlap keeps old mapping");
        assert_eq!(file.lba_of(6), Some(Lba(old5.0 + 1)));
        let new0 = file.lba_of(0).unwrap();
        assert_eq!(file.lba_of(4), Some(Lba(new0.0 + 4)), "leading hole");
        assert_eq!(file.lba_of(7), Some(Lba(new0.0 + 7)), "trailing hole");
        assert_eq!(file.lba_of(10), None);
        assert_eq!(file.size_blocks, 10);
    }

    #[test]
    fn sparse_extension_allocates_gap() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        ft.ensure_allocated(f, &mut l, 0, 2);
        ft.ensure_allocated(f, &mut l, 5, 2);
        assert!(ft.get(f).lba_of(6).is_some());
        assert_eq!(ft.get(f).size_blocks, 7);
    }

    #[test]
    fn metadata_dirty_flavours() {
        let (mut ft, mut l) = setup();
        let f = ft.create(&mut l);
        let file = ft.get_mut(f);
        file.alloc_dirty = false;
        file.mtime_dirty = true;
        assert!(file.metadata_dirty(false), "fsync sees mtime");
        assert!(!file.metadata_dirty(true), "fdatasync ignores mtime");
        file.alloc_dirty = true;
        assert!(file.metadata_dirty(true));
    }

    #[test]
    fn dirty_tracker_merges_runs() {
        let mut d = DirtyTracker::new();
        assert!(d.insert(5, BlockTag(1)));
        assert!(d.insert(7, BlockTag(2)));
        assert_eq!(d.run_count(), 2);
        // 6 bridges [5] and [7] into one run.
        assert!(d.insert(6, BlockTag(3)));
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.len(), 3);
        // Overwrite replaces the tag without growing.
        assert!(!d.insert(6, BlockTag(9)));
        assert_eq!(d.len(), 3);
        assert_eq!(d.tag_at(6), Some(BlockTag(9)));
        // Prepend extends a run downward.
        assert!(d.insert(4, BlockTag(4)));
        assert_eq!(d.run_count(), 1);
        assert_eq!(
            d.iter().collect::<Vec<_>>(),
            vec![
                (4, BlockTag(4)),
                (5, BlockTag(1)),
                (6, BlockTag(9)),
                (7, BlockTag(2)),
            ]
        );
    }

    #[test]
    fn dirty_tracker_budgeted_take_splits_runs() {
        let mut d = DirtyTracker::new();
        for b in 0..6u64 {
            d.insert(b, BlockTag(b + 1));
        }
        d.insert(10, BlockTag(99));
        let first = d.take_blocks(4);
        assert_eq!(
            first.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(d.len(), 3);
        assert!(d.contains(4) && d.contains(10) && !d.contains(0));
        let rest = d.take_blocks(10);
        assert_eq!(
            rest.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
            vec![4, 5, 10]
        );
        assert!(d.is_empty());
        assert!(d.take_blocks(3).is_empty());
    }

    #[test]
    fn dirty_tracker_take_runs_and_clear() {
        let mut d = DirtyTracker::new();
        d.insert(0, BlockTag(1));
        d.insert(1, BlockTag(2));
        d.insert(8, BlockTag(3));
        let runs = d.take_runs();
        assert_eq!(
            runs,
            vec![(0, vec![BlockTag(1), BlockTag(2)]), (8, vec![BlockTag(3)]),]
        );
        assert!(d.is_empty());
        d.insert(3, BlockTag(4));
        assert_eq!(d.clear(), 1);
        assert!(d.is_empty() && d.run_count() == 0);
    }

    #[test]
    fn ids_iterates_live_files() {
        let (mut ft, mut l) = setup();
        let a = ft.create(&mut l);
        let b = ft.create(&mut l);
        ft.get_mut(a).live = false;
        let ids: Vec<FileId> = ft.ids().collect();
        assert_eq!(ids, vec![b]);
    }
}
