//! The filesystem state machine: syscall entry points, write path, reads,
//! background writeback. The journal machinery lives in `journal.rs` as
//! further `impl Filesystem` blocks.
//!
//! The filesystem is a Mealy machine like the layers below: syscalls and
//! [`FsEvent`]s go in, [`FsAction`]s come out. The embedding simulator
//! routes `Submit` actions to the block layer and feeds request
//! completions back as [`FsEvent::ReqDone`].
//!
//! ## Blocking and context switches
//!
//! A syscall returns [`SyscallOutcome::Done`] when it completes without
//! sleeping (e.g. `write()`, `fdatabarrier()`), or
//! [`SyscallOutcome::Blocked`], in which case exactly one
//! [`FsAction::Wake`] follows eventually, and every sleep→wake transition
//! inside the call (including the final one) emits one
//! [`FsAction::CtxSwitch`]. The CtxSwitch count per operation is the
//! metric of the paper's Fig 11.

use std::collections::HashSet;

use bio_block::{BlockRequest, ReqFlags, ReqId};
use bio_flash::{BlockTag, Lba};
use bio_sim::{ActionSink, SeqTable, SimDuration, SimTime};

use crate::config::{FsConfig, FsMode};
use crate::file::{FileId, FileTable};
use crate::layout::Layout;
use crate::recovery::TxnRecord;
use crate::txn::{ConflictList, ThreadId, Txn, TxnId, TxnState, TxnTable};

/// Events the filesystem schedules for itself (routed back by the
/// embedding simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsEvent {
    /// A block request completed.
    ReqDone(ReqId),
    /// Resume a syscall state machine after a context-switch delay.
    Step(ThreadId),
    /// The JBD / commit thread runs.
    CommitRun,
    /// Background writeback daemon round.
    Pdflush,
    /// OptFS delayed-durability flush timer.
    OptfsFlush,
}

/// Outputs of the filesystem machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsAction {
    /// Submit a request to the block layer.
    Submit(BlockRequest),
    /// The blocked syscall of this thread completed; resume the caller.
    Wake(ThreadId),
    /// The caller slept and was woken once inside the syscall (metric for
    /// Fig 11; emitted for every sleep/wake pair including the final one).
    CtxSwitch(ThreadId),
    /// Schedule an event after a delay.
    After(SimDuration, FsEvent),
}

/// Synchronous result of a syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// Completed without sleeping.
    Done,
    /// Caller is blocked; an [`FsAction::Wake`] will follow.
    Blocked,
}

/// What a pending data-wait continues into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AfterData {
    /// EXT4 family: commit metadata or flush (phase 2 of `fsync`).
    Ext4Phase2 { datasync: bool },
    /// BarrierFS degenerate `fdatasync`: flush, then wake.
    FlushThenWake,
    /// OptFS: commit after the page scan; `durable` selects the wait.
    OptfsScan { durable: bool },
}

/// Per-thread syscall progress.
#[derive(Debug, Clone)]
#[allow(dead_code)] // txn fields are kept for state debugging
enum SyscallState {
    /// Waiting for data-page writes.
    AwaitData {
        pending: HashSet<ReqId>,
        file: FileId,
        then: AfterData,
    },
    /// Between CtxSwitch and Step (scheduling latency).
    Stepping { file: FileId, then: AfterData },
    /// Waiting for an explicit flush request.
    AwaitFlush,
    /// Waiting for a transaction to become durable.
    AwaitTxnDurable { txn: TxnId },
    /// Waiting for a transaction's commit dispatch (fbarrier).
    AwaitTxnDispatch { txn: TxnId },
    /// Waiting for a transaction's JC transfer (OptFS osync).
    AwaitTxnTransferred { txn: TxnId },
    /// EXT4 writer blocked on a page conflict; the write retries when the
    /// holder transaction releases its buffers.
    AwaitConflict {
        file: FileId,
        offset: u64,
        blocks: u64,
    },
    /// Waiting for a read.
    AwaitRead,
}

/// Dense per-thread syscall-state table. [`ThreadId`]s are small integers
/// assigned contiguously by the embedding simulator, so the table is a
/// direct-indexed `Vec` rather than a hash map — the syscall continuation
/// lookup sits on every request-completion path.
#[derive(Debug, Clone, Default)]
struct ThreadTable {
    slots: Vec<Option<SyscallState>>,
}

impl ThreadTable {
    fn set(&mut self, tid: ThreadId, state: SyscallState) {
        let i = tid.0 as usize;
        if i >= self.slots.len() {
            self.slots
                .resize_with((i + 1).max(self.slots.len() * 2), || None);
        }
        self.slots[i] = Some(state);
    }

    fn get(&self, tid: ThreadId) -> Option<&SyscallState> {
        self.slots.get(tid.0 as usize)?.as_ref()
    }

    fn get_mut(&mut self, tid: ThreadId) -> Option<&mut SyscallState> {
        self.slots.get_mut(tid.0 as usize)?.as_mut()
    }

    fn take(&mut self, tid: ThreadId) -> Option<SyscallState> {
        self.slots.get_mut(tid.0 as usize)?.take()
    }
}

/// Why a request was submitted (continuation routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Purpose {
    /// Data page write awaited by a thread.
    Data(ThreadId),
    /// Journal descriptor + logs of a transaction.
    Jd(TxnId),
    /// Journal commit block.
    Jc(TxnId),
    /// Flush awaited by one thread (degenerate fsync path).
    ThreadFlush(ThreadId),
    /// Flush issued by the flush thread covering transactions `<= upto`.
    TxnFlush { upto: TxnId },
    /// Checkpoint (in-place metadata) write of a transaction.
    Checkpoint(TxnId),
    /// Background writeback; no continuation.
    Writeback,
    /// Read awaited by a thread.
    Read(ThreadId),
}

/// Aggregate filesystem statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FsStats {
    /// Journal commits dispatched.
    pub commits: u64,
    /// Commits forced by barrier calls finding nothing dirty.
    pub forced_commits: u64,
    /// Data blocks submitted (foreground).
    pub data_blocks: u64,
    /// Journal blocks submitted (JD + logs + JC).
    pub journal_blocks: u64,
    /// Checkpoint blocks submitted.
    pub checkpoint_blocks: u64,
    /// Writeback blocks submitted by pdflush.
    pub writeback_blocks: u64,
    /// Page conflicts encountered (§4.3).
    pub page_conflicts: u64,
    /// Flush requests issued.
    pub flushes: u64,
    /// Journal events dropped because they referenced a retired or
    /// never-placed transaction (stale, duplicated or forged completions).
    pub dropped_journal_events: u64,
    /// Dirty pages dropped at submit time because no extent backed them
    /// (corrupted tracking state; the submit path never aborts).
    pub dropped_data_pages: u64,
}

/// Cap on the payload-buffer arena ([`Filesystem::restore_payload_buf`]).
const PAYLOAD_POOL_CAP: usize = 64;

/// The simulated filesystem.
///
/// `Clone` is a deep copy: every table, transaction, pool and scratch
/// buffer is duplicated, so a clone is an independent fork of the machine
/// (the `bio-fs` leg of stack `fork()`).
#[derive(Debug, Clone)]
pub struct Filesystem {
    pub(crate) cfg: FsConfig,
    pub(crate) layout: Layout,
    pub(crate) files: FileTable,
    /// Live transactions, keyed by the bump-allocated [`TxnId`]: a dense
    /// sliding-window table whose base acts as a generation check, so a
    /// completion for a retired transaction reads as absent instead of
    /// aliasing a live one (see [`TxnTable`]).
    pub(crate) txns: TxnTable,
    pub(crate) running: Option<TxnId>,
    /// Committing-transaction list, in commit order (§4.2).
    pub(crate) committing: Vec<TxnId>,
    pub(crate) next_txn: u64,
    pub(crate) conflicts: ConflictList,
    pub(crate) commit_scheduled: bool,
    syscalls: ThreadTable,
    /// Continuation routing per in-flight request, keyed by the
    /// bump-allocated [`ReqId`]: a dense sliding-window table whose base
    /// acts as a generation check, so a replayed or duplicate completion
    /// reads as absent instead of aliasing a live request.
    pub(crate) purposes: SeqTable<Purpose>,
    next_req: u64,
    /// Journal blocks held by non-checkpointed transactions.
    pub(crate) journal_used: u64,
    pub(crate) journal_stalled: bool,
    /// A TxnFlush request is in flight.
    pub(crate) flush_inflight: bool,
    /// A transferred transaction gained durability waiters while a flush
    /// was in flight; flush again.
    pub(crate) flush_again: bool,
    pub(crate) records: Vec<TxnRecord>,
    pub(crate) stats: FsStats,
    /// Total dirty data pages across all files (writeback watermarking).
    dirty_total: u64,
    /// Dirty-page count above which writes trigger inline writeback
    /// (the kernel's dirty-ratio behaviour).
    dirty_threshold: u64,
    /// Commit-path arena: retired transaction carcasses recycled by
    /// `ensure_running` (see [`Txn::reset`]). Bounded by the maximum
    /// number of concurrently live transactions, which the journal-space
    /// accounting already caps.
    pub(crate) txn_pool: Vec<Txn>,
    /// Scratch for the file-id walks of freeze/release (commit path runs
    /// once per transaction; collecting into a fresh `Vec` each time is
    /// pure allocator churn).
    pub(crate) scratch_files: Vec<FileId>,
    /// Scratch for checkpoint write lists (same lifecycle).
    pub(crate) scratch_writes: Vec<(Lba, BlockTag)>,
    /// Arena of journal-record payload buffers: the tag `Vec`s moved into
    /// submitted [`BlockRequest`]s come from here and return through
    /// [`Filesystem::restore_payload_buf`] when the block layer retires
    /// the command (completion-side return path).
    pub(crate) payload_pool: Vec<Vec<BlockTag>>,
    /// When capture tracking is armed, ids of records whose
    /// `durability_claimed` flag flipped since the last take — the only
    /// in-place mutation the otherwise append-only record history sees,
    /// so it is the only part a delta capture cannot read from the tail.
    pub(crate) durable_mark_log: Option<Vec<u64>>,
}

impl Filesystem {
    /// Creates a filesystem with the given configuration. `meta_blocks`
    /// bounds how many files can ever be created.
    pub fn new(cfg: FsConfig) -> Filesystem {
        Filesystem::with_txn_table(cfg, TxnTable::dense())
    }

    /// Creates a filesystem whose transaction table is the `HashMap`
    /// reference backend. Exists so equivalence tests can drive the dense
    /// and map-backed journals through identical syscall traces; not for
    /// production use.
    #[doc(hidden)]
    pub fn new_with_map_txn_table(cfg: FsConfig) -> Filesystem {
        Filesystem::with_txn_table(cfg, TxnTable::map_reference())
    }

    fn with_txn_table(cfg: FsConfig, txns: TxnTable) -> Filesystem {
        cfg.validate();
        let layout = Layout::new(65_536, cfg.journal_blocks);
        Filesystem {
            layout,
            files: FileTable::new(),
            txns,
            running: None,
            committing: Vec::new(),
            next_txn: 1,
            conflicts: ConflictList::new(),
            commit_scheduled: false,
            syscalls: ThreadTable::default(),
            purposes: SeqTable::new(),
            next_req: 1,
            journal_used: 0,
            journal_stalled: false,
            flush_inflight: false,
            flush_again: false,
            records: Vec::new(),
            stats: FsStats::default(),
            dirty_total: 0,
            dirty_threshold: 256,
            txn_pool: Vec::new(),
            scratch_files: Vec::new(),
            scratch_writes: Vec::new(),
            payload_pool: Vec::new(),
            durable_mark_log: None,
            cfg,
        }
    }

    /// Pops a recycled payload buffer (empty, capacity retained), or a
    /// fresh one when the arena is dry.
    pub(crate) fn take_payload_buf(&mut self) -> Vec<BlockTag> {
        self.payload_pool.pop().unwrap_or_default()
    }

    /// Returns a payload buffer to the arena. The embedding stack calls
    /// this with the tag `Vec`s the block layer hands back at command
    /// completion, closing the submit→complete→reuse loop.
    pub fn restore_payload_buf(&mut self, mut buf: Vec<BlockTag>) {
        if self.payload_pool.len() < PAYLOAD_POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.payload_pool.push(buf);
        }
    }

    /// Arms the periodic background tasks (pdflush, OptFS flusher). Call
    /// once after construction.
    pub fn start(&mut self, out: &mut ActionSink<FsAction>) {
        out.push(FsAction::After(
            self.cfg.writeback_interval,
            FsEvent::Pdflush,
        ));
        if self.cfg.mode == FsMode::OptFs {
            out.push(FsAction::After(
                self.cfg.optfs_flush_interval,
                FsEvent::OptfsFlush,
            ));
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// Statistics.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Ground-truth transaction records for the crash checker.
    pub fn records(&self) -> &[TxnRecord] {
        &self.records
    }

    /// Number of transactions currently in the committing list.
    pub fn committing_count(&self) -> usize {
        self.committing.len()
    }

    /// True when the journal can produce no further commit records without
    /// new syscall activity: nothing committing (every in-flight JD/JC
    /// belongs to a transaction frozen into `committing` first), no
    /// commit-thread run scheduled, no commit request pending on the
    /// running transaction (a drained committing list reschedules the run
    /// for it otherwise), and no dirty data pages left for writeback (the
    /// pdflush timer only ever submits data writes, never commits). Once
    /// every workload thread has finished, this condition is terminal —
    /// the crash engine uses it to stop stepping a drained trace instead
    /// of spinning the self-rearming timer to a stale-step limit.
    pub fn journal_quiescent(&self) -> bool {
        self.committing.is_empty()
            && !self.commit_scheduled
            && self.dirty_total == 0
            && self
                .running
                .and_then(|rt| self.txns.get(rt))
                .is_none_or(|t| !t.commit_requested)
    }

    /// Arms capture tracking: durable-mark flips on the record history are
    /// recorded from now on for [`Filesystem::take_durable_marks`]. Off by
    /// default; the crash engine drains the log at every capture.
    pub fn enable_capture_tracking(&mut self) {
        if self.durable_mark_log.is_none() {
            self.durable_mark_log = Some(Vec::new());
        }
    }

    /// Drains the ids of records whose `durability_claimed` flag flipped
    /// since the previous take (empty when tracking was never armed).
    pub fn take_durable_marks(&mut self) -> Vec<u64> {
        self.durable_mark_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Creates a file.
    pub fn create(&mut self, _tid: ThreadId, out: &mut ActionSink<FsAction>) -> FileId {
        let id = self.files.create(&mut self.layout);
        let f = self.files.get(id);
        let (lba, tag) = (f.inode_lba, f.meta_tag);
        self.dirty_inode(id, lba, tag, out);
        id
    }

    /// Deletes a file (metadata-only in this model).
    pub fn unlink(&mut self, _tid: ThreadId, file: FileId, out: &mut ActionSink<FsAction>) {
        let f = self.files.get_mut(file);
        f.live = false;
        let dropped = f.dirty_data.clear() as u64;
        f.alloc_dirty = true;
        self.dirty_total = self.dirty_total.saturating_sub(dropped);
        let tag = self.layout.next_tag();
        let f = self.files.get_mut(file);
        f.meta_tag = tag;
        let lba = f.inode_lba;
        self.dirty_inode(file, lba, tag, out);
    }

    pub(crate) fn alloc_req(&mut self, purpose: Purpose) -> ReqId {
        let id = ReqId(self.next_req);
        self.next_req += 1;
        self.purposes.insert(id.0, purpose);
        id
    }

    /// Buffered write of `blocks` blocks at `offset`. Returns `Done`
    /// unless an EXT4 page conflict blocks the caller (§4.3).
    pub fn write(
        &mut self,
        tid: ThreadId,
        file: FileId,
        offset: u64,
        blocks: u64,
        now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        assert!(blocks > 0, "zero-length write");
        let tick = now.as_nanos() / self.cfg.timer_tick.as_nanos().max(1);
        // Would this write change metadata?
        let needs_alloc = {
            let f = self.files.get(file);
            (offset..offset + blocks).any(|b| f.lba_of(b).is_none())
                || offset + blocks > f.size_blocks
        };
        let mtime_change = self.files.get(file).mtime_tick != tick;
        let meta_change = needs_alloc || mtime_change;

        // Page-conflict check: the inode buffer is held by a committing
        // transaction and we are about to re-dirty it.
        if meta_change {
            if let Some(holder) = self.committing_holder(file) {
                self.stats.page_conflicts += 1;
                if self.cfg.mode == FsMode::BarrierFs {
                    // Multi-transaction page conflict: record in the
                    // conflict-page list and proceed without blocking.
                    let inode = self.files.get(file).inode_lba;
                    self.conflicts.add(inode, file, holder);
                } else if let Some(t) = self.txns.get_mut(holder) {
                    // Legacy journaling: the writer blocks until the
                    // committing transaction releases the buffer.
                    t.conflict_waiters.push(tid);
                    self.syscalls.set(
                        tid,
                        SyscallState::AwaitConflict {
                            file,
                            offset,
                            blocks,
                        },
                    );
                    return SyscallOutcome::Blocked;
                }
            }
        }

        // Apply the write to the page cache.
        if needs_alloc {
            self.files
                .ensure_allocated(file, &mut self.layout, offset, blocks);
        }
        for b in offset..offset + blocks {
            let tag = self.layout.next_tag();
            if self.files.get_mut(file).dirty_data.insert(b, tag) {
                self.dirty_total += 1;
            }
        }
        if meta_change {
            let f = self.files.get_mut(file);
            f.alloc_dirty |= needs_alloc;
            f.mtime_dirty |= mtime_change;
            f.mtime_tick = tick;
            let tag = self.layout.next_tag();
            let f = self.files.get_mut(file);
            f.meta_tag = tag;
            let lba = f.inode_lba;
            // Conflicted BarrierFS inodes join the running transaction
            // later, at conflict resolution.
            if !self.conflicts.contains(lba) {
                self.dirty_inode(file, lba, tag, out);
            }
        }
        // Dirty-ratio behaviour: past the threshold, writes kick the
        // writeback daemon inline so buffered workloads reach the device.
        if self.dirty_total > self.dirty_threshold {
            self.pdflush(out);
        }
        SyscallOutcome::Done
    }

    /// The committing (non-released) transaction currently holding this
    /// file's inode buffer, if any.
    fn committing_holder(&self, file: FileId) -> Option<TxnId> {
        let t = self.files.get(file).txn?;
        let txn = self.txns.get(t)?;
        match txn.state {
            TxnState::Running => None,
            _ if self.committing.contains(&t) => Some(t),
            _ => None,
        }
    }

    /// Inserts the inode buffer into the running transaction.
    pub(crate) fn dirty_inode(
        &mut self,
        file: FileId,
        inode_lba: Lba,
        tag: BlockTag,
        out: &mut ActionSink<FsAction>,
    ) {
        let rt = self.ensure_running(out);
        if let Some(t) = self.txns.get_mut(rt) {
            t.add_buffer(inode_lba, file, tag);
        }
        self.files.get_mut(file).txn = Some(rt);
    }

    pub(crate) fn ensure_running(&mut self, _out: &mut ActionSink<FsAction>) -> TxnId {
        if let Some(rt) = self.running {
            return rt;
        }
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let txn = match self.txn_pool.pop() {
            Some(mut t) => {
                t.reset(id);
                t
            }
            None => Txn::new(id),
        };
        self.txns.insert(id, txn);
        self.running = Some(id);
        id
    }

    // ------------------------------------------------------------------
    // Data submission helpers.
    // ------------------------------------------------------------------

    /// Takes the file's dirty pages and submits them as write requests
    /// (contiguous runs become single requests). Returns the request ids
    /// and the `(lba, tag)` pairs submitted, sorted by LBA.
    pub(crate) fn submit_dirty_data(
        &mut self,
        tid: ThreadId,
        file: FileId,
        flags: ReqFlags,
        barrier_on_last: bool,
        out: &mut ActionSink<FsAction>,
    ) -> (Vec<ReqId>, Vec<(Lba, BlockTag)>) {
        // Drain the dirty runs and resolve them to LBA segments, splitting
        // a run where its blocks cross an extent boundary. Segments are
        // disjoint LBA ranges, so sorting them by start is the same order a
        // per-block sort would produce — request formation is byte-for-byte
        // what the per-block map implementation emitted.
        let runs = {
            let f = self.files.get_mut(file);
            let runs = f.dirty_data.take_runs();
            let n: usize = runs.iter().map(|(_, tags)| tags.len()).sum();
            self.dirty_total = self.dirty_total.saturating_sub(n as u64);
            runs
        };
        let mut segs: Vec<(Lba, Vec<BlockTag>)> = Vec::new();
        for (start, tags) in runs {
            let f = self.files.get_mut(file);
            let mut seg: Option<(Lba, Vec<BlockTag>)> = None;
            for (i, tag) in tags.into_iter().enumerate() {
                let b = start + i as u64;
                // A dirty page is always backed by an extent, so the
                // lookup succeeds on every real path; a page without one
                // would mean corrupted tracking state, and the submit
                // path drops it with a counter rather than aborting the
                // simulation (totality: see docs/INVARIANTS.md).
                let Some(lba) = f.lba_of(b) else {
                    self.stats.dropped_data_pages += 1;
                    continue;
                };
                f.committed_blocks.insert(b, ());
                match &mut seg {
                    Some((s, ts)) if lba.0 == s.0 + ts.len() as u64 => ts.push(tag),
                    _ => {
                        segs.extend(seg.take());
                        // Disjoint field borrow: `f` holds `self.files`.
                        let mut ts = self.payload_pool.pop().unwrap_or_default();
                        ts.push(tag);
                        seg = Some((lba, ts));
                    }
                }
            }
            segs.extend(seg);
        }
        segs.sort_by_key(|(l, _)| *l);
        // Coalesce segments that are LBA-adjacent across runs/extents.
        let mut merged: Vec<(Lba, Vec<BlockTag>)> = Vec::with_capacity(segs.len());
        for (start, mut tags) in segs {
            match merged.last_mut() {
                Some((s, ts)) if start.0 == s.0 + ts.len() as u64 => {
                    ts.append(&mut tags);
                    self.restore_payload_buf(tags);
                }
                _ => merged.push((start, tags)),
            }
        }
        let mut pairs: Vec<(Lba, BlockTag)> = Vec::new();
        let mut reqs = Vec::with_capacity(merged.len());
        let last = merged.len();
        for (i, (start, tags)) in merged.into_iter().enumerate() {
            pairs.extend(
                tags.iter()
                    .enumerate()
                    .map(|(j, t)| (start.offset(j as u64), *t)),
            );
            let rid = self.alloc_req(Purpose::Data(tid));
            self.stats.data_blocks += tags.len() as u64;
            let mut f = flags;
            if barrier_on_last && i + 1 == last {
                f.barrier = true;
                f.ordered = true;
            }
            // Data writes carry the submitting thread as origin so the
            // block layer can route them thread-affine (`LaneRouting::
            // ByThread`); origin 0 stays reserved for kernel contexts.
            out.push(FsAction::Submit(
                BlockRequest::write(rid, start, tags, f).with_origin(tid.0.wrapping_add(1)),
            ));
            reqs.push(rid);
        }
        (reqs, pairs)
    }

    // ------------------------------------------------------------------
    // Synchronisation syscalls.
    // ------------------------------------------------------------------

    /// `fsync(fd)`: durability + ordering.
    pub fn fsync(
        &mut self,
        tid: ThreadId,
        file: FileId,
        now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        self.sync_common(tid, file, false, now, out)
    }

    /// `fdatasync(fd)`: like `fsync` but skips timestamp-only metadata.
    pub fn fdatasync(
        &mut self,
        tid: ThreadId,
        file: FileId,
        now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        self.sync_common(tid, file, true, now, out)
    }

    fn sync_common(
        &mut self,
        tid: ThreadId,
        file: FileId,
        datasync: bool,
        _now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        match self.cfg.mode {
            FsMode::Ext4 | FsMode::Ext4NoBarrier => self.ext4_sync(tid, file, datasync, out),
            FsMode::BarrierFs => self.bfs_sync(tid, file, datasync, out),
            FsMode::OptFs => self.optfs_osync(tid, file, datasync, true, out),
        }
    }

    /// `fbarrier(fd)`: ordering-only counterpart of `fsync` (§4.1).
    /// Only meaningful on BarrierFS; on OptFS it maps to `osync`.
    pub fn fbarrier(
        &mut self,
        tid: ThreadId,
        file: FileId,
        now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        match self.cfg.mode {
            FsMode::BarrierFs => self.bfs_barrier(tid, file, false, out),
            FsMode::OptFs => self.optfs_osync(tid, file, false, false, out),
            // Without barrier support the closest legal semantics is fsync.
            _ => self.sync_common(tid, file, false, now, out),
        }
    }

    /// `fdatabarrier(fd)`: ordering-only counterpart of `fdatasync`; the
    /// storage mfence (§4.1). Returns without blocking on BarrierFS.
    pub fn fdatabarrier(
        &mut self,
        tid: ThreadId,
        file: FileId,
        now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        match self.cfg.mode {
            FsMode::BarrierFs => self.bfs_barrier(tid, file, true, out),
            FsMode::OptFs => self.optfs_osync(tid, file, true, false, out),
            _ => self.sync_common(tid, file, true, now, out),
        }
    }

    // --- EXT4 family -----------------------------------------------------

    fn ext4_sync(
        &mut self,
        tid: ThreadId,
        file: FileId,
        datasync: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        let has_dirty = !self.files.get(file).dirty_data.is_empty();
        if has_dirty {
            let (reqs, pairs) = self.submit_dirty_data(tid, file, ReqFlags::NONE, false, out);
            self.note_ordered_data(&pairs);
            self.syscalls.set(
                tid,
                SyscallState::AwaitData {
                    pending: reqs.into_iter().collect(),
                    file,
                    then: AfterData::Ext4Phase2 { datasync },
                },
            );
            SyscallOutcome::Blocked
        } else {
            self.ext4_phase2(tid, file, datasync, out)
        }
    }

    /// Phase 2 of an EXT4 fsync: after data is transferred, commit the
    /// journal (metadata dirty) or flush the device cache (degenerate).
    fn ext4_phase2(
        &mut self,
        tid: ThreadId,
        file: FileId,
        datasync: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        // Wait on an in-flight commit holding this inode.
        if let Some(holder) = self.committing_holder(file) {
            if let Some(t) = self.txns.get_mut(holder) {
                t.durable_waiters.push(tid);
                self.syscalls
                    .set(tid, SyscallState::AwaitTxnDurable { txn: holder });
                return SyscallOutcome::Blocked;
            }
        }
        if self.files.get(file).metadata_dirty(datasync) {
            let rt = self.ensure_running(out);
            // The inode is in the running transaction (dirtied at write).
            if let Some(t) = self.txns.get_mut(rt) {
                t.durable_waiters.push(tid);
            }
            self.trigger_commit(rt, out);
            self.syscalls
                .set(tid, SyscallState::AwaitTxnDurable { txn: rt });
            return SyscallOutcome::Blocked;
        }
        // Degenerate (fdatasync-equivalent) path.
        if self.cfg.mode == FsMode::Ext4NoBarrier {
            // nobarrier: no flush — return right away.
            return SyscallOutcome::Done;
        }
        let rid = self.alloc_req(Purpose::ThreadFlush(tid));
        self.stats.flushes += 1;
        out.push(FsAction::Submit(BlockRequest::flush(rid)));
        self.syscalls.set(tid, SyscallState::AwaitFlush);
        SyscallOutcome::Blocked
    }

    // --- BarrierFS --------------------------------------------------------

    fn bfs_sync(
        &mut self,
        tid: ThreadId,
        file: FileId,
        datasync: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        let has_dirty = !self.files.get(file).dirty_data.is_empty();
        let meta_dirty = self.files.get(file).metadata_dirty(datasync);
        let committing_holder = self.committing_holder(file);

        if meta_dirty && committing_holder.is_none() || self.conflicts_pending_for(file) {
            // Full path: D (ordered), then dual-mode journal commit; the
            // caller sleeps once, woken by the flush thread.
            if has_dirty {
                let (_, pairs) = self.submit_dirty_data(tid, file, ReqFlags::ORDERED, false, out);
                self.note_ordered_data(&pairs);
            }
            let rt = self.ensure_running(out);
            if let Some(t) = self.txns.get_mut(rt) {
                t.durable_waiters.push(tid);
            }
            self.trigger_commit(rt, out);
            self.syscalls
                .set(tid, SyscallState::AwaitTxnDurable { txn: rt });
            return SyscallOutcome::Blocked;
        }
        if let Some(holder) = committing_holder {
            // Metadata already committing: wait for that transaction's
            // durability (requesting a flush if it was ordering-only).
            if has_dirty {
                let (_, pairs) = self.submit_dirty_data(tid, file, ReqFlags::ORDERED, true, out);
                self.note_ordered_data(&pairs);
            }
            return self.await_txn_durable(tid, holder, out);
        }
        if has_dirty {
            // Degenerate path: D is its own epoch (barrier on the last
            // request), wait for transfer, then flush. Two sleeps.
            let (reqs, pairs) = self.submit_dirty_data(tid, file, ReqFlags::ORDERED, true, out);
            self.note_ordered_data(&pairs);
            self.syscalls.set(
                tid,
                SyscallState::AwaitData {
                    pending: reqs.into_iter().collect(),
                    file,
                    then: AfterData::FlushThenWake,
                },
            );
            return SyscallOutcome::Blocked;
        }
        // Nothing dirty at all: force a journal commit to delimit an epoch
        // and provide durability (§4.2).
        let rt = self.ensure_running(out);
        if let Some(t) = self.txns.get_mut(rt) {
            t.durable_waiters.push(tid);
        }
        self.stats.forced_commits += 1;
        self.trigger_commit(rt, out);
        self.syscalls
            .set(tid, SyscallState::AwaitTxnDurable { txn: rt });
        SyscallOutcome::Blocked
    }

    /// Are there unresolved conflict entries whose resolution will land in
    /// the running transaction this file cares about?
    fn conflicts_pending_for(&self, file: FileId) -> bool {
        self.conflicts.contains(self.files.get(file).inode_lba)
    }

    fn bfs_barrier(
        &mut self,
        tid: ThreadId,
        file: FileId,
        datasync: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        let has_dirty = !self.files.get(file).dirty_data.is_empty();
        let meta_dirty = !datasync && self.files.get(file).metadata_dirty(false);
        if !datasync && (meta_dirty || self.conflicts_pending_for(file)) {
            // fbarrier full path: D ordered; wait for the commit thread to
            // dispatch JC (one sleep).
            if has_dirty {
                let (_, pairs) = self.submit_dirty_data(tid, file, ReqFlags::ORDERED, false, out);
                self.note_ordered_data(&pairs);
            }
            let rt = self.ensure_running(out);
            if let Some(t) = self.txns.get_mut(rt) {
                t.dispatch_waiters.push(tid);
            }
            self.trigger_commit(rt, out);
            self.syscalls
                .set(tid, SyscallState::AwaitTxnDispatch { txn: rt });
            return SyscallOutcome::Blocked;
        }
        if has_dirty {
            // fdatabarrier / degenerate fbarrier: dispatch D as an epoch of
            // its own and return immediately — the storage mfence.
            let (_, pairs) = self.submit_dirty_data(tid, file, ReqFlags::ORDERED, true, out);
            self.note_ordered_data(&pairs);
            return SyscallOutcome::Done;
        }
        // Nothing dirty: force an (asynchronous) commit to delimit the
        // epoch; do not wait.
        let rt = self.ensure_running(out);
        self.stats.forced_commits += 1;
        self.trigger_commit(rt, out);
        SyscallOutcome::Done
    }

    /// Registers `tid` as a durability waiter of `txn`, arranging a flush
    /// if the transaction is past the point where one would happen.
    /// Returns `Blocked` (a `Wake` will follow) in the normal case.
    ///
    /// A transaction that raced to retirement (or durability) between the
    /// caller's check and this registration returns `Done` instead: the
    /// condition the caller wanted to wait for already holds, so the
    /// syscall completes without sleeping — emitting a mid-syscall `Wake`
    /// here would reach the embedding stack before it has marked the
    /// thread as in-syscall, and leaving the waiter registered on a
    /// retired transaction would strand the thread forever.
    pub(crate) fn await_txn_durable(
        &mut self,
        tid: ThreadId,
        txn: TxnId,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        match self.txns.get_mut(txn) {
            Some(t) if t.state < TxnState::Durable => {
                let state = t.state;
                t.durable_waiters.push(tid);
                if state == TxnState::Transferred {
                    self.request_txn_flush(out);
                }
                self.syscalls
                    .set(tid, SyscallState::AwaitTxnDurable { txn });
                SyscallOutcome::Blocked
            }
            _ => SyscallOutcome::Done,
        }
    }

    /// Records data pages that must precede the next commit (ordered-mode
    /// data dependency, tracked for the crash checker).
    pub(crate) fn note_ordered_data(&mut self, pairs: &[(Lba, BlockTag)]) {
        if pairs.is_empty() {
            return;
        }
        let mut scratch = ActionSink::new();
        let rt = self.ensure_running(&mut scratch);
        debug_assert!(scratch.is_empty());
        if let Some(t) = self.txns.get_mut(rt) {
            t.ordered_data.extend_from_slice(pairs);
        }
    }

    /// Removes a thread's syscall-state entry (it completed).
    pub(crate) fn clear_syscall(&mut self, tid: ThreadId) {
        self.syscalls.take(tid);
    }

    /// Adjusts the global dirty-page counter after a bulk removal.
    pub(crate) fn note_dirty_drop(&mut self, n: u64) {
        self.dirty_total = self.dirty_total.saturating_sub(n);
    }

    /// Blocks `tid` awaiting data-write completions.
    pub(crate) fn set_state_await_data(
        &mut self,
        tid: ThreadId,
        file: FileId,
        reqs: Vec<ReqId>,
        then: AfterData,
    ) {
        self.syscalls.set(
            tid,
            SyscallState::AwaitData {
                pending: reqs.into_iter().collect(),
                file,
                then,
            },
        );
    }

    /// Blocks `tid` awaiting a transaction's durability.
    pub(crate) fn set_state_await_durable(&mut self, tid: ThreadId, txn: TxnId) {
        self.syscalls
            .set(tid, SyscallState::AwaitTxnDurable { txn });
    }

    /// Blocks `tid` awaiting a transaction's JC transfer.
    pub(crate) fn set_state_await_transferred(&mut self, tid: ThreadId, txn: TxnId) {
        self.syscalls
            .set(tid, SyscallState::AwaitTxnTransferred { txn });
    }

    // ------------------------------------------------------------------
    // Reads.
    // ------------------------------------------------------------------

    /// Reads `blocks` blocks at `offset`. Served from the page cache when
    /// possible (no sleep); otherwise one device read (one sleep).
    pub fn read(
        &mut self,
        tid: ThreadId,
        file: FileId,
        offset: u64,
        blocks: u64,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        let f = self.files.get(file);
        let cached = (offset..offset + blocks)
            .all(|b| f.dirty_data.contains(b) || f.committed_blocks.contains_key(&b));
        if cached {
            return SyscallOutcome::Done;
        }
        let Some(start) = f.lba_of(offset) else {
            return SyscallOutcome::Done; // hole: zeros, no IO
        };
        let rid = self.alloc_req(Purpose::Read(tid));
        out.push(FsAction::Submit(
            BlockRequest::read(rid, start, blocks).with_origin(tid.0.wrapping_add(1)),
        ));
        self.syscalls.set(tid, SyscallState::AwaitRead);
        SyscallOutcome::Blocked
    }

    // ------------------------------------------------------------------
    // Event handling.
    // ------------------------------------------------------------------

    /// Processes an event previously emitted via [`FsAction::After`] or a
    /// request completion routed from the block layer.
    pub fn handle(&mut self, ev: FsEvent, now: SimTime, out: &mut ActionSink<FsAction>) {
        match ev {
            FsEvent::ReqDone(rid) => self.on_req_done(rid, now, out),
            FsEvent::Step(tid) => self.on_step(tid, now, out),
            FsEvent::CommitRun => self.on_commit_run(now, out),
            FsEvent::Pdflush => {
                self.pdflush(out);
                out.push(FsAction::After(
                    self.cfg.writeback_interval,
                    FsEvent::Pdflush,
                ));
            }
            FsEvent::OptfsFlush => {
                self.optfs_periodic_flush(out);
                out.push(FsAction::After(
                    self.cfg.optfs_flush_interval,
                    FsEvent::OptfsFlush,
                ));
            }
        }
    }

    fn on_req_done(&mut self, rid: ReqId, now: SimTime, out: &mut ActionSink<FsAction>) {
        // A completion for a request with no continuation entry is a
        // duplicate (the device replayed an interrupt) or a forgery; both
        // are drivable from outside the filesystem, so drop them here
        // rather than unwrapping. The purposes window-base check ensures a
        // stale ReqId can never alias a newer live request.
        let Some(purpose) = self.purposes.remove(rid.0) else {
            return;
        };
        match purpose {
            Purpose::Data(tid) => self.on_data_done(tid, rid, out),
            Purpose::Jd(txn) => self.on_jd_done(txn, out),
            Purpose::Jc(txn) => self.on_jc_done(txn, now, out),
            Purpose::ThreadFlush(tid) => {
                let st = self.syscalls.take(tid);
                debug_assert!(matches!(st, Some(SyscallState::AwaitFlush)));
                out.push(FsAction::CtxSwitch(tid));
                out.push(FsAction::Wake(tid));
            }
            Purpose::TxnFlush { upto } => self.on_txn_flush_done(upto, out),
            Purpose::Checkpoint(txn) => self.on_checkpoint_done(txn, out),
            Purpose::Writeback => {}
            Purpose::Read(tid) => {
                let st = self.syscalls.take(tid);
                debug_assert!(matches!(st, Some(SyscallState::AwaitRead)));
                out.push(FsAction::CtxSwitch(tid));
                out.push(FsAction::Wake(tid));
            }
        }
    }

    fn on_data_done(&mut self, tid: ThreadId, rid: ReqId, out: &mut ActionSink<FsAction>) {
        let Some(SyscallState::AwaitData {
            pending,
            file,
            then,
        }) = self.syscalls.get_mut(tid)
        else {
            // A data write submitted by a call that has since completed
            // (e.g. fdatabarrier); nothing to continue.
            return;
        };
        pending.remove(&rid);
        if !pending.is_empty() {
            return;
        }
        let (file, then) = (*file, *then);
        // All data transferred: the caller wakes (context switch) and
        // continues after the scheduling delay.
        self.syscalls
            .set(tid, SyscallState::Stepping { file, then });
        out.push(FsAction::CtxSwitch(tid));
        out.push(FsAction::After(self.cfg.ctx_switch, FsEvent::Step(tid)));
    }

    fn on_step(&mut self, tid: ThreadId, now: SimTime, out: &mut ActionSink<FsAction>) {
        let Some(SyscallState::Stepping { file, then }) = self.syscalls.get(tid).cloned() else {
            return;
        };
        self.syscalls.take(tid);
        match then {
            AfterData::Ext4Phase2 { datasync } => {
                if self.ext4_phase2(tid, file, datasync, out) == SyscallOutcome::Done {
                    out.push(FsAction::Wake(tid));
                }
            }
            AfterData::FlushThenWake => {
                let rid = self.alloc_req(Purpose::ThreadFlush(tid));
                self.stats.flushes += 1;
                out.push(FsAction::Submit(BlockRequest::flush(rid)));
                self.syscalls.set(tid, SyscallState::AwaitFlush);
            }
            AfterData::OptfsScan { durable } => {
                let _ = file;
                let _ = now;
                let _ = self.optfs_commit_and_wait(tid, durable, out);
            }
        }
    }

    /// Re-runs a write blocked on an EXT4 page conflict.
    pub(crate) fn retry_conflicted_write(
        &mut self,
        tid: ThreadId,
        now: SimTime,
        out: &mut ActionSink<FsAction>,
    ) {
        let Some(SyscallState::AwaitConflict {
            file,
            offset,
            blocks,
        }) = self.syscalls.get(tid).cloned()
        else {
            return;
        };
        self.syscalls.take(tid);
        match self.write(tid, file, offset, blocks, now, out) {
            SyscallOutcome::Done => {
                out.push(FsAction::CtxSwitch(tid));
                out.push(FsAction::Wake(tid));
            }
            SyscallOutcome::Blocked => { /* conflicted again; stays blocked */ }
        }
    }

    /// Background writeback: submits orderless writes for dirty pages.
    fn pdflush(&mut self, out: &mut ActionSink<FsAction>) {
        let mut budget = self.cfg.writeback_batch;
        let ids: Vec<FileId> = self.files.ids().collect();
        for id in ids {
            if budget == 0 {
                break;
            }
            if self.files.get(id).dirty_data.is_empty() {
                continue;
            }
            // Writing back data pages does not commit metadata; take up to
            // `budget` pages (lowest block first, as the map-keyed
            // implementation did).
            let taken: Vec<(u64, BlockTag)> = self.files.get_mut(id).dirty_data.take_blocks(budget);
            budget = budget.saturating_sub(taken.len());
            self.dirty_total = self.dirty_total.saturating_sub(taken.len() as u64);
            for (b, tag) in taken {
                let f = self.files.get_mut(id);
                f.committed_blocks.insert(b, ());
                let lba = f.lba_of(b).expect("allocated");
                let rid = self.alloc_req(Purpose::Writeback);
                self.stats.writeback_blocks += 1;
                let mut tags = self.take_payload_buf();
                tags.push(tag);
                out.push(FsAction::Submit(BlockRequest::write(
                    rid,
                    lba,
                    tags,
                    ReqFlags::NONE,
                )));
            }
        }
    }
}
