//! Journal commit machinery: the legacy JBD thread (EXT4 / EXT4-nobarrier
//! / OptFS) and BarrierFS Dual-Mode Journaling (§4.2).
//!
//! Legacy commit (Eq. 2 of the paper):
//!
//! ```text
//! D → xfer → JD → xfer → JC(FLUSH|FUA)            one committing txn
//! ```
//!
//! Dual-mode commit (Eq. 3):
//!
//! ```text
//! commit thread:  D(ordered) → JD(ordered|barrier) → JC(ordered|barrier)
//! flush thread:   ... JC transferred → [flush if durability wanted]
//! ```
//!
//! The commit thread never waits for a transfer, so the interval between
//! journal commits shrinks from `tD + tC + tF` to `tD` (Fig 8), and many
//! transactions can be in the committing list at once.
//!
//! ## Totality
//!
//! Every handler here is a *total* state machine: a completion event that
//! names a retired transaction, arrives twice, or arrives out of phase
//! (a JC done before its JD was ever placed) is dropped — counted in
//! [`crate::FsStats::dropped_journal_events`] — instead of unwrapping.
//! The transaction table's sliding window guarantees a retired [`TxnId`]
//! reads as absent rather than aliasing a live transaction, which is what
//! makes the graceful drops sound.

use bio_block::{BlockRequest, ReqFlags};
use bio_sim::{ActionSink, SimTime};

use crate::config::FsMode;
use crate::file::FileId;
use crate::fs::{AfterData, Filesystem, FsAction, FsEvent, Purpose, SyscallOutcome};
use crate::recovery::TxnRecord;
use crate::txn::{ThreadId, Txn, TxnId, TxnState};

/// Why a journal-path event could not be applied. These conditions are
/// drivable from outside the filesystem (a replayed interrupt, a forged
/// completion, a transaction that retired while the event was in flight),
/// so they are reported rather than panicked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// The event referenced a transaction that is not in the table
    /// (never existed, or already checkpointed and retired).
    RetiredTxn(TxnId),
    /// A JC completion or submission arrived for a transaction whose JD
    /// was never placed (no journal addresses allocated).
    JcBeforeJd(TxnId),
    /// The event duplicates one that was already applied (e.g. a second
    /// JD write-done after JC was already submitted).
    Duplicate(TxnId),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::RetiredTxn(t) => write!(f, "journal event for retired txn {}", t.0),
            JournalError::JcBeforeJd(t) => {
                write!(f, "JC event for txn {} whose JD was never placed", t.0)
            }
            JournalError::Duplicate(t) => write!(f, "duplicate journal event for txn {}", t.0),
        }
    }
}

impl std::error::Error for JournalError {}

impl Filesystem {
    /// Counts a stale/duplicate/forged journal event that was dropped.
    pub(crate) fn note_dropped_journal_event(&mut self) {
        self.stats.dropped_journal_events += 1;
    }

    /// Requests a commit of `txn` (which must be the running transaction)
    /// and schedules the commit thread.
    pub(crate) fn trigger_commit(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        debug_assert_eq!(self.running, Some(txn));
        let Some(t) = self.txns.get_mut(txn) else {
            return;
        };
        t.commit_requested = true;
        self.schedule_commit_run(out);
    }

    pub(crate) fn schedule_commit_run(&mut self, out: &mut ActionSink<FsAction>) {
        if self.commit_scheduled {
            return;
        }
        self.commit_scheduled = true;
        out.push(FsAction::After(
            self.cfg.commit_thread_wake,
            FsEvent::CommitRun,
        ));
    }

    /// The commit thread body.
    pub(crate) fn on_commit_run(&mut self, _now: SimTime, out: &mut ActionSink<FsAction>) {
        self.commit_scheduled = false;
        match self.cfg.mode {
            FsMode::BarrierFs => self.dual_mode_commit(out),
            _ => self.jbd_commit(out),
        }
    }

    /// True when the running transaction exists and has a pending commit
    /// request.
    fn running_commit_requested(&self, rt: TxnId) -> bool {
        self.txns.get(rt).is_some_and(|t| t.commit_requested)
    }

    /// Legacy JBD: at most one committing transaction; JD then JC with
    /// Wait-on-Transfer between them (the JC submit happens in
    /// `on_jd_done`).
    fn jbd_commit(&mut self, out: &mut ActionSink<FsAction>) {
        // A commit is already in flight: it will reschedule us when done.
        if !self.committing.is_empty() {
            return;
        }
        let Some(rt) = self.running else { return };
        if !self.running_commit_requested(rt) {
            return;
        }
        if !self.freeze_running(rt) {
            return; // journal space stall; retried on checkpoint completion
        }
        // Submit JD (descriptor + logs) as one plain write; JC follows its
        // completion (Wait-on-Transfer).
        self.submit_jd(rt, ReqFlags::NONE, out);
    }

    /// BarrierFS commit thread: commits the running transaction with
    /// order-preserving requests and immediately becomes available for the
    /// next one. No transfer waits anywhere.
    fn dual_mode_commit(&mut self, out: &mut ActionSink<FsAction>) {
        loop {
            let Some(rt) = self.running else { return };
            if !self.running_commit_requested(rt) {
                return;
            }
            // §4.3: the running transaction commits only once the
            // conflict-page list is empty.
            if !self.conflicts.is_empty() {
                return;
            }
            if !self.freeze_running(rt) {
                return; // journal space stall
            }
            self.submit_jd(rt, ReqFlags::BARRIER, out);
            if self.submit_jc(rt, ReqFlags::BARRIER, out).is_err() {
                // submit_jd just placed the journal addresses, so this is
                // only reachable if the transaction vanished mid-commit.
                self.note_dropped_journal_event();
                return;
            }
            // Wake fbarrier callers: ordering is now in flight (§4.2, "in
            // ordering guarantee the commit thread wakes up the caller").
            let mut waiters = match self.txns.get_mut(rt) {
                Some(t) => std::mem::take(&mut t.dispatch_waiters),
                None => Vec::new(),
            };
            for tid in waiters.drain(..) {
                self.clear_syscall(tid);
                out.push(FsAction::CtxSwitch(tid));
                out.push(FsAction::Wake(tid));
            }
            self.restore_waiter_buf(rt, waiters, |t| &mut t.dispatch_waiters);
            // Loop: if another running transaction with a pending request
            // appeared, commit it too (committing list grows).
        }
    }

    /// Freezes the running transaction into the committing list. Returns
    /// false when the journal has no room (commit retried after
    /// checkpointing frees space) or the transaction is gone.
    fn freeze_running(&mut self, rt: TxnId) -> bool {
        let Some(blocks) = self.txns.get(rt).map(|t| t.journal_blocks()) else {
            return false;
        };
        if self.journal_used + blocks > self.cfg.journal_blocks {
            self.journal_stalled = true;
            return false;
        }
        self.journal_used += blocks;
        let mut buffers = std::mem::take(&mut self.scratch_files);
        let Some(txn) = self.txns.get_mut(rt) else {
            self.scratch_files = buffers;
            return false;
        };
        txn.state = TxnState::Committing;
        buffers.extend(txn.buffers.iter().map(|(_, f, _)| *f));
        self.committing.push(rt);
        self.running = None;
        self.stats.commits += 1;
        // Clear per-file dirt for the frozen buffers; the buffers stay
        // owned by this transaction until release.
        for f in buffers.drain(..) {
            let file = self.files.get_mut(f);
            file.alloc_dirty = false;
            file.mtime_dirty = false;
        }
        self.scratch_files = buffers;
        true
    }

    fn submit_jd(&mut self, txn: TxnId, extra: ReqFlags, out: &mut ActionSink<FsAction>) {
        let Some((n_logs, data_journal)) = self
            .txns
            .get(txn)
            .map(|t| (t.buffers.len() as u64, t.data_journal.len() as u64))
        else {
            return;
        };
        let jd_blocks = 1 + n_logs + data_journal;
        let lba = self.layout.alloc_journal(jd_blocks + 1); // + commit block
        let mut tags = self.take_payload_buf();
        self.layout.next_tags_into(jd_blocks as usize, &mut tags);
        let jc_lba = bio_flash::Lba(lba.0 + jd_blocks);
        if let Some(t) = self.txns.get_mut(txn) {
            t.jd_lba = Some(lba);
            // Copy into the (recycled) tag buffer instead of cloning:
            // `tags` itself is moved into the request payload below.
            t.jd_tags.clear();
            t.jd_tags.extend_from_slice(&tags);
            t.jc_lba = Some(jc_lba);
        }
        let rid = self.alloc_req(Purpose::Jd(txn));
        self.stats.journal_blocks += jd_blocks;
        let flags = ReqFlags {
            ordered: extra.ordered || extra.barrier,
            barrier: extra.barrier,
            fua: false,
            preflush: false,
        };
        out.push(FsAction::Submit(BlockRequest::write(rid, lba, tags, flags)));
    }

    /// Submits the commit block of `txn`. Fails — without touching any
    /// state — when the transaction is retired or its JD was never placed
    /// (a JC cannot exist before its JD: the addresses are allocated
    /// together).
    pub(crate) fn submit_jc(
        &mut self,
        txn: TxnId,
        extra: ReqFlags,
        out: &mut ActionSink<FsAction>,
    ) -> Result<(), JournalError> {
        let Some(t) = self.txns.get(txn) else {
            return Err(JournalError::RetiredTxn(txn));
        };
        let Some(jc_lba) = t.jc_lba else {
            return Err(JournalError::JcBeforeJd(txn));
        };
        let tag = self.layout.next_tag();
        if let Some(t) = self.txns.get_mut(txn) {
            t.jc_tag = Some(tag);
        }
        let rid = self.alloc_req(Purpose::Jc(txn));
        self.stats.journal_blocks += 1;
        let flags = match self.cfg.mode {
            FsMode::Ext4 => ReqFlags::FLUSH_FUA,
            FsMode::Ext4NoBarrier | FsMode::OptFs => ReqFlags::NONE,
            FsMode::BarrierFs => ReqFlags {
                ordered: true,
                barrier: extra.barrier,
                fua: false,
                preflush: false,
            },
        };
        let mut tags = self.take_payload_buf();
        tags.push(tag);
        out.push(FsAction::Submit(BlockRequest::write(
            rid, jc_lba, tags, flags,
        )));
        // The commit is now fully described: record ground truth.
        self.record_txn(txn);
        Ok(())
    }

    fn record_txn(&mut self, txn: TxnId) {
        let Some(t) = self.txns.get(txn) else { return };
        let (Some(jd_lba), Some(jc_lba), Some(jc_tag)) = (t.jd_lba, t.jc_lba, t.jc_tag) else {
            debug_assert!(false, "record_txn before journal placement");
            return;
        };
        // Ascending-id order is what lets `mark_durable` binary-search
        // this ever-growing history.
        debug_assert!(self.records.last().is_none_or(|r| r.id < txn.0));
        self.records.push(TxnRecord {
            id: txn.0,
            jd_lba,
            jd_tags: t.jd_tags.clone(),
            jc_lba,
            jc_tag,
            meta_home: t.buffers.iter().map(|(l, _, tag)| (*l, *tag)).collect(),
            data_home: t.data_journal.clone(),
            ordered_data: t.ordered_data.clone(),
            durability_claimed: false,
        });
    }

    /// JD transfer completed (legacy modes only — BarrierFS needs no
    /// action here because JC was dispatched back-to-back). A JD
    /// completion for a retired transaction, or a duplicate one arriving
    /// after JC was already submitted, is dropped.
    pub(crate) fn on_jd_done(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        if self.cfg.mode == FsMode::BarrierFs {
            return;
        }
        if self.txns.get(txn).is_some_and(|t| t.jc_tag.is_some()) {
            // JC already dispatched: this JD completion is a replay.
            self.note_dropped_journal_event();
            return;
        }
        if self.submit_jc(txn, ReqFlags::NONE, out).is_err() {
            self.note_dropped_journal_event();
        }
    }

    /// JC transfer completed: the commit is transferred; durability and
    /// release depend on the mode. Stale completions — a retired
    /// transaction, or one already past `Committing` (a replayed JC) —
    /// are dropped.
    pub(crate) fn on_jc_done(&mut self, txn: TxnId, now: SimTime, out: &mut ActionSink<FsAction>) {
        let Some(t) = self.txns.get_mut(txn) else {
            self.note_dropped_journal_event();
            return;
        };
        if t.state != TxnState::Committing {
            self.note_dropped_journal_event();
            return;
        }
        t.state = TxnState::Transferred;
        // OptFS osync waiters are satisfied by the transfer.
        let mut transfer_waiters = std::mem::take(&mut t.transfer_waiters);
        for tid in transfer_waiters.drain(..) {
            self.clear_syscall(tid);
            out.push(FsAction::CtxSwitch(tid));
            out.push(FsAction::Wake(tid));
        }
        self.restore_waiter_buf(txn, transfer_waiters, |t| &mut t.transfer_waiters);
        match self.cfg.mode {
            FsMode::Ext4 => {
                // JC carried FLUSH|FUA: everything up to here is durable.
                self.mark_durable(txn, true, out);
                self.release_txn(txn, now, true, out);
                self.after_commit_slot_freed(out);
            }
            FsMode::Ext4NoBarrier => {
                // No flush anywhere: the transaction is *treated* as
                // complete at transfer. Durability is not actually
                // guaranteed — exactly the nobarrier trade-off; the crash
                // checker is told no durability was promised.
                self.mark_durable(txn, false, out);
                self.release_txn(txn, now, true, out);
                self.after_commit_slot_freed(out);
            }
            FsMode::OptFs => {
                // Delayed durability: the periodic flusher upgrades the
                // transaction later; fsync-style callers get a flush now.
                let urgent = self
                    .txns
                    .get(txn)
                    .is_some_and(|t| !t.durable_waiters.is_empty());
                // Release buffers (writers unblock) but checkpoint only
                // after durability.
                self.release_txn(txn, now, false, out);
                if urgent {
                    self.request_txn_flush(out);
                }
                self.after_commit_slot_freed(out);
            }
            FsMode::BarrierFs => {
                // Flush thread: flush if anyone wants durability of this
                // or an earlier transferred transaction; otherwise release
                // immediately (ordering-only commit).
                let wants_flush = self.committing.iter().any(|t| {
                    self.txns.get(*t).is_some_and(|tx| {
                        tx.state == TxnState::Transferred && !tx.durable_waiters.is_empty()
                    })
                });
                if wants_flush {
                    self.request_txn_flush(out);
                } else {
                    self.release_txn(txn, now, true, out);
                }
            }
        }
    }

    /// Issues a flush covering every currently transferred transaction
    /// (the flush thread's job). Coalesces with an in-flight flush.
    pub(crate) fn request_txn_flush(&mut self, out: &mut ActionSink<FsAction>) {
        if self.flush_inflight {
            self.flush_again = true;
            return;
        }
        let upto = self
            .txns
            .iter()
            .filter(|(_, t)| t.state == TxnState::Transferred)
            .map(|(id, _)| id)
            .max();
        let Some(upto) = upto else { return };
        self.flush_inflight = true;
        let rid = self.alloc_req(Purpose::TxnFlush { upto });
        self.stats.flushes += 1;
        out.push(FsAction::Submit(BlockRequest::flush(rid)));
    }

    pub(crate) fn on_txn_flush_done(&mut self, upto: TxnId, out: &mut ActionSink<FsAction>) {
        self.flush_inflight = false;
        // Every transaction transferred before the flush is now durable.
        let mut ready: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(id, t)| id.0 <= upto.0 && t.state == TxnState::Transferred)
            .map(|(id, _)| id)
            .collect();
        ready.sort();
        let now = SimTime::ZERO; // release paths do not use wall time
        for t in ready {
            self.mark_durable(t, true, out);
            if self.committing.contains(&t) {
                // BarrierFS: the flush thread releases the transaction.
                self.release_txn(t, now, true, out);
            } else {
                // OptFS: released at transfer; checkpoint now.
                self.start_checkpoint(t, out);
            }
        }
        if self.flush_again {
            self.flush_again = false;
            self.request_txn_flush(out);
        }
    }

    /// Hands a drained waiter buffer back to its transaction so the
    /// capacity survives into the arena recycling ([`Txn::reset`] keeps
    /// it). A no-op when the transaction is gone, or when the list was
    /// repopulated while the drained threads were being woken — newly
    /// arrived waiters are never clobbered.
    fn restore_waiter_buf(
        &mut self,
        txn: TxnId,
        buf: Vec<ThreadId>,
        field: impl FnOnce(&mut Txn) -> &mut Vec<ThreadId>,
    ) {
        debug_assert!(buf.is_empty());
        if let Some(t) = self.txns.get_mut(txn) {
            let slot = field(t);
            if slot.is_empty() {
                *slot = buf;
            }
        }
    }

    /// Marks `txn` durable and wakes its durability waiters. When
    /// `real_durability` is false (nobarrier) the wake happens but no
    /// durability claim is recorded — the crash checker must not hold the
    /// filesystem to a promise it never made. Retired and already-durable
    /// transactions are left untouched.
    pub(crate) fn mark_durable(
        &mut self,
        txn: TxnId,
        real_durability: bool,
        out: &mut ActionSink<FsAction>,
    ) {
        let Some(t) = self.txns.get_mut(txn) else {
            return;
        };
        if t.state >= TxnState::Durable {
            return;
        }
        t.state = TxnState::Durable;
        let mut waiters = std::mem::take(&mut t.durable_waiters);
        let claimed = real_durability && !waiters.is_empty();
        if claimed {
            t.durability_claimed = true;
            // Records are pushed in ascending txn-id order (`record_txn`
            // runs once per commit, ids are allocated monotonically), so
            // the ground-truth entry is found by binary search — a linear
            // scan here turns long runs quadratic in committed txns.
            if let Ok(i) = self.records.binary_search_by_key(&txn.0, |r| r.id) {
                self.records[i].durability_claimed = true;
                if let Some(log) = &mut self.durable_mark_log {
                    log.push(txn.0);
                }
            }
        }
        for tid in waiters.drain(..) {
            self.clear_syscall(tid);
            out.push(FsAction::CtxSwitch(tid));
            out.push(FsAction::Wake(tid));
        }
        self.restore_waiter_buf(txn, waiters, |t| &mut t.durable_waiters);
    }

    /// Removes the transaction from the committing list, resolves page
    /// conflicts it was holding, releases file buffers, and (optionally)
    /// starts the checkpoint. A release for a retired transaction only
    /// scrubs the committing list.
    pub(crate) fn release_txn(
        &mut self,
        txn: TxnId,
        now: SimTime,
        checkpoint: bool,
        out: &mut ActionSink<FsAction>,
    ) {
        self.committing.retain(|t| *t != txn);
        let mut files = std::mem::take(&mut self.scratch_files);
        match self.txns.get(txn) {
            Some(t) => files.extend(t.buffers.iter().map(|(_, f, _)| *f)),
            None => {
                self.scratch_files = files;
                return;
            }
        }
        // Release inode buffers.
        for f in files.drain(..) {
            if self.files.get(f).txn == Some(txn) {
                self.files.get_mut(f).txn = None;
            }
        }
        self.scratch_files = files;
        // Resolve conflict-page-list entries held by this transaction:
        // their buffers join the running transaction with current content.
        let resolved = self.conflicts.resolve(txn);
        for e in resolved {
            let tag = self.files.get(e.file).meta_tag;
            self.dirty_inode(e.file, e.lba, tag, out);
        }
        if self.conflicts.is_empty() {
            // The running transaction may have been waiting on conflicts.
            if let Some(rt) = self.running {
                if self.running_commit_requested(rt) {
                    self.schedule_commit_run(out);
                }
            }
        }
        // Wake EXT4 writers blocked on the conflict.
        let mut writers = match self.txns.get_mut(txn) {
            Some(t) => std::mem::take(&mut t.conflict_waiters),
            None => Vec::new(),
        };
        for tid in writers.drain(..) {
            self.retry_conflicted_write(tid, now, out);
        }
        self.restore_waiter_buf(txn, writers, |t| &mut t.conflict_waiters);
        if checkpoint {
            self.start_checkpoint(txn, out);
        }
    }

    /// Called when a legacy (single-slot) commit finishes, to start the
    /// next requested commit.
    fn after_commit_slot_freed(&mut self, out: &mut ActionSink<FsAction>) {
        if let Some(rt) = self.running {
            if self.running_commit_requested(rt) {
                self.schedule_commit_run(out);
            }
        }
    }

    /// Submits the in-place metadata (and OptFS data) writes of a released
    /// transaction.
    pub(crate) fn start_checkpoint(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        let mut writes = std::mem::take(&mut self.scratch_writes);
        match self.txns.get(txn) {
            Some(t) => writes.extend(
                t.buffers
                    .iter()
                    .map(|(l, _, tag)| (*l, *tag))
                    .chain(t.data_journal.iter().copied()),
            ),
            None => {
                self.scratch_writes = writes;
                return;
            }
        }
        if writes.is_empty() {
            self.scratch_writes = writes;
            self.finish_checkpoint(txn, out);
            return;
        }
        // BarrierFS checkpoints with ordered requests so an in-place write
        // can never overtake the journal commit it depends on; legacy
        // modes checkpoint after durability, so plain writes suffice.
        let flags = if self.cfg.mode == FsMode::BarrierFs {
            ReqFlags::ORDERED
        } else {
            ReqFlags::NONE
        };
        if let Some(t) = self.txns.get_mut(txn) {
            t.checkpoints_left = writes.len();
        }
        for (lba, tag) in writes.drain(..) {
            let rid = self.alloc_req(Purpose::Checkpoint(txn));
            self.stats.checkpoint_blocks += 1;
            let mut tags = self.take_payload_buf();
            tags.push(tag);
            out.push(FsAction::Submit(BlockRequest::write(rid, lba, tags, flags)));
        }
        self.scratch_writes = writes;
    }

    /// One checkpoint write of `txn` completed. Stale completions — a
    /// retired transaction, or one with no checkpoint outstanding — are
    /// dropped.
    pub(crate) fn on_checkpoint_done(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        let Some(t) = self.txns.get_mut(txn) else {
            self.note_dropped_journal_event();
            return;
        };
        if t.checkpoints_left == 0 {
            self.note_dropped_journal_event();
            return;
        }
        t.checkpoints_left -= 1;
        if t.checkpoints_left == 0 {
            self.finish_checkpoint(txn, out);
        }
    }

    fn finish_checkpoint(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        // The transaction is complete; retire it into the arena (records
        // keep the history).
        let Some(t) = self.txns.remove(txn) else {
            return;
        };
        self.journal_used = self.journal_used.saturating_sub(t.journal_blocks());
        self.txn_pool.push(t);
        if self.journal_stalled {
            self.journal_stalled = false;
            self.schedule_commit_run(out);
        }
    }

    // ------------------------------------------------------------------
    // OptFS.
    // ------------------------------------------------------------------

    /// `osync` (and OptFS `fsync`/`fdatasync` when `durable` is true):
    /// Wait-on-Transfer ordering with selective data journaling and
    /// delayed durability.
    pub(crate) fn optfs_osync(
        &mut self,
        tid: ThreadId,
        file: FileId,
        _datasync: bool,
        durable: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        // Selective data journaling: overwrites of committed content are
        // journaled; fresh allocations write in place.
        let (in_place, journaled): (Vec<(u64, bio_flash::BlockTag)>, Vec<_>) = {
            let f = self.files.get_mut(file);
            let all: Vec<(u64, bio_flash::BlockTag)> = f.dirty_data.iter().collect();
            f.dirty_data.clear();
            all.into_iter()
                .partition(|(b, _)| !f.committed_blocks.contains_key(b))
        };
        self.note_dirty_drop((in_place.len() + journaled.len()) as u64);
        // Journaled data joins the running transaction.
        if !journaled.is_empty() {
            let rt = self.ensure_running(out);
            let entries: Vec<(bio_flash::Lba, bio_flash::BlockTag)> = journaled
                .iter()
                .map(|&(b, t)| {
                    let f = self.files.get_mut(file);
                    f.committed_blocks.insert(b, ());
                    (f.lba_of(b).expect("allocated"), t)
                })
                .collect();
            if let Some(t) = self.txns.get_mut(rt) {
                t.data_journal.extend(entries);
            }
        }
        // In-place data is submitted and awaited (Wait-on-Transfer).
        if !in_place.is_empty() {
            let mut reqs = Vec::new();
            let mut pairs = Vec::new();
            for (b, tag) in in_place {
                let f = self.files.get_mut(file);
                f.committed_blocks.insert(b, ());
                let lba = f.lba_of(b).expect("allocated");
                let rid = self.alloc_req(Purpose::Data(tid));
                self.stats.data_blocks += 1;
                let mut tags = self.take_payload_buf();
                tags.push(tag);
                out.push(FsAction::Submit(
                    BlockRequest::write(rid, lba, tags, ReqFlags::NONE)
                        .with_origin(tid.0.wrapping_add(1)),
                ));
                reqs.push(rid);
                pairs.push((lba, tag));
            }
            self.note_ordered_data(&pairs);
            self.set_state_await_data(tid, file, reqs, AfterData::OptfsScan { durable });
            return SyscallOutcome::Blocked;
        }
        self.optfs_commit_and_wait(tid, durable, out)
    }

    /// Triggers an OptFS commit (including the page-scan latency) and
    /// blocks the caller on transfer (osync) or durability (fsync).
    pub(crate) fn optfs_commit_and_wait(
        &mut self,
        tid: ThreadId,
        durable: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        let rt = self.ensure_running(out);
        // Page-scanning overhead proportional to the transaction size
        // (§6.5: selective data journaling increases the pages to scan).
        let pages = self.txns.get(rt).map_or(0, |t| t.journal_blocks());
        let scan =
            bio_sim::SimDuration::from_nanos(self.cfg.optfs_scan_per_page.as_nanos() * pages);
        if let Some(t) = self.txns.get_mut(rt) {
            t.commit_requested = true;
            if durable {
                t.durable_waiters.push(tid);
            } else {
                t.transfer_waiters.push(tid);
            }
        }
        if !self.commit_scheduled {
            self.commit_scheduled = true;
            out.push(FsAction::After(
                self.cfg.commit_thread_wake + scan,
                FsEvent::CommitRun,
            ));
        }
        if durable {
            self.set_state_await_durable(tid, rt);
        } else {
            self.set_state_await_transferred(tid, rt);
        }
        SyscallOutcome::Blocked
    }

    /// Periodic OptFS flusher: upgrade transferred transactions to
    /// durable.
    pub(crate) fn optfs_periodic_flush(&mut self, out: &mut ActionSink<FsAction>) {
        let any_transferred = self
            .txns
            .iter()
            .any(|(_, t)| t.state == TxnState::Transferred);
        if any_transferred {
            self.request_txn_flush(out);
        }
    }
}

#[cfg(test)]
mod tests {
    //! In-crate regression tests for the journal's totality: these drive
    //! the `pub(crate)` handlers directly with retired/duplicate/forged
    //! transaction ids — states a black-box caller cannot easily reach
    //! because the request-continuation window already filters replays.

    use bio_sim::{ActionSink, SimTime};

    use super::JournalError;
    use crate::config::{FsConfig, FsMode};
    use crate::fs::{Filesystem, FsAction, FsEvent, SyscallOutcome};
    use crate::txn::{ThreadId, TxnId};

    const T0: ThreadId = ThreadId(0);

    fn fs(mode: FsMode) -> (Filesystem, crate::file::FileId) {
        let mut fs = Filesystem::new(FsConfig::new(mode));
        let mut out = ActionSink::new();
        let f = fs.create(T0, &mut out);
        (fs, f)
    }

    /// Drives the filesystem's own scheduled events (and completes every
    /// submitted request immediately) until quiescent; returns how many
    /// actions were processed.
    fn settle(fs: &mut Filesystem, out: &mut ActionSink<FsAction>) -> usize {
        let mut processed = 0;
        for _ in 0..64 {
            let pending: Vec<FsAction> = out.iter().cloned().collect();
            out.clear();
            if pending.is_empty() {
                break;
            }
            for a in pending {
                processed += 1;
                match a {
                    FsAction::Submit(r) => {
                        fs.handle(FsEvent::ReqDone(r.id), SimTime::from_micros(10), out)
                    }
                    FsAction::After(_, ev) => fs.handle(ev, SimTime::from_micros(10), out),
                    FsAction::Wake(_) | FsAction::CtxSwitch(_) => {}
                }
            }
        }
        processed
    }

    /// Runs one full fsync commit so the transaction retires, then returns
    /// the retired id.
    fn retire_one_txn(fs: &mut Filesystem, f: crate::file::FileId) -> TxnId {
        let mut out = ActionSink::new();
        fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
        out.clear();
        assert_eq!(
            fs.fsync(T0, f, SimTime::ZERO, &mut out),
            SyscallOutcome::Blocked
        );
        let retired = TxnId(1);
        settle(fs, &mut out);
        assert!(
            fs.txns.get(retired).is_none(),
            "txn should have checkpointed and retired"
        );
        retired
    }

    #[test]
    fn stale_jc_done_for_retired_txn_is_dropped() {
        let (mut fs, f) = fs(FsMode::Ext4);
        let retired = retire_one_txn(&mut fs, f);
        let commits = fs.stats().commits;
        let mut out = ActionSink::new();
        fs.on_jc_done(retired, SimTime::from_micros(99), &mut out);
        assert_eq!(out.iter().count(), 0, "stale JC-done must emit nothing");
        assert_eq!(fs.stats().commits, commits);
        assert_eq!(fs.stats().dropped_journal_events, 1);
        // The filesystem still works afterwards.
        let mut out = ActionSink::new();
        fs.write(T0, f, 10, 1, SimTime::from_millis(20), &mut out);
        assert_eq!(
            fs.fsync(T0, f, SimTime::from_millis(20), &mut out),
            SyscallOutcome::Blocked
        );
    }

    #[test]
    fn stale_jd_done_for_retired_txn_is_dropped() {
        let (mut fs, f) = fs(FsMode::Ext4);
        let retired = retire_one_txn(&mut fs, f);
        let journal_blocks = fs.stats().journal_blocks;
        let mut out = ActionSink::new();
        fs.on_jd_done(retired, &mut out);
        assert_eq!(out.iter().count(), 0, "no JC may be submitted");
        assert_eq!(fs.stats().journal_blocks, journal_blocks);
        assert_eq!(fs.stats().dropped_journal_events, 1);
    }

    #[test]
    fn duplicate_jd_done_does_not_resubmit_jc() {
        let (mut fs, f) = fs(FsMode::Ext4);
        // Retire txn 1 so txn 2 is a clean target.
        retire_one_txn(&mut fs, f);
        let mut out = ActionSink::new();
        fs.write(T0, f, 5, 1, SimTime::from_millis(10), &mut out);
        out.clear();
        fs.fsync(ThreadId(1), f, SimTime::from_millis(10), &mut out);
        // Complete the data write, then walk the Step/CommitRun chain
        // until JD is submitted.
        let data_rid = out
            .iter()
            .find_map(|a| match a {
                FsAction::Submit(r) => Some(r.id),
                _ => None,
            })
            .expect("data write submitted");
        out.clear();
        fs.handle(
            FsEvent::ReqDone(data_rid),
            SimTime::from_millis(11),
            &mut out,
        );
        let mut jd = None;
        for _ in 0..4 {
            let next: Vec<FsEvent> = out
                .iter()
                .filter_map(|a| match a {
                    FsAction::After(_, ev) => Some(*ev),
                    _ => None,
                })
                .collect();
            out.clear();
            for ev in next {
                fs.handle(ev, SimTime::from_millis(12), &mut out);
            }
            jd = out.iter().find_map(|a| match a {
                FsAction::Submit(r) => Some(r.id),
                _ => None,
            });
            if jd.is_some() {
                break;
            }
        }
        let jd = jd.expect("JD submitted");
        out.clear();
        // First JD completion submits JC.
        fs.handle(FsEvent::ReqDone(jd), SimTime::from_millis(13), &mut out);
        let jc_submits = out
            .iter()
            .filter(|a| matches!(a, FsAction::Submit(_)))
            .count();
        assert_eq!(jc_submits, 1, "JD completion submits exactly one JC");
        let after_first = fs.stats().journal_blocks;
        out.clear();
        // A duplicate JD completion (same txn still live, JC outstanding)
        // must be inert at the journal layer.
        fs.on_jd_done(TxnId(2), &mut out);
        assert_eq!(out.iter().count(), 0, "duplicate JD-done must be inert");
        assert_eq!(fs.stats().journal_blocks, after_first);
        assert!(fs.stats().dropped_journal_events > 0);
    }

    #[test]
    fn jc_without_jd_placement_is_a_typed_error() {
        let (mut fs, f) = fs(FsMode::Ext4);
        let mut out = ActionSink::new();
        fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
        out.clear();
        // Txn 1 is running; its JD was never submitted, so a JC submission
        // must fail with the typed error instead of panicking.
        assert_eq!(
            fs.submit_jc(TxnId(1), bio_block::ReqFlags::NONE, &mut out),
            Err(JournalError::JcBeforeJd(TxnId(1)))
        );
        assert_eq!(
            fs.submit_jc(TxnId(77), bio_block::ReqFlags::NONE, &mut out),
            Err(JournalError::RetiredTxn(TxnId(77)))
        );
        assert_eq!(out.iter().count(), 0, "failed submits emit nothing");
        // on_jd_done for that never-placed txn drops the event gracefully.
        fs.on_jd_done(TxnId(77), &mut out);
        assert_eq!(fs.stats().dropped_journal_events, 1);
    }

    #[test]
    fn stale_checkpoint_flush_and_release_events_are_inert() {
        let (mut fs, f) = fs(FsMode::BarrierFs);
        let retired = retire_one_txn(&mut fs, f);
        let mut out = ActionSink::new();
        // Checkpoint completion for a retired txn.
        fs.on_checkpoint_done(retired, &mut out);
        assert_eq!(fs.stats().dropped_journal_events, 1);
        // Flush completion naming a retired txn: nothing is transferred,
        // so nothing happens.
        fs.on_txn_flush_done(retired, &mut out);
        // Release / durability of a retired txn: inert.
        fs.mark_durable(retired, true, &mut out);
        fs.release_txn(retired, SimTime::ZERO, true, &mut out);
        assert_eq!(out.iter().count(), 0);
        assert_eq!(fs.committing_count(), 0);
    }

    #[test]
    fn empty_txn_commit_retires_cleanly() {
        let (mut fs, f) = fs(FsMode::BarrierFs);
        // Retire the file-creation metadata first.
        retire_one_txn(&mut fs, f);
        // Nothing dirty: fdatabarrier forces an empty-txn commit.
        let mut out = ActionSink::new();
        let r = fs.fdatabarrier(T0, f, SimTime::from_millis(30), &mut out);
        assert_eq!(r, SyscallOutcome::Done);
        settle(&mut fs, &mut out);
        assert_eq!(
            fs.journal_used, 0,
            "empty txn must release its journal blocks"
        );
        assert!(fs.txns.is_empty(), "empty txn retired");
    }

    #[test]
    fn double_commit_request_commits_once() {
        let (mut fs, f) = fs(FsMode::BarrierFs);
        let mut out = ActionSink::new();
        fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
        out.clear();
        // Two syncs on the same running txn before the commit thread runs:
        // commit_requested is set twice, the commit happens once.
        fs.fsync(T0, f, SimTime::ZERO, &mut out);
        fs.fsync(ThreadId(1), f, SimTime::ZERO, &mut out);
        out.clear();
        fs.handle(FsEvent::CommitRun, SimTime::from_micros(50), &mut out);
        assert_eq!(fs.stats().commits, 1, "one frozen txn");
        // A second CommitRun with nothing runnable is a no-op.
        out.clear();
        fs.handle(FsEvent::CommitRun, SimTime::from_micros(60), &mut out);
        assert_eq!(fs.stats().commits, 1);
        assert_eq!(out.iter().count(), 0);
    }

    #[test]
    fn fsync_racing_txn_retirement_completes_synchronously() {
        let (mut fs, f) = fs(FsMode::BarrierFs);
        let retired = retire_one_txn(&mut fs, f);
        // A waiter registering on a retired (or already-durable)
        // transaction — the race: the holder check passed, then the txn
        // retired — must complete without sleeping: no waiter registered,
        // no mid-syscall Wake (the stack has not marked the thread
        // in-syscall yet), no stranded thread.
        let mut out = ActionSink::new();
        let outcome = fs.await_txn_durable(ThreadId(3), retired, &mut out);
        assert_eq!(outcome, SyscallOutcome::Done);
        assert_eq!(
            out.iter().count(),
            0,
            "racing waiter completes with no actions"
        );
    }

    #[test]
    fn journal_state_is_a_total_function_of_forged_events() {
        // Fuzz-ish sweep: every event-reachable journal handler, fed every
        // txn id in a small range (live, retired and never-allocated),
        // must not panic and must keep the filesystem usable. (The
        // internal helpers — mark_durable, release_txn — are only called
        // with ids these guarded handlers validated.)
        let (mut fs, f) = fs(FsMode::BarrierFs);
        retire_one_txn(&mut fs, f);
        let mut out = ActionSink::new();
        fs.write(T0, f, 0, 2, SimTime::from_millis(40), &mut out);
        fs.fsync(T0, f, SimTime::from_millis(40), &mut out);
        out.clear();
        for raw in 0..6u64 {
            let id = TxnId(raw);
            fs.on_jd_done(id, &mut out);
            fs.on_jc_done(id, SimTime::from_millis(41), &mut out);
            fs.on_checkpoint_done(id, &mut out);
            fs.on_txn_flush_done(id, &mut out);
            out.clear();
        }
        // Still functional: a fresh write+sync completes.
        let mut out = ActionSink::new();
        fs.write(T0, f, 9, 1, SimTime::from_millis(50), &mut out);
        out.clear();
        assert_eq!(
            fs.fsync(T0, f, SimTime::from_millis(50), &mut out),
            SyscallOutcome::Blocked
        );
        settle(&mut fs, &mut out);
    }

    #[test]
    fn transferred_state_guard_drops_replayed_jc() {
        let (mut fs, f) = fs(FsMode::OptFs);
        let mut out = ActionSink::new();
        fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
        out.clear();
        // osync: blocks on transfer.
        assert_eq!(
            fs.fbarrier(T0, f, SimTime::ZERO, &mut out),
            SyscallOutcome::Blocked
        );
        settle(&mut fs, &mut out);
        // Txn 1 transferred (released at transfer under OptFS). A replayed
        // JC completion must be dropped by the state guard.
        let dropped = fs.stats().dropped_journal_events;
        let mut out = ActionSink::new();
        fs.on_jc_done(TxnId(1), SimTime::from_millis(2), &mut out);
        assert_eq!(out.iter().count(), 0);
        assert_eq!(fs.stats().dropped_journal_events, dropped + 1);
    }
}
