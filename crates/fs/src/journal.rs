//! Journal commit machinery: the legacy JBD thread (EXT4 / EXT4-nobarrier
//! / OptFS) and BarrierFS Dual-Mode Journaling (§4.2).
//!
//! Legacy commit (Eq. 2 of the paper):
//!
//! ```text
//! D → xfer → JD → xfer → JC(FLUSH|FUA)            one committing txn
//! ```
//!
//! Dual-mode commit (Eq. 3):
//!
//! ```text
//! commit thread:  D(ordered) → JD(ordered|barrier) → JC(ordered|barrier)
//! flush thread:   ... JC transferred → [flush if durability wanted]
//! ```
//!
//! The commit thread never waits for a transfer, so the interval between
//! journal commits shrinks from `tD + tC + tF` to `tD` (Fig 8), and many
//! transactions can be in the committing list at once.

use bio_block::{BlockRequest, ReqFlags};
use bio_sim::{ActionSink, SimTime};

use crate::config::FsMode;
use crate::file::FileId;
use crate::fs::{AfterData, Filesystem, FsAction, FsEvent, Purpose, SyscallOutcome};
use crate::recovery::TxnRecord;
use crate::txn::{ThreadId, TxnId, TxnState};

impl Filesystem {
    /// Requests a commit of `txn` (which must be the running transaction)
    /// and schedules the commit thread.
    pub(crate) fn trigger_commit(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        debug_assert_eq!(self.running, Some(txn));
        self.txns.get_mut(&txn).expect("txn").commit_requested = true;
        self.schedule_commit_run(out);
    }

    pub(crate) fn schedule_commit_run(&mut self, out: &mut ActionSink<FsAction>) {
        if self.commit_scheduled {
            return;
        }
        self.commit_scheduled = true;
        out.push(FsAction::After(
            self.cfg.commit_thread_wake,
            FsEvent::CommitRun,
        ));
    }

    /// The commit thread body.
    pub(crate) fn on_commit_run(&mut self, _now: SimTime, out: &mut ActionSink<FsAction>) {
        self.commit_scheduled = false;
        match self.cfg.mode {
            FsMode::BarrierFs => self.dual_mode_commit(out),
            _ => self.jbd_commit(out),
        }
    }

    /// Legacy JBD: at most one committing transaction; JD then JC with
    /// Wait-on-Transfer between them (the JC submit happens in
    /// `on_jd_done`).
    fn jbd_commit(&mut self, out: &mut ActionSink<FsAction>) {
        // A commit is already in flight: it will reschedule us when done.
        if !self.committing.is_empty() {
            return;
        }
        let Some(rt) = self.running else { return };
        if !self.txns[&rt].commit_requested {
            return;
        }
        if !self.freeze_running(rt) {
            return; // journal space stall; retried on checkpoint completion
        }
        // Submit JD (descriptor + logs) as one plain write; JC follows its
        // completion (Wait-on-Transfer).
        self.submit_jd(rt, ReqFlags::NONE, out);
    }

    /// BarrierFS commit thread: commits the running transaction with
    /// order-preserving requests and immediately becomes available for the
    /// next one. No transfer waits anywhere.
    fn dual_mode_commit(&mut self, out: &mut ActionSink<FsAction>) {
        loop {
            let Some(rt) = self.running else { return };
            if !self.txns[&rt].commit_requested {
                return;
            }
            // §4.3: the running transaction commits only once the
            // conflict-page list is empty.
            if !self.conflicts.is_empty() {
                return;
            }
            if !self.freeze_running(rt) {
                return; // journal space stall
            }
            self.submit_jd(rt, ReqFlags::BARRIER, out);
            self.submit_jc(rt, ReqFlags::BARRIER, out);
            // Wake fbarrier callers: ordering is now in flight (§4.2, "in
            // ordering guarantee the commit thread wakes up the caller").
            let waiters =
                std::mem::take(&mut self.txns.get_mut(&rt).expect("txn").dispatch_waiters);
            for tid in waiters {
                self.clear_syscall(tid);
                out.push(FsAction::CtxSwitch(tid));
                out.push(FsAction::Wake(tid));
            }
            // Loop: if another running transaction with a pending request
            // appeared, commit it too (committing list grows).
        }
    }

    /// Freezes the running transaction into the committing list. Returns
    /// false when the journal has no room (commit retried after
    /// checkpointing frees space).
    fn freeze_running(&mut self, rt: TxnId) -> bool {
        let blocks = self.txns[&rt].journal_blocks();
        if self.journal_used + blocks > self.cfg.journal_blocks {
            self.journal_stalled = true;
            return false;
        }
        self.journal_used += blocks;
        let txn = self.txns.get_mut(&rt).expect("txn");
        txn.state = TxnState::Committing;
        let buffers: Vec<FileId> = txn.buffers.iter().map(|(_, f, _)| *f).collect();
        self.committing.push(rt);
        self.running = None;
        self.stats.commits += 1;
        // Clear per-file dirt for the frozen buffers; the buffers stay
        // owned by this transaction until release.
        for f in buffers {
            let file = self.files.get_mut(f);
            file.alloc_dirty = false;
            file.mtime_dirty = false;
        }
        true
    }

    fn submit_jd(&mut self, txn: TxnId, extra: ReqFlags, out: &mut ActionSink<FsAction>) {
        let (n_logs, data_journal) = {
            let t = &self.txns[&txn];
            (t.buffers.len() as u64, t.data_journal.len() as u64)
        };
        let jd_blocks = 1 + n_logs + data_journal;
        let lba = self.layout.alloc_journal(jd_blocks + 1); // + commit block
        let tags = self.layout.next_tags(jd_blocks as usize);
        let jc_lba = bio_flash::Lba(lba.0 + jd_blocks);
        {
            let t = self.txns.get_mut(&txn).expect("txn");
            t.jd_lba = Some(lba);
            t.jd_tags = tags.clone();
            t.jc_lba = Some(jc_lba);
        }
        let rid = self.alloc_req(Purpose::Jd(txn));
        self.stats.journal_blocks += jd_blocks;
        let flags = ReqFlags {
            ordered: extra.ordered || extra.barrier,
            barrier: extra.barrier,
            fua: false,
            preflush: false,
        };
        out.push(FsAction::Submit(BlockRequest::write(rid, lba, tags, flags)));
    }

    pub(crate) fn submit_jc(
        &mut self,
        txn: TxnId,
        extra: ReqFlags,
        out: &mut ActionSink<FsAction>,
    ) {
        let jc_lba = self.txns[&txn].jc_lba.expect("jc placed with jd");
        let tag = self.layout.next_tag();
        self.txns.get_mut(&txn).expect("txn").jc_tag = Some(tag);
        let rid = self.alloc_req(Purpose::Jc(txn));
        self.stats.journal_blocks += 1;
        let flags = match self.cfg.mode {
            FsMode::Ext4 => ReqFlags::FLUSH_FUA,
            FsMode::Ext4NoBarrier | FsMode::OptFs => ReqFlags::NONE,
            FsMode::BarrierFs => ReqFlags {
                ordered: true,
                barrier: extra.barrier,
                fua: false,
                preflush: false,
            },
        };
        out.push(FsAction::Submit(BlockRequest::write(
            rid,
            jc_lba,
            vec![tag],
            flags,
        )));
        // The commit is now fully described: record ground truth.
        self.record_txn(txn);
    }

    fn record_txn(&mut self, txn: TxnId) {
        let t = &self.txns[&txn];
        self.records.push(TxnRecord {
            id: txn.0,
            jd_lba: t.jd_lba.expect("jd placed"),
            jd_tags: t.jd_tags.clone(),
            jc_lba: t.jc_lba.expect("jc placed"),
            jc_tag: t.jc_tag.expect("jc tagged"),
            meta_home: t.buffers.iter().map(|(l, _, tag)| (*l, *tag)).collect(),
            data_home: t.data_journal.clone(),
            ordered_data: t.ordered_data.clone(),
            durability_claimed: false,
        });
    }

    /// JD transfer completed (legacy modes only — BarrierFS needs no
    /// action here because JC was dispatched back-to-back).
    pub(crate) fn on_jd_done(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        if self.cfg.mode == FsMode::BarrierFs {
            return;
        }
        self.submit_jc(txn, ReqFlags::NONE, out);
    }

    /// JC transfer completed: the commit is transferred; durability and
    /// release depend on the mode.
    pub(crate) fn on_jc_done(&mut self, txn: TxnId, now: SimTime, out: &mut ActionSink<FsAction>) {
        self.txns.get_mut(&txn).expect("txn").state = TxnState::Transferred;
        // OptFS osync waiters are satisfied by the transfer.
        let transfer_waiters =
            std::mem::take(&mut self.txns.get_mut(&txn).expect("txn").transfer_waiters);
        for tid in transfer_waiters {
            self.clear_syscall(tid);
            out.push(FsAction::CtxSwitch(tid));
            out.push(FsAction::Wake(tid));
        }
        match self.cfg.mode {
            FsMode::Ext4 => {
                // JC carried FLUSH|FUA: everything up to here is durable.
                self.mark_durable(txn, true, out);
                self.release_txn(txn, now, true, out);
                self.after_commit_slot_freed(out);
            }
            FsMode::Ext4NoBarrier => {
                // No flush anywhere: the transaction is *treated* as
                // complete at transfer. Durability is not actually
                // guaranteed — exactly the nobarrier trade-off; the crash
                // checker is told no durability was promised.
                self.mark_durable(txn, false, out);
                self.release_txn(txn, now, true, out);
                self.after_commit_slot_freed(out);
            }
            FsMode::OptFs => {
                // Delayed durability: the periodic flusher upgrades the
                // transaction later; fsync-style callers get a flush now.
                let urgent = !self.txns[&txn].durable_waiters.is_empty();
                // Release buffers (writers unblock) but checkpoint only
                // after durability.
                self.release_txn(txn, now, false, out);
                if urgent {
                    self.request_txn_flush(out);
                }
                self.after_commit_slot_freed(out);
            }
            FsMode::BarrierFs => {
                // Flush thread: flush if anyone wants durability of this
                // or an earlier transferred transaction; otherwise release
                // immediately (ordering-only commit).
                let wants_flush = self.committing.iter().any(|t| {
                    let tx = &self.txns[t];
                    tx.state == TxnState::Transferred && !tx.durable_waiters.is_empty()
                });
                if wants_flush {
                    self.request_txn_flush(out);
                } else {
                    self.release_txn(txn, now, true, out);
                }
            }
        }
    }

    /// Issues a flush covering every currently transferred transaction
    /// (the flush thread's job). Coalesces with an in-flight flush.
    pub(crate) fn request_txn_flush(&mut self, out: &mut ActionSink<FsAction>) {
        if self.flush_inflight {
            self.flush_again = true;
            return;
        }
        let upto = self
            .txns
            .iter()
            .filter(|(_, t)| t.state == TxnState::Transferred)
            .map(|(id, _)| *id)
            .max();
        let Some(upto) = upto else { return };
        self.flush_inflight = true;
        let rid = self.alloc_req(Purpose::TxnFlush { upto });
        self.stats.flushes += 1;
        out.push(FsAction::Submit(BlockRequest::flush(rid)));
    }

    pub(crate) fn on_txn_flush_done(&mut self, upto: TxnId, out: &mut ActionSink<FsAction>) {
        self.flush_inflight = false;
        // Every transaction transferred before the flush is now durable.
        let mut ready: Vec<TxnId> = self
            .txns
            .iter()
            .filter(|(id, t)| id.0 <= upto.0 && t.state == TxnState::Transferred)
            .map(|(id, _)| *id)
            .collect();
        ready.sort();
        let now = SimTime::ZERO; // release paths do not use wall time
        for t in ready {
            self.mark_durable(t, true, out);
            if self.committing.contains(&t) {
                // BarrierFS: the flush thread releases the transaction.
                self.release_txn(t, now, true, out);
            } else {
                // OptFS: released at transfer; checkpoint now.
                self.start_checkpoint(t, out);
            }
        }
        if self.flush_again {
            self.flush_again = false;
            self.request_txn_flush(out);
        }
    }

    /// Marks `txn` durable and wakes its durability waiters. When
    /// `real_durability` is false (nobarrier) the wake happens but no
    /// durability claim is recorded — the crash checker must not hold the
    /// filesystem to a promise it never made.
    pub(crate) fn mark_durable(
        &mut self,
        txn: TxnId,
        real_durability: bool,
        out: &mut ActionSink<FsAction>,
    ) {
        let t = self.txns.get_mut(&txn).expect("txn");
        if t.state >= TxnState::Durable {
            return;
        }
        t.state = TxnState::Durable;
        let waiters = std::mem::take(&mut t.durable_waiters);
        let claimed = real_durability && !waiters.is_empty();
        if claimed {
            t.durability_claimed = true;
            if let Some(r) = self.records.iter_mut().find(|r| r.id == txn.0) {
                r.durability_claimed = true;
            }
        }
        for tid in waiters {
            self.clear_syscall(tid);
            out.push(FsAction::CtxSwitch(tid));
            out.push(FsAction::Wake(tid));
        }
    }

    /// Removes the transaction from the committing list, resolves page
    /// conflicts it was holding, releases file buffers, and (optionally)
    /// starts the checkpoint.
    pub(crate) fn release_txn(
        &mut self,
        txn: TxnId,
        now: SimTime,
        checkpoint: bool,
        out: &mut ActionSink<FsAction>,
    ) {
        self.committing.retain(|t| *t != txn);
        // Release inode buffers.
        let files: Vec<FileId> = self.txns[&txn].buffers.iter().map(|(_, f, _)| *f).collect();
        for f in files {
            if self.files.get(f).txn == Some(txn) {
                self.files.get_mut(f).txn = None;
            }
        }
        // Resolve conflict-page-list entries held by this transaction:
        // their buffers join the running transaction with current content.
        let resolved = self.conflicts.resolve(txn);
        for e in resolved {
            let tag = self.files.get(e.file).meta_tag;
            self.dirty_inode(e.file, e.lba, tag, out);
        }
        if self.conflicts.is_empty() {
            // The running transaction may have been waiting on conflicts.
            if let Some(rt) = self.running {
                if self.txns[&rt].commit_requested {
                    self.schedule_commit_run(out);
                }
            }
        }
        // Wake EXT4 writers blocked on the conflict.
        let writers = std::mem::take(&mut self.txns.get_mut(&txn).expect("txn").conflict_waiters);
        for tid in writers {
            self.retry_conflicted_write(tid, now, out);
        }
        if checkpoint {
            self.start_checkpoint(txn, out);
        }
    }

    /// Called when a legacy (single-slot) commit finishes, to start the
    /// next requested commit.
    fn after_commit_slot_freed(&mut self, out: &mut ActionSink<FsAction>) {
        if let Some(rt) = self.running {
            if self.txns[&rt].commit_requested {
                self.schedule_commit_run(out);
            }
        }
    }

    /// Submits the in-place metadata (and OptFS data) writes of a released
    /// transaction.
    pub(crate) fn start_checkpoint(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        let writes: Vec<(bio_flash::Lba, bio_flash::BlockTag)> = {
            let t = &self.txns[&txn];
            t.buffers
                .iter()
                .map(|(l, _, tag)| (*l, *tag))
                .chain(t.data_journal.iter().copied())
                .collect()
        };
        if writes.is_empty() {
            self.finish_checkpoint(txn, out);
            return;
        }
        // BarrierFS checkpoints with ordered requests so an in-place write
        // can never overtake the journal commit it depends on; legacy
        // modes checkpoint after durability, so plain writes suffice.
        let flags = if self.cfg.mode == FsMode::BarrierFs {
            ReqFlags::ORDERED
        } else {
            ReqFlags::NONE
        };
        self.checkpoints_left.insert(txn, writes.len());
        for (lba, tag) in writes {
            let rid = self.alloc_req(Purpose::Checkpoint(txn));
            self.stats.checkpoint_blocks += 1;
            out.push(FsAction::Submit(BlockRequest::write(
                rid,
                lba,
                vec![tag],
                flags,
            )));
        }
    }

    pub(crate) fn on_checkpoint_done(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        let left = self
            .checkpoints_left
            .get_mut(&txn)
            .expect("checkpoint accounting");
        *left -= 1;
        if *left == 0 {
            self.checkpoints_left.remove(&txn);
            self.finish_checkpoint(txn, out);
        }
    }

    fn finish_checkpoint(&mut self, txn: TxnId, out: &mut ActionSink<FsAction>) {
        let blocks = self.txns[&txn].journal_blocks();
        self.journal_used = self.journal_used.saturating_sub(blocks);
        // The transaction is complete; drop it (records keep the history).
        self.txns.remove(&txn);
        if self.journal_stalled {
            self.journal_stalled = false;
            self.schedule_commit_run(out);
        }
    }

    // ------------------------------------------------------------------
    // OptFS.
    // ------------------------------------------------------------------

    /// `osync` (and OptFS `fsync`/`fdatasync` when `durable` is true):
    /// Wait-on-Transfer ordering with selective data journaling and
    /// delayed durability.
    pub(crate) fn optfs_osync(
        &mut self,
        tid: ThreadId,
        file: FileId,
        _datasync: bool,
        durable: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        // Selective data journaling: overwrites of committed content are
        // journaled; fresh allocations write in place.
        let (in_place, journaled): (Vec<(u64, bio_flash::BlockTag)>, Vec<_>) = {
            let f = self.files.get_mut(file);
            let all: Vec<(u64, bio_flash::BlockTag)> =
                f.dirty_data.iter().map(|(&b, &t)| (b, t)).collect();
            f.dirty_data.clear();
            all.into_iter()
                .partition(|(b, _)| !f.committed_blocks.contains_key(b))
        };
        self.note_dirty_drop((in_place.len() + journaled.len()) as u64);
        // Journaled data joins the running transaction.
        if !journaled.is_empty() {
            let rt = self.ensure_running(out);
            let entries: Vec<(bio_flash::Lba, bio_flash::BlockTag)> = journaled
                .iter()
                .map(|&(b, t)| {
                    let f = self.files.get_mut(file);
                    f.committed_blocks.insert(b, ());
                    (f.lba_of(b).expect("allocated"), t)
                })
                .collect();
            self.txns
                .get_mut(&rt)
                .expect("running")
                .data_journal
                .extend(entries);
        }
        // In-place data is submitted and awaited (Wait-on-Transfer).
        if !in_place.is_empty() {
            let mut reqs = Vec::new();
            let mut pairs = Vec::new();
            for (b, tag) in in_place {
                let f = self.files.get_mut(file);
                f.committed_blocks.insert(b, ());
                let lba = f.lba_of(b).expect("allocated");
                let rid = self.alloc_req(Purpose::Data(tid));
                self.stats.data_blocks += 1;
                out.push(FsAction::Submit(BlockRequest::write(
                    rid,
                    lba,
                    vec![tag],
                    ReqFlags::NONE,
                )));
                reqs.push(rid);
                pairs.push((lba, tag));
            }
            self.note_ordered_data(&pairs);
            self.set_state_await_data(tid, file, reqs, AfterData::OptfsScan { durable });
            return SyscallOutcome::Blocked;
        }
        self.optfs_commit_and_wait(tid, durable, out)
    }

    /// Triggers an OptFS commit (including the page-scan latency) and
    /// blocks the caller on transfer (osync) or durability (fsync).
    pub(crate) fn optfs_commit_and_wait(
        &mut self,
        tid: ThreadId,
        durable: bool,
        out: &mut ActionSink<FsAction>,
    ) -> SyscallOutcome {
        let rt = self.ensure_running(out);
        // Page-scanning overhead proportional to the transaction size
        // (§6.5: selective data journaling increases the pages to scan).
        let pages = self.txns[&rt].journal_blocks();
        let scan =
            bio_sim::SimDuration::from_nanos(self.cfg.optfs_scan_per_page.as_nanos() * pages);
        {
            let t = self.txns.get_mut(&rt).expect("running");
            t.commit_requested = true;
            if durable {
                t.durable_waiters.push(tid);
            } else {
                t.transfer_waiters.push(tid);
            }
        }
        if !self.commit_scheduled {
            self.commit_scheduled = true;
            out.push(FsAction::After(
                self.cfg.commit_thread_wake + scan,
                FsEvent::CommitRun,
            ));
        }
        if durable {
            self.set_state_await_durable(tid, rt);
        } else {
            self.set_state_await_transferred(tid, rt);
        }
        SyscallOutcome::Blocked
    }

    /// Periodic OptFS flusher: upgrade transferred transactions to
    /// durable.
    pub(crate) fn optfs_periodic_flush(&mut self, out: &mut ActionSink<FsAction>) {
        let any_transferred = self.txns.values().any(|t| t.state == TxnState::Transferred);
        if any_transferred {
            self.request_txn_flush(out);
        }
    }
}
