//! Crash-consistency checking: journal replay over a persisted image and
//! the storage-order invariants of §2.3.
//!
//! The filesystem records every committed transaction as a [`TxnRecord`]
//! (ground truth). Given a crash [`PersistedImage`] from the device, the
//! checker verifies:
//!
//! 1. **Commit order** — transactions become durable in commit order: a
//!    later transaction must never survive a crash that destroyed an
//!    earlier one.
//! 2. **Intra-transaction order** — JC must never persist without its
//!    JD/log blocks ("the filesystem may recover incorrectly").
//! 3. **Ordered-mode data** — a surviving transaction's ordered data pages
//!    must have persisted (data before journal in ordered journaling).
//! 4. **Durability claims** — if an `fsync` returned success, its
//!    transaction and data must survive.
//!
//! Content versions are compared by tag: tags are handed out
//! monotonically, so "the image holds version ≥ X at this block" is just a
//! numeric comparison, and overwritten (superseded) blocks are not false
//! positives.

use bio_flash::{BlockTag, ImageView, Lba, PersistedImage};

/// Ground truth of one committed journal transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRecord {
    /// Transaction id (commit order).
    pub id: u64,
    /// First journal block of the descriptor+logs chunk.
    pub jd_lba: Lba,
    /// Tags of the descriptor and log blocks (contiguous from `jd_lba`).
    pub jd_tags: Vec<BlockTag>,
    /// Commit block location.
    pub jc_lba: Lba,
    /// Commit block tag.
    pub jc_tag: BlockTag,
    /// In-place metadata homes (checkpoint writes).
    pub meta_home: Vec<(Lba, BlockTag)>,
    /// OptFS journaled data homes (checkpoint writes).
    pub data_home: Vec<(Lba, BlockTag)>,
    /// Data pages ordered before this commit.
    pub ordered_data: Vec<(Lba, BlockTag)>,
    /// An fsync returned success for this transaction.
    pub durability_claimed: bool,
}

/// A detected crash-consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsViolation {
    /// Transaction `later` survived while `earlier` was lost.
    CommitOrder {
        /// The lost earlier transaction.
        earlier: u64,
        /// The surviving later transaction.
        later: u64,
    },
    /// The commit block persisted without all of its log blocks.
    TornTransaction {
        /// The transaction with a dangling commit block.
        txn: u64,
    },
    /// A surviving transaction's ordered data page was lost.
    OrderedData {
        /// The transaction.
        txn: u64,
        /// The lost data block.
        lba: Lba,
    },
    /// An fsync-acknowledged transaction did not survive.
    DurabilityLoss {
        /// The transaction whose durability was promised.
        txn: u64,
    },
}

/// The crash-consistency checker with its record-only tables hoisted out
/// of the per-image loop: last-writer resolution and checkability depend
/// only on the records, so the crash enumerator builds one checker per
/// fork point and replays hundreds of images through it instead of
/// rebuilding the tables every time.
///
/// Only *checkable* transactions participate: a transaction whose journal
/// blocks were later reused (circular log wrap) cannot be distinguished
/// from a legitimately overwritten one, so it is skipped — by the time the
/// journal wraps it has long been checkpointed.
pub struct ConsistencyCheck<'a> {
    records: &'a [TxnRecord],
    /// Per record: all of its journal blocks still name it as last writer.
    checkable: Vec<bool>,
}

impl<'a> ConsistencyCheck<'a> {
    /// Precomputes the record-only tables.
    pub fn new(records: &'a [TxnRecord]) -> ConsistencyCheck<'a> {
        // Last writer per journal lba (for checkability).
        use std::collections::HashMap;
        let mut last_writer: HashMap<Lba, u64> = HashMap::new();
        for r in records {
            for (i, _) in r.jd_tags.iter().enumerate() {
                last_writer.insert(Lba(r.jd_lba.0 + i as u64), r.id);
            }
            last_writer.insert(r.jc_lba, r.id);
        }
        let checkable = records
            .iter()
            .map(|r| {
                r.jd_tags
                    .iter()
                    .enumerate()
                    .all(|(i, _)| last_writer[&Lba(r.jd_lba.0 + i as u64)] == r.id)
                    && last_writer[&r.jc_lba] == r.id
            })
            .collect();
        ConsistencyCheck { records, checkable }
    }

    /// Replays the records against one crash image and returns all
    /// violations.
    pub fn violations<V: ImageView>(&self, image: &V) -> Vec<FsViolation> {
        let mut violations = Vec::new();
        let records = self.records;
        let checkable = |i: usize| self.checkable[i];
        let jd_intact = |r: &TxnRecord| -> bool {
            r.jd_tags
                .iter()
                .enumerate()
                .all(|(i, &t)| image.tag(Lba(r.jd_lba.0 + i as u64)) == t)
        };
        let jc_intact = |r: &TxnRecord| -> bool { image.tag(r.jc_lba) == r.jc_tag };
        // "Version at lba is at least `tag`": tags are globally monotonic,
        // so a bigger tag at the same block is a newer version of it.
        let present_or_superseded = |lba: Lba, tag: BlockTag| -> bool { image.tag(lba).0 >= tag.0 };

        // Pass 1: classify.
        let mut valid: Vec<bool> = Vec::with_capacity(records.len());
        for (i, r) in records.iter().enumerate() {
            let ok = checkable(i) && jd_intact(r) && jc_intact(r);
            valid.push(ok);
        }

        // Invariant 2: torn transactions (JC without full JD).
        for (i, r) in records.iter().enumerate() {
            if checkable(i) && jc_intact(r) && !jd_intact(r) {
                violations.push(FsViolation::TornTransaction { txn: r.id });
            }
        }

        // Invariant 1: commit order. Find the newest surviving transaction
        // and require all older checkable ones to have survived (or have
        // been legitimately superseded — handled by checkability).
        if let Some(newest_valid) = records
            .iter()
            .zip(&valid)
            .filter(|(_, v)| **v)
            .map(|(r, _)| r.id)
            .max()
        {
            for (i, (r, v)) in records.iter().zip(&valid).enumerate() {
                if r.id < newest_valid && checkable(i) && !*v {
                    violations.push(FsViolation::CommitOrder {
                        earlier: r.id,
                        later: newest_valid,
                    });
                }
            }
        }

        // Invariant 3: ordered data of surviving transactions.
        for (r, v) in records.iter().zip(&valid) {
            if *v {
                for &(lba, tag) in &r.ordered_data {
                    if !present_or_superseded(lba, tag) {
                        violations.push(FsViolation::OrderedData { txn: r.id, lba });
                    }
                }
            }
        }

        // Invariant 4: durability claims.
        for (i, (r, v)) in records.iter().zip(&valid).enumerate() {
            if r.durability_claimed && checkable(i) && !*v {
                violations.push(FsViolation::DurabilityLoss { txn: r.id });
            }
        }

        violations
    }
}

/// One-shot form of [`ConsistencyCheck`]: builds the checker and replays a
/// single image (the original API; callers with many images per record set
/// should hold a checker instead).
pub fn check_crash_consistency(records: &[TxnRecord], image: &PersistedImage) -> Vec<FsViolation> {
    ConsistencyCheck::new(records).violations(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn rec(id: u64, jd_lba: u64, jd_tags: &[u64], jc_lba: u64, jc_tag: u64) -> TxnRecord {
        TxnRecord {
            id,
            jd_lba: Lba(jd_lba),
            jd_tags: jd_tags.iter().map(|&t| BlockTag(t)).collect(),
            jc_lba: Lba(jc_lba),
            jc_tag: BlockTag(jc_tag),
            meta_home: Vec::new(),
            data_home: Vec::new(),
            ordered_data: Vec::new(),
            durability_claimed: false,
        }
    }

    fn image(pairs: &[(u64, u64)]) -> PersistedImage {
        let map: BTreeMap<Lba, BlockTag> =
            pairs.iter().map(|&(l, t)| (Lba(l), BlockTag(t))).collect();
        PersistedImage::from_map(map)
    }

    #[test]
    fn clean_prefix_passes() {
        let records = vec![rec(1, 100, &[10, 11], 102, 12), rec(2, 103, &[20], 104, 21)];
        // Txn 1 fully persisted, txn 2 lost entirely: consistent.
        let img = image(&[(100, 10), (101, 11), (102, 12)]);
        assert!(check_crash_consistency(&records, &img).is_empty());
    }

    #[test]
    fn empty_image_passes() {
        let records = vec![rec(1, 100, &[10], 101, 11)];
        assert!(check_crash_consistency(&records, &image(&[])).is_empty());
    }

    #[test]
    fn commit_order_violation_detected() {
        let records = vec![rec(1, 100, &[10], 101, 11), rec(2, 102, &[20], 103, 21)];
        // Txn 2 survived, txn 1 lost.
        let img = image(&[(102, 20), (103, 21)]);
        let v = check_crash_consistency(&records, &img);
        assert!(v.iter().any(|x| matches!(
            x,
            FsViolation::CommitOrder {
                earlier: 1,
                later: 2
            }
        )));
    }

    #[test]
    fn torn_transaction_detected() {
        let records = vec![rec(1, 100, &[10, 11], 102, 12)];
        // JC persisted, one log block missing.
        let img = image(&[(100, 10), (102, 12)]);
        let v = check_crash_consistency(&records, &img);
        assert!(v
            .iter()
            .any(|x| matches!(x, FsViolation::TornTransaction { txn: 1 })));
    }

    #[test]
    fn ordered_data_violation_detected() {
        let mut r = rec(1, 100, &[10], 101, 11);
        r.ordered_data.push((Lba(500), BlockTag(5)));
        // Txn survived but its data page did not.
        let img = image(&[(100, 10), (101, 11)]);
        let v = check_crash_consistency(&[r], &img);
        assert!(v
            .iter()
            .any(|x| matches!(x, FsViolation::OrderedData { txn: 1, .. })));
    }

    #[test]
    fn superseded_ordered_data_passes() {
        let mut r = rec(1, 100, &[10], 101, 11);
        r.ordered_data.push((Lba(500), BlockTag(5)));
        // A newer version (tag 9 > 5) of the data block is fine.
        let img = image(&[(100, 10), (101, 11), (500, 9)]);
        assert!(check_crash_consistency(&[r], &img).is_empty());
    }

    #[test]
    fn durability_loss_detected() {
        let mut r = rec(1, 100, &[10], 101, 11);
        r.durability_claimed = true;
        let img = image(&[]);
        let v = check_crash_consistency(&[r], &img);
        assert!(v
            .iter()
            .any(|x| matches!(x, FsViolation::DurabilityLoss { txn: 1 })));
    }

    #[test]
    fn wrapped_journal_txn_is_skipped() {
        // Txn 1's journal blocks were reused by txn 3: txn 1 is not
        // checkable and must not produce false positives.
        let records = vec![
            rec(1, 100, &[10], 101, 11),
            rec(2, 102, &[20], 103, 21),
            rec(3, 100, &[30], 101, 31), // reuses txn 1's blocks
        ];
        let img = image(&[(100, 30), (101, 31), (102, 20), (103, 21)]);
        assert!(check_crash_consistency(&records, &img).is_empty());
    }
}
