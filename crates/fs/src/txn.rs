//! Journal transactions and their lifecycle.
//!
//! ```text
//! Running ──commit──▶ Committing ──JC transferred──▶ Transferred
//!                                                        │ flush
//!                                                        ▼
//!                        Checkpointed ◀──in-place──── Durable
//! ```
//!
//! EXT4 has at most one `Committing` transaction; BarrierFS keeps a whole
//! *committing transaction list* in flight (§4.2) — that difference is the
//! throughput story of Fig 8/13.

use std::collections::HashMap;

use bio_flash::{BlockTag, Lba};
use bio_sim::{SeqTable, SeqTableIter};

use crate::file::FileId;

/// Transaction identifier; ordering equals commit order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TxnState {
    /// Accepting buffers.
    Running,
    /// JD/JC dispatched (or dispatching); in the committing list.
    Committing,
    /// JC transfer completed: storage order fixed, durability pending.
    Transferred,
    /// Flushed to the storage surface.
    Durable,
    /// Metadata written home; journal space reclaimable.
    Checkpointed,
}

/// A simulated thread identifier (application threads, not kernel ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// One journal transaction.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Identifier (= commit order).
    pub id: TxnId,
    /// State.
    pub state: TxnState,
    /// Metadata buffers: inode home LBA → (file, frozen content tag).
    /// Tags are frozen at commit time. Insertion order (= first-dirtied
    /// order) is what the journal descriptor emits; mutate only through
    /// [`Txn::add_buffer`], which maintains the sorted dedup index.
    pub buffers: Vec<(Lba, FileId, BlockTag)>,
    /// Sorted `(lba, index into buffers)` pairs: the dedup lookup of
    /// [`Txn::add_buffer`] is an O(log n) binary search instead of an
    /// O(n) equality scan, while `buffers` keeps its order-preserving
    /// layout. Fresh-LBA inserts still shift the sorted index (a plain
    /// memmove of `(u64, u32)` pairs — far cheaper per element than the
    /// scan's compare-per-entry, but not asymptotically better; a B-tree
    /// would be the next step if transactions ever reach ~10^5 buffers).
    buffer_index: Vec<(Lba, u32)>,
    /// OptFS selective data journaling: data home LBA → journaled tag.
    pub data_journal: Vec<(Lba, BlockTag)>,
    /// Data writes that must persist before this commit (ordered mode).
    pub ordered_data: Vec<(Lba, BlockTag)>,
    /// Journal placement (set when the commit is dispatched).
    pub jd_lba: Option<Lba>,
    /// Descriptor + log block tags.
    pub jd_tags: Vec<BlockTag>,
    /// Commit block placement.
    pub jc_lba: Option<Lba>,
    /// Commit block tag.
    pub jc_tag: Option<BlockTag>,
    /// Threads waiting for durability (fsync).
    pub durable_waiters: Vec<ThreadId>,
    /// Threads waiting for the commit dispatch (fbarrier).
    pub dispatch_waiters: Vec<ThreadId>,
    /// Threads waiting for the JC transfer (OptFS `osync`).
    pub transfer_waiters: Vec<ThreadId>,
    /// EXT4 writers blocked on a page conflict with this transaction;
    /// retried when the transaction releases its buffers.
    pub conflict_waiters: Vec<ThreadId>,
    /// A commit has been requested (fsync/fbarrier arrived or the commit
    /// timer fired).
    pub commit_requested: bool,
    /// Whether any completed syscall claimed durability of this
    /// transaction to its caller (used by the crash checker).
    pub durability_claimed: bool,
    /// Outstanding checkpoint (in-place metadata) writes; 0 when no
    /// checkpoint is in flight.
    pub checkpoints_left: usize,
}

impl Txn {
    /// Creates an empty running transaction.
    pub fn new(id: TxnId) -> Txn {
        Txn {
            id,
            state: TxnState::Running,
            buffers: Vec::new(),
            buffer_index: Vec::new(),
            data_journal: Vec::new(),
            ordered_data: Vec::new(),
            jd_lba: None,
            jd_tags: Vec::new(),
            jc_lba: None,
            jc_tag: None,
            durable_waiters: Vec::new(),
            dispatch_waiters: Vec::new(),
            transfer_waiters: Vec::new(),
            conflict_waiters: Vec::new(),
            commit_requested: false,
            durability_claimed: false,
            checkpoints_left: 0,
        }
    }

    /// Resets a retired transaction carcass to the observable state of
    /// `Txn::new(id)`, keeping every vector's capacity. The commit path
    /// recycles transactions through the filesystem's free list, so a
    /// steady-state commit reuses the previous generation's buffers
    /// instead of allocating nine fresh vectors per transaction.
    pub fn reset(&mut self, id: TxnId) {
        self.id = id;
        self.state = TxnState::Running;
        self.buffers.clear();
        self.buffer_index.clear();
        self.data_journal.clear();
        self.ordered_data.clear();
        self.jd_lba = None;
        self.jd_tags.clear();
        self.jc_lba = None;
        self.jc_tag = None;
        self.durable_waiters.clear();
        self.dispatch_waiters.clear();
        self.transfer_waiters.clear();
        self.conflict_waiters.clear();
        self.commit_requested = false;
        self.durability_claimed = false;
        self.checkpoints_left = 0;
    }

    /// Adds or refreshes a metadata buffer. Dedup is a binary search on
    /// the sorted side index; a fresh buffer appends (insertion order is
    /// what the commit path emits) and registers its position.
    pub fn add_buffer(&mut self, lba: Lba, file: FileId, tag: BlockTag) {
        debug_assert_eq!(self.state, TxnState::Running, "buffer into non-running txn");
        match self.buffer_index.binary_search_by_key(&lba, |&(l, _)| l) {
            Ok(i) => {
                let pos = self.buffer_index[i].1 as usize;
                self.buffers[pos].2 = tag;
            }
            Err(i) => {
                let pos = self.buffers.len() as u32;
                self.buffers.push((lba, file, tag));
                self.buffer_index.insert(i, (lba, pos));
            }
        }
    }

    /// True when the transaction has nothing to commit.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty() && self.data_journal.is_empty()
    }

    /// Journal blocks this transaction occupies: descriptor + one log per
    /// metadata buffer + data-journal pages + commit block.
    pub fn journal_blocks(&self) -> u64 {
        1 + self.buffers.len() as u64 + self.data_journal.len() as u64 + 1
    }
}

/// The journal's transaction table, keyed by the bump-allocated [`TxnId`].
///
/// The production backend is a [`SeqTable`]: ids are dense, monotonic and
/// retire roughly in allocation order, so the table is a sliding-window
/// slab whose base doubles as a generation check — a completion event for
/// an already-retired transaction reads as absent instead of aliasing a
/// live one. The `Map` backend keeps the original `HashMap` implementation
/// alive so equivalence proptests can drive both through identical syscall
/// traces (`crates/fs/tests/journal_equivalence.rs`); every observable call
/// site is iteration-order-insensitive, so the two backends are
/// behaviourally identical.
#[derive(Debug, Clone)]
pub enum TxnTable {
    /// Dense sliding-window backend (production).
    Dense(SeqTable<Txn>),
    /// Reference `HashMap` backend (equivalence tests).
    #[doc(hidden)]
    Map(HashMap<u64, Txn>),
}

/// Key-ordered (dense) or arbitrary-ordered (map) iterator over a
/// [`TxnTable`]. Call sites must not rely on order; the journal only uses
/// order-insensitive folds (`max`, `any`, collect-then-sort).
#[derive(Debug)]
pub enum TxnTableIter<'a> {
    /// Iterating the dense backend.
    Dense(SeqTableIter<'a, Txn>),
    /// Iterating the map backend.
    Map(std::collections::hash_map::Iter<'a, u64, Txn>),
}

impl<'a> Iterator for TxnTableIter<'a> {
    type Item = (TxnId, &'a Txn);

    fn next(&mut self) -> Option<(TxnId, &'a Txn)> {
        match self {
            TxnTableIter::Dense(it) => it.next().map(|(k, t)| (TxnId(k), t)),
            TxnTableIter::Map(it) => it.next().map(|(&k, t)| (TxnId(k), t)),
        }
    }
}

impl Default for TxnTable {
    fn default() -> Self {
        TxnTable::dense()
    }
}

impl TxnTable {
    /// An empty dense-backed table (the production configuration).
    pub fn dense() -> TxnTable {
        TxnTable::Dense(SeqTable::new())
    }

    /// An empty map-backed reference table (equivalence tests only).
    #[doc(hidden)]
    pub fn map_reference() -> TxnTable {
        TxnTable::Map(HashMap::new())
    }

    /// Number of live transactions.
    pub fn len(&self) -> usize {
        match self {
            TxnTable::Dense(t) => t.len(),
            TxnTable::Map(m) => m.len(),
        }
    }

    /// True when no transactions are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The transaction with this id, if live.
    #[inline]
    pub fn get(&self, id: TxnId) -> Option<&Txn> {
        match self {
            TxnTable::Dense(t) => t.get(id.0),
            TxnTable::Map(m) => m.get(&id.0),
        }
    }

    /// Mutable access to the transaction with this id, if live.
    #[inline]
    pub fn get_mut(&mut self, id: TxnId) -> Option<&mut Txn> {
        match self {
            TxnTable::Dense(t) => t.get_mut(id.0),
            TxnTable::Map(m) => m.get_mut(&id.0),
        }
    }

    /// True when `id` is live.
    pub fn contains(&self, id: TxnId) -> bool {
        self.get(id).is_some()
    }

    /// Inserts a transaction. Ids come from a bump allocator and are never
    /// reused after removal (the sliding window relies on that).
    pub fn insert(&mut self, id: TxnId, txn: Txn) {
        match self {
            TxnTable::Dense(t) => {
                t.insert(id.0, txn);
            }
            TxnTable::Map(m) => {
                m.insert(id.0, txn);
            }
        }
    }

    /// Removes and returns the transaction. Unknown, stale and
    /// already-retired ids all return `None`.
    pub fn remove(&mut self, id: TxnId) -> Option<Txn> {
        match self {
            TxnTable::Dense(t) => t.remove(id.0),
            TxnTable::Map(m) => m.remove(&id.0),
        }
    }

    /// Iterates over `(id, &txn)` pairs. Order is backend-specific; use
    /// only order-insensitive folds.
    pub fn iter(&self) -> TxnTableIter<'_> {
        match self {
            TxnTable::Dense(t) => TxnTableIter::Dense(t.iter()),
            TxnTable::Map(m) => TxnTableIter::Map(m.iter()),
        }
    }
}

/// The conflict-page list of §4.3: metadata buffers a writer dirtied while
/// their inode was held by a committing transaction.
#[derive(Debug, Clone, Default)]
pub struct ConflictList {
    entries: Vec<ConflictEntry>,
}

/// One conflict entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConflictEntry {
    /// The inode buffer.
    pub lba: Lba,
    /// Its file.
    pub file: FileId,
    /// The committing transaction holding the buffer.
    pub holder: TxnId,
}

impl ConflictList {
    /// Creates an empty list.
    pub fn new() -> ConflictList {
        ConflictList::default()
    }

    /// True when the running transaction may commit (§4.3: "only when the
    /// conflict-page list is empty").
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of outstanding conflicts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Registers a conflict (idempotent per buffer).
    pub fn add(&mut self, lba: Lba, file: FileId, holder: TxnId) {
        if !self.entries.iter().any(|e| e.lba == lba) {
            self.entries.push(ConflictEntry { lba, file, holder });
        }
    }

    /// True if `lba` is currently conflicted.
    pub fn contains(&self, lba: Lba) -> bool {
        self.entries.iter().any(|e| e.lba == lba)
    }

    /// Removes and returns the conflicts resolved by `holder` completing.
    pub fn resolve(&mut self, holder: TxnId) -> Vec<ConflictEntry> {
        let (resolved, kept): (Vec<_>, Vec<_>) =
            self.entries.drain(..).partition(|e| e.holder == holder);
        self.entries = kept;
        resolved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_buffer_dedup() {
        let mut t = Txn::new(TxnId(1));
        t.add_buffer(Lba(5), FileId(0), BlockTag(1));
        t.add_buffer(Lba(5), FileId(0), BlockTag(2));
        t.add_buffer(Lba(6), FileId(1), BlockTag(3));
        assert_eq!(t.buffers.len(), 2);
        assert_eq!(t.buffers[0].2, BlockTag(2), "refresh keeps latest tag");
    }

    #[test]
    fn add_buffer_dedup_scales_and_preserves_insertion_order() {
        let mut t = Txn::new(TxnId(1));
        // Interleaved high/low LBAs: the side index sorts, the buffer
        // list keeps first-dirtied order.
        let lba_of = |i: u64| if i % 2 == 0 { 1000 - i } else { i };
        for i in 0..500u64 {
            t.add_buffer(Lba(lba_of(i)), FileId(0), BlockTag(i));
        }
        assert_eq!(t.buffers.len(), 500);
        // Refresh every buffer in reverse order: no growth, latest tag
        // wins, positions unchanged.
        for i in (0..500u64).rev() {
            t.add_buffer(Lba(lba_of(i)), FileId(0), BlockTag(9000 + i));
        }
        assert_eq!(t.buffers.len(), 500);
        assert_eq!(t.buffers[0].0, Lba(1000), "insertion order preserved");
        assert_eq!(t.buffers[0].2, BlockTag(9000), "refresh keeps latest tag");
        assert_eq!(t.buffers[1].0, Lba(1));
        assert_eq!(t.buffers[499].0, Lba(499));
    }

    #[test]
    fn reset_restores_fresh_txn_state() {
        let mut t = Txn::new(TxnId(1));
        t.add_buffer(Lba(5), FileId(0), BlockTag(1));
        t.data_journal.push((Lba(9), BlockTag(2)));
        t.ordered_data.push((Lba(10), BlockTag(3)));
        t.jd_lba = Some(Lba(20));
        t.jd_tags.push(BlockTag(4));
        t.jc_lba = Some(Lba(21));
        t.jc_tag = Some(BlockTag(5));
        t.durable_waiters.push(ThreadId(1));
        t.dispatch_waiters.push(ThreadId(2));
        t.transfer_waiters.push(ThreadId(3));
        t.conflict_waiters.push(ThreadId(4));
        t.state = TxnState::Checkpointed;
        t.commit_requested = true;
        t.durability_claimed = true;
        t.checkpoints_left = 3;
        t.reset(TxnId(7));
        // Every observable field matches a freshly constructed txn.
        let fresh = Txn::new(TxnId(7));
        assert_eq!(format!("{t:?}"), format!("{fresh:?}"));
        // The dedup index was cleared along with the buffers.
        t.add_buffer(Lba(5), FileId(1), BlockTag(9));
        assert_eq!(t.buffers, vec![(Lba(5), FileId(1), BlockTag(9))]);
    }

    #[test]
    fn journal_block_accounting() {
        let mut t = Txn::new(TxnId(1));
        assert!(t.is_empty());
        assert_eq!(t.journal_blocks(), 2); // desc + commit even when empty
        t.add_buffer(Lba(1), FileId(0), BlockTag(1));
        t.data_journal.push((Lba(100), BlockTag(9)));
        assert_eq!(t.journal_blocks(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn state_order_matches_lifecycle() {
        assert!(TxnState::Running < TxnState::Committing);
        assert!(TxnState::Committing < TxnState::Transferred);
        assert!(TxnState::Transferred < TxnState::Durable);
        assert!(TxnState::Durable < TxnState::Checkpointed);
    }

    #[test]
    fn txn_table_backends_agree_on_the_map_contract() {
        for mut table in [TxnTable::dense(), TxnTable::map_reference()] {
            assert!(table.is_empty());
            table.insert(TxnId(1), Txn::new(TxnId(1)));
            table.insert(TxnId(2), Txn::new(TxnId(2)));
            assert_eq!(table.len(), 2);
            assert!(table.contains(TxnId(1)));
            table.get_mut(TxnId(2)).unwrap().commit_requested = true;
            assert!(table.get(TxnId(2)).unwrap().commit_requested);
            let removed = table.remove(TxnId(1)).unwrap();
            assert_eq!(removed.id, TxnId(1));
            assert!(table.remove(TxnId(1)).is_none(), "retired id stays dead");
            assert!(table.get(TxnId(1)).is_none());
            let ids: Vec<u64> = table.iter().map(|(id, _)| id.0).collect();
            assert_eq!(ids, vec![2]);
        }
    }

    #[test]
    fn conflict_list_resolution() {
        let mut c = ConflictList::new();
        c.add(Lba(1), FileId(0), TxnId(1));
        c.add(Lba(1), FileId(0), TxnId(1)); // dedup
        c.add(Lba(2), FileId(1), TxnId(2));
        assert_eq!(c.len(), 2);
        assert!(c.contains(Lba(1)));
        let resolved = c.resolve(TxnId(1));
        assert_eq!(resolved.len(), 1);
        assert_eq!(resolved[0].lba, Lba(1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert!(c.resolve(TxnId(2)).len() == 1);
        assert!(c.is_empty());
    }
}
