//! Direct tests of the `Filesystem` state machine: drive syscalls and
//! inspect the emitted actions without a device underneath.

use bio_block::{ReqFlags, ReqId, ReqOp};
use bio_fs::{
    ActionSink, Filesystem, FsAction, FsConfig, FsEvent, FsMode, SyscallOutcome, ThreadId,
};
use bio_sim::{SimDuration, SimTime};

const T0: ThreadId = ThreadId(0);

fn submits(actions: &ActionSink<FsAction>) -> Vec<(ReqId, ReqFlags, bool)> {
    actions
        .iter()
        .filter_map(|a| match a {
            FsAction::Submit(r) => Some((r.id, r.flags, matches!(r.op, ReqOp::Flush))),
            _ => None,
        })
        .collect()
}

fn wakes(actions: &ActionSink<FsAction>) -> usize {
    actions
        .iter()
        .filter(|a| matches!(a, FsAction::Wake(_)))
        .count()
}

fn setup(mode: FsMode) -> (Filesystem, bio_fs::FileId) {
    let mut fs = Filesystem::new(FsConfig::new(mode));
    let mut out = ActionSink::new();
    let f = fs.create(T0, &mut out);
    (fs, f)
}

#[test]
fn buffered_write_emits_nothing() {
    let (mut fs, f) = setup(FsMode::Ext4);
    let mut out = ActionSink::new();
    let r = fs.write(T0, f, 0, 4, SimTime::ZERO, &mut out);
    assert_eq!(r, SyscallOutcome::Done);
    assert!(
        submits(&out).is_empty(),
        "buffered writes stay in the page cache"
    );
}

#[test]
fn fdatabarrier_submits_barrier_write_and_returns() {
    let (mut fs, f) = setup(FsMode::BarrierFs);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 2, SimTime::ZERO, &mut out);
    out.clear();
    let r = fs.fdatabarrier(T0, f, SimTime::ZERO, &mut out);
    assert_eq!(r, SyscallOutcome::Done, "the storage mfence never blocks");
    let subs = submits(&out);
    assert_eq!(subs.len(), 1, "one contiguous ordered write");
    let (_, flags, is_flush) = subs[0];
    assert!(!is_flush);
    assert!(flags.ordered && flags.barrier, "ordered+barrier: {flags:?}");
    assert_eq!(wakes(&out), 0);
}

#[test]
fn fdatabarrier_with_nothing_dirty_forces_a_commit() {
    let (mut fs, f) = setup(FsMode::BarrierFs);
    // Drain the create's metadata first.
    let mut out = ActionSink::new();
    let r = fs.fsync(T0, f, SimTime::ZERO, &mut out);
    assert_eq!(r, SyscallOutcome::Blocked);
    // No dirty data now: fdatabarrier must still delimit an epoch (§4.2)
    // by requesting a journal commit, without blocking.
    out.clear();
    let r = fs.fdatabarrier(ThreadId(1), f, SimTime::ZERO, &mut out);
    assert_eq!(r, SyscallOutcome::Done);
    assert!(fs.stats().forced_commits > 0, "forced commit recorded");
}

#[test]
fn ext4_jc_carries_flush_fua() {
    let (mut fs, f) = setup(FsMode::Ext4);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
    out.clear();
    // fsync: data first.
    assert_eq!(
        fs.fsync(T0, f, SimTime::ZERO, &mut out),
        SyscallOutcome::Blocked
    );
    let data = submits(&out);
    assert_eq!(data.len(), 1);
    assert_eq!(data[0].1, ReqFlags::NONE, "EXT4 data writes are orderless");
    // Complete the data write; the caller steps, then triggers the commit.
    let data_rid = data[0].0;
    out.clear();
    fs.handle(
        FsEvent::ReqDone(data_rid),
        SimTime::from_micros(100),
        &mut out,
    );
    // Walk the scheduled continuations until JD is submitted.
    let mut all = out.clone();
    for _ in 0..4 {
        let next: Vec<FsEvent> = all
            .iter()
            .filter_map(|a| match a {
                FsAction::After(_, ev) => Some(*ev),
                _ => None,
            })
            .collect();
        all.clear();
        for ev in next {
            fs.handle(ev, SimTime::from_micros(200), &mut all);
        }
        if !submits(&all).is_empty() {
            break;
        }
    }
    let jd = submits(&all);
    assert_eq!(jd.len(), 1, "JD submitted");
    assert_eq!(jd[0].1, ReqFlags::NONE, "legacy JD is a plain write");
    // JD transfer completes -> JC with FLUSH|FUA.
    let jd_rid = jd[0].0;
    let mut out = ActionSink::new();
    fs.handle(
        FsEvent::ReqDone(jd_rid),
        SimTime::from_micros(300),
        &mut out,
    );
    let jc = submits(&out);
    assert_eq!(jc.len(), 1, "JC submitted after JD transfer (Eq. 2)");
    assert!(jc[0].1.fua && jc[0].1.preflush, "JC is FLUSH|FUA");
}

#[test]
fn barrierfs_commit_dispatches_jd_and_jc_back_to_back() {
    let (mut fs, f) = setup(FsMode::BarrierFs);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
    out.clear();
    assert_eq!(
        fs.fsync(T0, f, SimTime::ZERO, &mut out),
        SyscallOutcome::Blocked
    );
    // D went out ordered, commit scheduled.
    let d = submits(&out);
    assert_eq!(d.len(), 1);
    assert!(
        d[0].1.ordered && !d[0].1.barrier,
        "D is ordered, not barrier"
    );
    // Run the commit thread.
    let mut out = ActionSink::new();
    fs.handle(FsEvent::CommitRun, SimTime::from_micros(50), &mut out);
    let js = submits(&out);
    assert_eq!(js.len(), 2, "JD and JC dispatched together (no xfer wait)");
    assert!(js[0].1.barrier, "JD closes the {{D, JD}} epoch");
    assert!(js[1].1.barrier, "JC is its own epoch");
    assert_eq!(fs.committing_count(), 1);
}

#[test]
fn barrierfs_overlapping_commits_grow_the_list() {
    let (mut fs, f) = setup(FsMode::BarrierFs);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
    out.clear();
    fs.fsync(T0, f, SimTime::ZERO, &mut out);
    let mut out = ActionSink::new();
    fs.handle(FsEvent::CommitRun, SimTime::from_micros(50), &mut out);
    assert_eq!(fs.committing_count(), 1);
    // A second transaction (a fresh file, so no page conflict with the
    // committing one) commits while the first is still in flight.
    let mut out = ActionSink::new();
    let g = fs.create(ThreadId(1), &mut out);
    fs.write(ThreadId(1), g, 0, 1, SimTime::from_micros(60), &mut out);
    fs.fsync(ThreadId(1), g, SimTime::from_micros(60), &mut out);
    let mut out = ActionSink::new();
    fs.handle(FsEvent::CommitRun, SimTime::from_micros(100), &mut out);
    assert_eq!(
        fs.committing_count(),
        2,
        "dual-mode journaling keeps several committing transactions"
    );
}

#[test]
fn optfs_journals_overwrites_selectively() {
    let (mut fs, f) = setup(FsMode::OptFs);
    let mut out = ActionSink::new();
    // First write: fresh allocation -> in-place.
    fs.write(T0, f, 0, 2, SimTime::ZERO, &mut out);
    out.clear();
    assert_eq!(
        fs.fbarrier(T0, f, SimTime::ZERO, &mut out),
        SyscallOutcome::Blocked,
        "osync waits on transfer"
    );
    let first = submits(&out);
    assert_eq!(first.len(), 2, "fresh blocks write in place");
    // Complete them and the commit, then overwrite the same blocks.
    for (rid, _, _) in &first {
        let mut o = ActionSink::new();
        fs.handle(FsEvent::ReqDone(*rid), SimTime::from_micros(100), &mut o);
    }
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 2, SimTime::from_millis(1), &mut out);
    out.clear();
    fs.fbarrier(T0, f, SimTime::from_millis(1), &mut out);
    assert!(
        submits(&out).is_empty(),
        "overwrites of committed content are data-journaled, not written in place"
    );
}

#[test]
fn unlink_dirties_metadata() {
    let (mut fs, f) = setup(FsMode::Ext4);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
    out.clear();
    fs.unlink(T0, f, &mut out);
    // The unlink joined the running transaction; an fsync on another file
    // will commit it. (Smoke check via stats after a forced commit.)
    assert_eq!(fs.stats().commits, 0);
}

#[test]
fn read_hits_page_cache_synchronously() {
    let (mut fs, f) = setup(FsMode::Ext4);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 2, SimTime::ZERO, &mut out);
    out.clear();
    let r = fs.read(T0, f, 0, 2, &mut out);
    assert_eq!(r, SyscallOutcome::Done, "dirty pages serve reads");
    assert!(submits(&out).is_empty());
    // A hole read is also synchronous (zeros).
    let r = fs.read(T0, f, 100, 1, &mut out);
    assert_eq!(r, SyscallOutcome::Done);
}

#[test]
fn timer_tick_degenerates_fsync() {
    // Two writes within one tick: the second does not re-dirty metadata,
    // so after the first commit an fsync takes the flush-only path.
    let (mut fs, f) = setup(FsMode::Ext4);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 1, SimTime::from_micros(10), &mut out);
    // Drain: pretend the commit completed by checking metadata flags via
    // a second write in the same tick.
    let tick = SimDuration::from_millis(4);
    let later = SimTime::ZERO + tick.mul_f64(0.5);
    out.clear();
    fs.write(T0, f, 0, 1, later, &mut out);
    // Same tick, same block, already allocated: no inode action needed.
    assert!(submits(&out).is_empty());
}

#[test]
fn duplicate_completion_is_ignored() {
    // An fsync blocks awaiting its data write; the device delivers the
    // completion twice (a replayed interrupt). The duplicate must be a
    // no-op: no second wake, no panic, and the syscall machinery must
    // still be consistent for the next operation.
    let (mut fs, f) = setup(FsMode::Ext4);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 2, SimTime::ZERO, &mut out);
    out.clear();
    let r = fs.fsync(T0, f, SimTime::ZERO, &mut out);
    assert_eq!(r, SyscallOutcome::Blocked);
    let subs = submits(&out);
    assert_eq!(subs.len(), 1, "one contiguous data write");
    let data_rid = subs[0].0;
    out.clear();
    fs.handle(
        FsEvent::ReqDone(data_rid),
        SimTime::from_micros(10),
        &mut out,
    );
    let after_first: Vec<FsAction> = out.iter().cloned().collect();
    out.clear();
    // Replay the same completion: nothing may happen.
    fs.handle(
        FsEvent::ReqDone(data_rid),
        SimTime::from_micros(11),
        &mut out,
    );
    assert_eq!(out.iter().count(), 0, "duplicate completion must be inert");
    assert!(
        !after_first.is_empty(),
        "the genuine completion made progress"
    );
}

#[test]
fn unknown_completion_is_ignored() {
    // A completion for a request id the filesystem never allocated (or
    // allocated long ago and already retired) is dropped.
    let (mut fs, f) = setup(FsMode::BarrierFs);
    let mut out = ActionSink::new();
    fs.write(T0, f, 0, 1, SimTime::ZERO, &mut out);
    out.clear();
    fs.handle(
        FsEvent::ReqDone(ReqId(9_999)),
        SimTime::from_micros(5),
        &mut out,
    );
    assert_eq!(out.iter().count(), 0, "forged completion must be inert");
    // The filesystem still works afterwards.
    let r = fs.fdatabarrier(T0, f, SimTime::ZERO, &mut out);
    assert_eq!(r, SyscallOutcome::Done);
    assert_eq!(submits(&out).len(), 1);
}
