//! Equivalence suite locking the dense `SeqTable<Txn>` journal to the
//! original `HashMap` transaction table.
//!
//! Both backends (`Filesystem::new` = dense, the hidden
//! `Filesystem::new_with_map_txn_table` = map reference) are driven
//! through identical random syscall traces under a deterministic
//! mini event loop, and every observable — the full timed action log,
//! aggregate statistics, and the ground-truth transaction records the
//! crash checker consumes — must match byte for byte. The journal only
//! ever iterates its table with order-insensitive folds, so any
//! divergence means the dense migration changed commit semantics.

use bio_fs::{
    ActionSink, Filesystem, FsAction, FsConfig, FsEvent, FsMode, SyscallOutcome, ThreadId,
};
use bio_sim::{SimDuration, SimTime};
use proptest::prelude::*;

const THREADS: u32 = 4;
const REQ_LATENCY: SimDuration = SimDuration::from_micros(80);

/// One generated syscall: `(op, file, offset, blocks, burst)`.
type OpTuple = (u8, u8, u64, u64, u8);

/// Deterministic mini event loop around one filesystem instance.
struct Driver {
    fs: Filesystem,
    /// Pending `(time, seq, event)`; popped in `(time, seq)` order.
    pending: Vec<(u128, u64, FsEvent)>,
    next_seq: u64,
    now: SimTime,
    free: Vec<ThreadId>,
    /// Timed log of everything the filesystem emitted.
    log: Vec<String>,
}

impl Driver {
    fn new(fs: Filesystem) -> Driver {
        Driver {
            fs,
            pending: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            free: (0..THREADS).map(ThreadId).collect(),
            log: Vec::new(),
        }
    }

    fn absorb(&mut self, out: &mut ActionSink<FsAction>) {
        let actions: Vec<FsAction> = out.iter().cloned().collect();
        out.clear();
        for a in actions {
            self.log.push(format!("{:?} {:?}", self.now, a));
            match a {
                FsAction::Submit(r) => {
                    let at = (self.now + REQ_LATENCY).as_nanos() as u128;
                    self.pending
                        .push((at, self.next_seq, FsEvent::ReqDone(r.id)));
                    self.next_seq += 1;
                }
                FsAction::After(d, ev) => {
                    let at = (self.now + d).as_nanos() as u128;
                    self.pending.push((at, self.next_seq, ev));
                    self.next_seq += 1;
                }
                FsAction::Wake(tid) => {
                    if !self.free.contains(&tid) {
                        self.free.push(tid);
                    }
                }
                FsAction::CtxSwitch(_) => {}
            }
        }
    }

    /// Handles the earliest pending event; false when none remain.
    fn step(&mut self) -> bool {
        let Some(best) = (0..self.pending.len()).min_by_key(|&i| {
            let (t, s, _) = self.pending[i];
            (t, s)
        }) else {
            return false;
        };
        let (t, _, ev) = self.pending.remove(best);
        self.now = SimTime::from_nanos(t as u64);
        let mut out = ActionSink::new();
        self.fs.handle(ev, self.now, &mut out);
        self.absorb(&mut out);
        true
    }

    /// Claims a free thread, draining events until one frees up.
    fn claim_thread(&mut self) -> ThreadId {
        loop {
            if let Some(tid) = self.free.pop() {
                return tid;
            }
            assert!(
                self.step(),
                "all threads blocked with no pending events: lost wake"
            );
        }
    }

    fn drain(&mut self) {
        let mut guard = 0;
        while self.step() {
            guard += 1;
            assert!(guard < 100_000, "event loop failed to quiesce");
        }
    }
}

/// Runs one full trace against a filesystem and returns its observables.
fn run_trace(mut fs: Filesystem, ops: &[OpTuple]) -> (Vec<String>, String, String) {
    let mut out = ActionSink::new();
    let files = [
        fs.create(ThreadId(0), &mut out),
        fs.create(ThreadId(0), &mut out),
        fs.create(ThreadId(0), &mut out),
    ];
    let mut d = Driver::new(fs);
    d.absorb(&mut out);
    for &(op, file_sel, offset, blocks, burst) in ops {
        let file = files[(file_sel % 3) as usize];
        let tid = d.claim_thread();
        let mut out = ActionSink::new();
        let now = d.now;
        let outcome = match op % 7 {
            // Writes dominate so transactions actually fill up.
            0 | 1 => {
                d.fs.write(tid, file, offset % 48, 1 + blocks % 4, now, &mut out)
            }
            2 => d.fs.fsync(tid, file, now, &mut out),
            3 => d.fs.fdatasync(tid, file, now, &mut out),
            4 => d.fs.fbarrier(tid, file, now, &mut out),
            5 => d.fs.fdatabarrier(tid, file, now, &mut out),
            _ => d.fs.read(tid, file, offset % 64, 1 + blocks % 2, &mut out),
        };
        d.log
            .push(format!("{:?} op{} -> {:?}", now, op % 7, outcome));
        if outcome == SyscallOutcome::Done {
            d.free.push(tid);
        }
        d.absorb(&mut out);
        // Interleave: let a random-sized burst of completions land before
        // the next syscall so commits overlap with new work.
        for _ in 0..burst % 4 {
            if !d.step() {
                break;
            }
        }
    }
    d.drain();
    let stats = format!("{:?}", d.fs.stats());
    let records = format!("{:?}", d.fs.records());
    (d.log, stats, records)
}

fn mode_of(sel: u8) -> FsMode {
    match sel % 4 {
        0 => FsMode::Ext4,
        1 => FsMode::Ext4NoBarrier,
        2 => FsMode::BarrierFs,
        _ => FsMode::OptFs,
    }
}

fn cfg(mode: FsMode) -> FsConfig {
    // A 1 µs tick makes every sync re-dirty metadata, maximising commit
    // traffic through the transaction table.
    FsConfig::new(mode).with_timer_tick(SimDuration::from_micros(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The dense-table journal and the map-table journal produce identical
    /// action logs, statistics and transaction records on random syscall
    /// traces across all four filesystem modes.
    #[test]
    fn dense_journal_matches_map_journal(
        mode_sel in 0u8..4,
        ops in prop::collection::vec(
            (0u8..7, 0u8..3, 0u64..48, 0u64..4, 0u8..4),
            5..60,
        )
    ) {
        let mode = mode_of(mode_sel);
        let dense = run_trace(Filesystem::new(cfg(mode)), &ops);
        let map = run_trace(Filesystem::new_with_map_txn_table(cfg(mode)), &ops);
        prop_assert_eq!(&dense.0, &map.0, "action logs diverge ({:?})", mode);
        prop_assert_eq!(&dense.1, &map.1, "stats diverge ({:?})", mode);
        prop_assert_eq!(&dense.2, &map.2, "records diverge ({:?})", mode);
    }

    /// The run-based dirty tracker agrees with a per-block `BTreeMap`
    /// model over random insert/overwrite/budgeted-take/drain workloads.
    #[test]
    fn dirty_tracker_matches_btreemap_model(
        ops in prop::collection::vec((0u8..6, 0u64..48, 0u64..16), 1..120)
    ) {
        use bio_fs::DirtyTracker;
        use bio_flash::BlockTag;
        use std::collections::BTreeMap;

        let mut dense = DirtyTracker::new();
        let mut model: BTreeMap<u64, BlockTag> = BTreeMap::new();
        let mut tag = 1u64;
        for (op, block, n) in ops {
            match op {
                // Inserts dominate so runs form and merge.
                0..=3 => {
                    let newly = dense.insert(block, BlockTag(tag));
                    let model_newly = model.insert(block, BlockTag(tag)).is_none();
                    prop_assert_eq!(newly, model_newly, "insert disagreement at {}", block);
                    tag += 1;
                }
                4 => {
                    let taken = dense.take_blocks(n as usize);
                    let keys: Vec<u64> = model.keys().copied().take(n as usize).collect();
                    let expect: Vec<(u64, BlockTag)> = keys
                        .iter()
                        .filter_map(|b| model.remove(b).map(|t| (*b, t)))
                        .collect();
                    prop_assert_eq!(&taken, &expect, "budgeted take diverges");
                }
                _ => {
                    let runs = dense.take_runs();
                    let flat: Vec<(u64, BlockTag)> = runs
                        .iter()
                        .flat_map(|(s, tags)| {
                            tags.iter().enumerate().map(move |(i, t)| (s + i as u64, *t))
                        })
                        .collect();
                    let expect: Vec<(u64, BlockTag)> =
                        model.iter().map(|(&b, &t)| (b, t)).collect();
                    model.clear();
                    prop_assert_eq!(&flat, &expect, "full drain diverges");
                    // Runs must be maximal: consecutive runs never touch.
                    for w in runs.windows(2) {
                        prop_assert!(
                            (w[0].0 + w[0].1.len() as u64) < w[1].0,
                            "adjacent runs were not merged"
                        );
                    }
                }
            }
            prop_assert_eq!(dense.len(), model.len());
            prop_assert_eq!(dense.is_empty(), model.is_empty());
            let dense_all: Vec<(u64, BlockTag)> = dense.iter().collect();
            let model_all: Vec<(u64, BlockTag)> = model.iter().map(|(&b, &t)| (b, t)).collect();
            prop_assert_eq!(dense_all, model_all, "iteration order diverges");
            for b in 0..50u64 {
                prop_assert_eq!(dense.tag_at(b), model.get(&b).copied());
                prop_assert_eq!(dense.contains(b), model.contains_key(&b));
            }
        }
    }
}
