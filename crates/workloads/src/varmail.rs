//! Filebench varmail (Fig 15): a mail-server loop, metadata-intensive and
//! famous for its heavy fsync traffic.
//!
//! One iteration per mailbox message, following filebench's varmail
//! personality: delete an old mail file, create + write + sync a new one,
//! re-open + append + sync another, then read one. Mail sizes are a few
//! blocks, drawn uniformly.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::engine::{AppModel, FilePool, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// Mail-server workload over a pool of per-thread files.
///
/// One phase (`mail`), one iteration per message, over a [`FilePool`]
/// working set: once the pool is primed, the slot being recreated holds
/// the oldest mail, which is deleted first.
#[derive(Debug, Clone)]
pub struct Varmail {
    engine: PhaseEngine<VarmailModel>,
}

#[derive(Debug, Clone)]
struct VarmailModel {
    sync: SyncMode,
    pool: FilePool,
    max_mail_blocks: u64,
    phases: [PhaseSpec; 1],
}

impl AppModel for VarmailModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, _phase: usize, _iter: u64, s: &mut OpScript, rng: &mut SimRng) {
        let (slot_new, slot_old) = self.pool.advance();
        let blocks = rng.range(1, self.max_mail_blocks);

        // deletefile: drop the oldest mail (only once the pool is primed).
        if self.pool.primed() {
            s.unlink(FileRef::Slot(slot_new));
        }
        // createfile + appendfilerand + fsync.
        s.create(slot_new);
        self.pool.note_created();
        s.write(FileRef::Slot(slot_new), 0, blocks);
        s.sync(self.sync, FileRef::Slot(slot_new));
        // openfile + appendfilerand + fsync on an existing mail.
        if self.pool.created() > 1 {
            let target = FileRef::Slot(slot_old.min(self.pool.created() - 1));
            s.write(target, self.max_mail_blocks, rng.range(1, 2));
            s.sync(self.sync, target);
            // readfile.
            s.read(target, 0, 1);
        }
        s.txn_mark();
    }
}

impl Varmail {
    /// `iterations` mail loops with a pool of `pool` files per thread.
    pub fn new(sync: SyncMode, iterations: u64, pool: usize) -> Varmail {
        Varmail {
            engine: PhaseEngine::new(VarmailModel {
                sync,
                pool: FilePool::new(pool.max(2)),
                max_mail_blocks: 4,
                phases: [PhaseSpec::iterations("mail", iterations)],
            }),
        }
    }
}

impl Workload for Varmail {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_shape() {
        let mut w = Varmail::new(SyncMode::Fsync, 3, 4);
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        let fsyncs = ops.iter().filter(|o| matches!(o, Op::Fsync { .. })).count();
        // First iteration has 1 sync (no older file yet), later ones 2.
        assert_eq!(fsyncs, 1 + 2 + 2);
        assert_eq!(ops.iter().filter(|o| **o == Op::TxnMark).count(), 3);
        assert!(ops.iter().any(|o| matches!(o, Op::Read { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Create { .. })));
    }

    #[test]
    fn deletes_once_pool_is_full() {
        let mut w = Varmail::new(SyncMode::Fbarrier, 6, 2);
        let mut rng = SimRng::new(2);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Unlink { .. })));
    }

    #[test]
    fn ordering_mode_uses_fbarrier() {
        let mut w = Varmail::new(SyncMode::Fbarrier, 2, 4);
        let mut rng = SimRng::new(3);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Fbarrier { .. })));
        assert!(!ops.iter().any(|o| matches!(o, Op::Fsync { .. })));
    }
}
