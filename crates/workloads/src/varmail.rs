//! Filebench varmail (Fig 15): a mail-server loop, metadata-intensive and
//! famous for its heavy fsync traffic.
//!
//! One iteration per mailbox message, following filebench's varmail
//! personality: delete an old mail file, create + write + sync a new one,
//! re-open + append + sync another, then read one. Mail sizes are a few
//! blocks, drawn uniformly.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::SyncMode;

/// Mail-server workload over a pool of per-thread files.
#[derive(Debug, Clone)]
pub struct Varmail {
    sync: SyncMode,
    iterations: u64,
    done: u64,
    /// Pool of mail files (thread-private slots), used round-robin.
    pool: usize,
    cursor: usize,
    created: usize,
    max_mail_blocks: u64,
    queue: std::collections::VecDeque<Op>,
}

impl Varmail {
    /// `iterations` mail loops with a pool of `pool` files per thread.
    pub fn new(sync: SyncMode, iterations: u64, pool: usize) -> Varmail {
        Varmail {
            sync,
            iterations,
            done: 0,
            pool: pool.max(2),
            cursor: 0,
            created: 0,
            max_mail_blocks: 4,
            queue: std::collections::VecDeque::new(),
        }
    }

    fn push_sync(&mut self, file: FileRef) {
        if let Some(op) = self.sync.op(file) {
            self.queue.push_back(op);
        }
    }

    fn refill(&mut self, rng: &mut SimRng) {
        let slot_new = self.cursor % self.pool;
        let slot_old = (self.cursor + 1) % self.pool;
        self.cursor += 1;
        let blocks = rng.range(1, self.max_mail_blocks);

        // deletefile: drop the oldest mail (only once the pool is primed).
        if self.created >= self.pool {
            self.queue.push_back(Op::Unlink {
                file: FileRef::Slot(slot_new),
            });
        }
        // createfile + appendfilerand + fsync.
        self.queue.push_back(Op::Create { slot: slot_new });
        self.created += 1;
        self.queue.push_back(Op::Write {
            file: FileRef::Slot(slot_new),
            offset: 0,
            blocks,
        });
        self.push_sync(FileRef::Slot(slot_new));
        // openfile + appendfilerand + fsync on an existing mail.
        if self.created > 1 {
            let target = FileRef::Slot(slot_old.min(self.created - 1));
            self.queue.push_back(Op::Write {
                file: target,
                offset: self.max_mail_blocks,
                blocks: rng.range(1, 2),
            });
            self.push_sync(target);
            // readfile.
            self.queue.push_back(Op::Read {
                file: target,
                offset: 0,
                blocks: 1,
            });
        }
        self.queue.push_back(Op::TxnMark);
    }
}

impl Workload for Varmail {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if self.queue.is_empty() {
            if self.done >= self.iterations {
                return None;
            }
            self.done += 1;
            self.refill(rng);
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_shape() {
        let mut w = Varmail::new(SyncMode::Fsync, 3, 4);
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        let fsyncs = ops.iter().filter(|o| matches!(o, Op::Fsync { .. })).count();
        // First iteration has 1 sync (no older file yet), later ones 2.
        assert_eq!(fsyncs, 1 + 2 + 2);
        assert_eq!(ops.iter().filter(|o| **o == Op::TxnMark).count(), 3);
        assert!(ops.iter().any(|o| matches!(o, Op::Read { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Create { .. })));
    }

    #[test]
    fn deletes_once_pool_is_full() {
        let mut w = Varmail::new(SyncMode::Fbarrier, 6, 2);
        let mut rng = SimRng::new(2);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Unlink { .. })));
    }

    #[test]
    fn ordering_mode_uses_fbarrier() {
        let mut w = Varmail::new(SyncMode::Fbarrier, 2, 4);
        let mut rng = SimRng::new(3);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(ops.iter().any(|o| matches!(o, Op::Fbarrier { .. })));
        assert!(!ops.iter().any(|o| matches!(o, Op::Fsync { .. })));
    }
}
