//! The 4 KiB random-write microbenchmark (Figs 1, 9, 10).
//!
//! Four flavours match the paper's bar groups:
//!
//! * `P`  — plain buffered `write()`,
//! * `X`  — `write()` + `fdatasync()` on a `nobarrier` stack
//!   (Wait-on-Transfer, no flush),
//! * `XnF` — `write()` + `fdatasync()` with flush (transfer-and-flush),
//! * `B`  — `write()` + `fdatabarrier()` (barrier-enabled).
//!
//! The distinction between `X` and `XnF` is which *stack* the workload
//! runs on (nobarrier vs stock EXT4); both use [`WriteMode::SyncEach`].

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::SyncMode;

/// How each write is followed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Plain buffered writes (scenario P).
    Buffered,
    /// Each write followed by the given sync call (scenarios X / XnF / B).
    SyncEach(SyncMode),
}

/// Uniform random single-block writes over a file region.
#[derive(Debug, Clone)]
pub struct RandWrite {
    file: FileRef,
    /// Size of the target region in blocks.
    region_blocks: u64,
    mode: WriteMode,
    remaining: u64,
    pending_sync: bool,
}

impl RandWrite {
    /// `count` random 4 KiB writes over the first `region_blocks` of
    /// `file`.
    pub fn new(file: FileRef, region_blocks: u64, mode: WriteMode, count: u64) -> RandWrite {
        assert!(region_blocks > 0, "empty region");
        RandWrite {
            file,
            region_blocks,
            mode,
            remaining: count,
            pending_sync: false,
        }
    }
}

impl Workload for RandWrite {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if self.pending_sync {
            self.pending_sync = false;
            if let WriteMode::SyncEach(sync) = self.mode {
                if let Some(op) = sync.op(self.file) {
                    return Some(op);
                }
            }
        }
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.pending_sync = matches!(self.mode, WriteMode::SyncEach(_));
        Some(Op::Write {
            file: self.file,
            offset: rng.below(self.region_blocks),
            blocks: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_mode_emits_only_writes() {
        let mut w = RandWrite::new(FileRef::Global(0), 64, WriteMode::Buffered, 10);
        let mut rng = SimRng::new(1);
        let mut n = 0;
        while let Some(op) = w.next_op(&mut rng) {
            assert!(matches!(op, Op::Write { blocks: 1, .. }));
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn sync_mode_interleaves() {
        let mut w = RandWrite::new(
            FileRef::Global(0),
            64,
            WriteMode::SyncEach(SyncMode::Fdatabarrier),
            3,
        );
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0], Op::Write { .. }));
        assert!(matches!(ops[1], Op::Fdatabarrier { .. }));
        assert!(matches!(ops[4], Op::Write { .. }));
        assert!(matches!(ops[5], Op::Fdatabarrier { .. }));
    }

    #[test]
    fn offsets_stay_in_region() {
        let mut w = RandWrite::new(FileRef::Global(0), 8, WriteMode::Buffered, 500);
        let mut rng = SimRng::new(2);
        while let Some(op) = w.next_op(&mut rng) {
            if let Op::Write { offset, .. } = op {
                assert!(offset < 8);
            }
        }
    }
}
