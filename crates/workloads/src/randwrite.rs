//! The 4 KiB random-write microbenchmark (Figs 1, 9, 10).
//!
//! Four flavours match the paper's bar groups:
//!
//! * `P`  — plain buffered `write()`,
//! * `X`  — `write()` + `fdatasync()` on a `nobarrier` stack
//!   (Wait-on-Transfer, no flush),
//! * `XnF` — `write()` + `fdatasync()` with flush (transfer-and-flush),
//! * `B`  — `write()` + `fdatabarrier()` (barrier-enabled).
//!
//! The distinction between `X` and `XnF` is which *stack* the workload
//! runs on (nobarrier vs stock EXT4); both use [`WriteMode::SyncEach`].

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::engine::{AppModel, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// How each write is followed up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Plain buffered writes (scenario P).
    Buffered,
    /// Each write followed by the given sync call (scenarios X / XnF / B).
    SyncEach(SyncMode),
}

/// Uniform random single-block writes over a file region.
///
/// One phase (`write`), one iteration per write: a random-offset write,
/// optionally followed by the mode's sync call.
#[derive(Debug, Clone)]
pub struct RandWrite {
    engine: PhaseEngine<RandWriteModel>,
}

#[derive(Debug, Clone)]
struct RandWriteModel {
    file: FileRef,
    region_blocks: u64,
    mode: WriteMode,
    phases: [PhaseSpec; 1],
}

impl AppModel for RandWriteModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, _phase: usize, _iter: u64, s: &mut OpScript, rng: &mut SimRng) {
        s.write(self.file, rng.below(self.region_blocks), 1);
        if let WriteMode::SyncEach(sync) = self.mode {
            s.sync(sync, self.file);
        }
    }
}

impl RandWrite {
    /// `count` random 4 KiB writes over the first `region_blocks` of
    /// `file`.
    pub fn new(file: FileRef, region_blocks: u64, mode: WriteMode, count: u64) -> RandWrite {
        assert!(region_blocks > 0, "empty region");
        RandWrite {
            engine: PhaseEngine::new(RandWriteModel {
                file,
                region_blocks,
                mode,
                phases: [PhaseSpec::iterations("write", count)],
            }),
        }
    }
}

impl Workload for RandWrite {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_mode_emits_only_writes() {
        let mut w = RandWrite::new(FileRef::Global(0), 64, WriteMode::Buffered, 10);
        let mut rng = SimRng::new(1);
        let mut n = 0;
        while let Some(op) = w.next_op(&mut rng) {
            assert!(matches!(op, Op::Write { blocks: 1, .. }));
            n += 1;
        }
        assert_eq!(n, 10);
    }

    #[test]
    fn sync_mode_interleaves() {
        let mut w = RandWrite::new(
            FileRef::Global(0),
            64,
            WriteMode::SyncEach(SyncMode::Fdatabarrier),
            3,
        );
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0], Op::Write { .. }));
        assert!(matches!(ops[1], Op::Fdatabarrier { .. }));
        assert!(matches!(ops[4], Op::Write { .. }));
        assert!(matches!(ops[5], Op::Fdatabarrier { .. }));
    }

    #[test]
    fn offsets_stay_in_region() {
        let mut w = RandWrite::new(FileRef::Global(0), 8, WriteMode::Buffered, 500);
        let mut rng = SimRng::new(2);
        while let Some(op) = w.next_op(&mut rng) {
            if let Op::Write { offset, .. } = op {
                assert!(offset < 8);
            }
        }
    }
}
