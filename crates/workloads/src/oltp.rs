//! MySQL-style OLTP-insert (sysbench `oltp-insert`, Fig 15).
//!
//! Per committed transaction InnoDB (with default durability settings)
//! syncs the redo log and the binlog — "90% of IOs in the TPC-C workload
//! is created by fsync()" (§5). The redo log is a fixed-size circular
//! file, so once warm every log write *overwrites committed content*;
//! on OptFS that makes each `osync` journal the data pages (selective
//! data journaling), which is exactly why the paper measures OptFS at
//! roughly one-eighth of EXT4-OD here (§6.5).

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::SyncMode;

/// OLTP insert transactions against a shared table/redo/binlog trio.
#[derive(Debug, Clone)]
pub struct OltpInsert {
    sync: SyncMode,
    table: FileRef,
    redo: FileRef,
    binlog: FileRef,
    txns: u64,
    done: u64,
    /// Circular redo-log size in blocks.
    redo_blocks: u64,
    redo_head: u64,
    binlog_head: u64,
    /// Table size for background dirty-page writes.
    table_blocks: u64,
    queue: std::collections::VecDeque<Op>,
}

impl OltpInsert {
    /// `txns` insert transactions. `sync` selects the experiment column
    /// (fsync for DR rows, fbarrier for OD rows).
    pub fn new(
        sync: SyncMode,
        table: FileRef,
        redo: FileRef,
        binlog: FileRef,
        txns: u64,
    ) -> OltpInsert {
        OltpInsert {
            sync,
            table,
            redo,
            binlog,
            txns,
            done: 0,
            redo_blocks: 256,
            redo_head: 0,
            binlog_head: 0,
            table_blocks: 4096,
            queue: std::collections::VecDeque::new(),
        }
    }

    fn push_sync(&mut self, file: FileRef) {
        if let Some(op) = self.sync.op(file) {
            self.queue.push_back(op);
        }
    }

    fn refill(&mut self, rng: &mut SimRng) {
        // Redo log record: circular overwrite once warm.
        let redo_off = self.redo_head % self.redo_blocks;
        self.redo_head += 1;
        self.queue.push_back(Op::Write {
            file: self.redo,
            offset: redo_off,
            blocks: 1,
        });
        self.push_sync(self.redo);
        // Binlog append + sync (sync_binlog=1).
        let off = self.binlog_head;
        self.binlog_head += 1;
        self.queue.push_back(Op::Write {
            file: self.binlog,
            offset: off,
            blocks: 1,
        });
        self.push_sync(self.binlog);
        // Background buffer-pool flushing: a few dirty table pages every
        // eighth transaction, buffered (no sync).
        if self.done % 8 == 0 {
            for _ in 0..4 {
                self.queue.push_back(Op::Write {
                    file: self.table,
                    offset: rng.below(self.table_blocks),
                    blocks: 1,
                });
            }
        }
        self.queue.push_back(Op::TxnMark);
    }
}

impl Workload for OltpInsert {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        if self.queue.is_empty() {
            if self.done >= self.txns {
                return None;
            }
            self.done += 1;
            self.refill(rng);
        }
        self.queue.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut w: OltpInsert) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn two_syncs_per_txn() {
        let ops = drain(OltpInsert::new(
            SyncMode::Fsync,
            FileRef::Global(0),
            FileRef::Global(1),
            FileRef::Global(2),
            5,
        ));
        let syncs = ops.iter().filter(|o| matches!(o, Op::Fsync { .. })).count();
        assert_eq!(syncs, 10, "redo + binlog sync per transaction");
        assert_eq!(ops.iter().filter(|o| **o == Op::TxnMark).count(), 5);
    }

    #[test]
    fn redo_log_wraps_circularly() {
        let mut w = OltpInsert::new(
            SyncMode::None,
            FileRef::Global(0),
            FileRef::Global(1),
            FileRef::Global(2),
            600,
        );
        w.redo_blocks = 4;
        let ops = {
            let mut rng = SimRng::new(1);
            std::iter::from_fn(move || w.next_op(&mut rng)).collect::<Vec<_>>()
        };
        let redo_offsets: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Global(1),
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert!(redo_offsets.iter().all(|&o| o < 4));
        assert_eq!(redo_offsets[0], 0);
        assert_eq!(redo_offsets[4], 0, "wrapped");
    }

    #[test]
    fn binlog_appends() {
        let ops = drain(OltpInsert::new(
            SyncMode::Fbarrier,
            FileRef::Global(0),
            FileRef::Global(1),
            FileRef::Global(2),
            3,
        ));
        let bin: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Global(2),
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(bin, vec![0, 1, 2]);
    }
}
