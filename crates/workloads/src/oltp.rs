//! MySQL-style OLTP-insert (sysbench `oltp-insert`, Fig 15).
//!
//! Per committed transaction InnoDB (with default durability settings)
//! syncs the redo log and the binlog — "90% of IOs in the TPC-C workload
//! is created by fsync()" (§5). The redo log is a fixed-size circular
//! file, so once warm every log write *overwrites committed content*;
//! on OptFS that makes each `osync` journal the data pages (selective
//! data journaling), which is exactly why the paper measures OptFS at
//! roughly one-eighth of EXT4-OD here (§6.5).

use barrier_io::{FileRef, Op, Workload};
use bio_sim::{SimDuration, SimRng};

use crate::engine::{AppModel, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// OLTP insert transactions against a shared table/redo/binlog trio.
///
/// One phase (`txn`), one iteration per transaction: redo-log record +
/// sync, binlog append + sync, and a burst of buffered dirty-page writes
/// every eighth transaction (background buffer-pool flushing).
#[derive(Debug, Clone)]
pub struct OltpInsert {
    engine: PhaseEngine<OltpModel>,
}

#[derive(Debug, Clone)]
struct OltpModel {
    sync: SyncMode,
    table: FileRef,
    redo: FileRef,
    binlog: FileRef,
    /// Circular redo-log size in blocks.
    redo_blocks: u64,
    redo_head: u64,
    binlog_head: u64,
    /// Circular binlog size in blocks (0 = append without bound).
    binlog_blocks: u64,
    /// Table size for background dirty-page writes.
    table_blocks: u64,
    think: Option<SimDuration>,
    phases: [PhaseSpec; 1],
}

impl AppModel for OltpModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, _phase: usize, iter: u64, s: &mut OpScript, rng: &mut SimRng) {
        // Redo log record: circular overwrite once warm.
        let redo_off = self.redo_head % self.redo_blocks;
        self.redo_head += 1;
        s.write(self.redo, redo_off, 1);
        s.sync(self.sync, self.redo);
        // Binlog append + sync (sync_binlog=1). With a rotation bound the
        // binlog becomes circular — modelling `expire_logs_days` purging
        // old logs so an arbitrarily long run stays inside the device.
        let off = match self.binlog_blocks {
            0 => self.binlog_head,
            n => self.binlog_head % n,
        };
        self.binlog_head += 1;
        s.write(self.binlog, off, 1);
        s.sync(self.sync, self.binlog);
        // Background buffer-pool flushing: a few dirty table pages every
        // eighth transaction, buffered (no sync).
        if (iter + 1) % 8 == 0 {
            for _ in 0..4 {
                s.write(self.table, rng.below(self.table_blocks), 1);
            }
        }
        s.txn_mark();
        if let Some(d) = self.think {
            s.think(d);
        }
    }
}

impl OltpInsert {
    /// `txns` insert transactions. `sync` selects the experiment column
    /// (fsync for DR rows, fbarrier for OD rows).
    pub fn new(
        sync: SyncMode,
        table: FileRef,
        redo: FileRef,
        binlog: FileRef,
        txns: u64,
    ) -> OltpInsert {
        OltpInsert {
            engine: PhaseEngine::new(OltpModel {
                sync,
                table,
                redo,
                binlog,
                redo_blocks: 256,
                redo_head: 0,
                binlog_head: 0,
                binlog_blocks: 0,
                table_blocks: 4096,
                think: None,
                phases: [PhaseSpec::iterations("txn", txns)],
            }),
        }
    }

    /// Overrides the circular redo-log size (blocks). Smaller logs wrap —
    /// and overwrite committed content — sooner.
    pub fn with_redo_blocks(mut self, blocks: u64) -> OltpInsert {
        self.engine.model_mut().redo_blocks = blocks.max(1);
        self
    }

    /// Bounds the binlog to `blocks`, wrapping circularly — the effect of
    /// binlog rotation plus `expire_logs_days` purging. Required for
    /// long simulated horizons, where an unbounded binlog would outgrow
    /// the device.
    pub fn with_binlog_blocks(mut self, blocks: u64) -> OltpInsert {
        self.engine.model_mut().binlog_blocks = blocks.max(1);
        self
    }

    /// Inserts a fixed think time after every transaction (a rate-bounded
    /// client pool instead of a zero-latency commit loop).
    pub fn with_think(mut self, think: SimDuration) -> OltpInsert {
        self.engine.model_mut().think = Some(think);
        self
    }
}

impl Workload for OltpInsert {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut w: OltpInsert) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn two_syncs_per_txn() {
        let ops = drain(OltpInsert::new(
            SyncMode::Fsync,
            FileRef::Global(0),
            FileRef::Global(1),
            FileRef::Global(2),
            5,
        ));
        let syncs = ops.iter().filter(|o| matches!(o, Op::Fsync { .. })).count();
        assert_eq!(syncs, 10, "redo + binlog sync per transaction");
        assert_eq!(ops.iter().filter(|o| **o == Op::TxnMark).count(), 5);
    }

    #[test]
    fn redo_log_wraps_circularly() {
        let w = OltpInsert::new(
            SyncMode::None,
            FileRef::Global(0),
            FileRef::Global(1),
            FileRef::Global(2),
            600,
        )
        .with_redo_blocks(4);
        let ops = drain(w);
        let redo_offsets: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Global(1),
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert!(redo_offsets.iter().all(|&o| o < 4));
        assert_eq!(redo_offsets[0], 0);
        assert_eq!(redo_offsets[4], 0, "wrapped");
    }

    #[test]
    fn binlog_appends() {
        let ops = drain(OltpInsert::new(
            SyncMode::Fbarrier,
            FileRef::Global(0),
            FileRef::Global(1),
            FileRef::Global(2),
            3,
        ));
        let bin: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Global(2),
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(bin, vec![0, 1, 2]);
    }
}
