//! The phase-engine framework every application model is built on.
//!
//! A workload is described declaratively as a sequence of [`PhaseSpec`]s
//! (setup, steady state, drain, ...), each with an iteration budget. The
//! model implements [`AppModel::build`], which appends the ops of *one*
//! iteration of one phase into an [`OpScript`]; [`PhaseEngine`] owns the
//! phase cursor and the op queue and drives the model as a
//! [`barrier_io::Workload`].
//!
//! This replaces five bespoke generators that each hand-managed a
//! `VecDeque<Op>`, a cursor and an iteration counter. The contract that
//! makes the rewrite safe is *deterministic refill*: the engine calls
//! `build` exactly once per iteration, in phase order, and the model draws
//! from the thread RNG only inside `build` — so a model that performs the
//! same draws in the same order as a bespoke generator emits a
//! byte-identical op stream (locked by
//! `crates/workloads/tests/golden_op_trace.rs`).
//!
//! [`FilePool`] covers the recurring working-set pattern (varmail,
//! mail-queue): a ring of thread-private file slots where the slot being
//! (re)created holds the oldest file once the pool is primed.

use std::collections::VecDeque;

use barrier_io::{FileRef, Op, Workload};
use bio_sim::{SimDuration, SimRng};

use crate::SyncMode;

/// Iteration budget of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseLen {
    /// Run exactly this many iterations, then advance to the next phase.
    Exactly(u64),
    /// Iterate until the simulation stops the thread.
    Unbounded,
}

/// One declarative phase: a name (for debugging/reporting) plus its
/// iteration budget.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpec {
    /// Phase name.
    pub name: &'static str,
    /// Iteration budget.
    pub len: PhaseLen,
    /// Steady-state replay opt-in: the model promises that this phase's
    /// `build` draws no RNG and emits an op sequence whose only
    /// iteration-to-iteration change is a constant per-op offset stride.
    /// The engine compiles the phase into a flat replay template after
    /// verifying the first three iterations (see [`PhaseEngine`]).
    pub replay: bool,
}

impl PhaseSpec {
    /// A phase of exactly `n` iterations.
    pub const fn iterations(name: &'static str, n: u64) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Exactly(n),
            replay: false,
        }
    }

    /// A single-iteration phase (setup / drain steps).
    pub const fn once(name: &'static str) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Exactly(1),
            replay: false,
        }
    }

    /// A phase that iterates until the run is stopped externally.
    pub const fn unbounded(name: &'static str) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Unbounded,
            replay: false,
        }
    }

    /// A steady-state phase of exactly `n` iterations opted into the
    /// compiled-trace fast path. The contract the model signs up for:
    /// `build` draws nothing from the RNG in this phase, and every
    /// iteration emits the same op shapes with offsets advancing by a
    /// constant per-op stride (appends, circular logs). The engine
    /// *verifies* the shape against the first three built iterations and
    /// silently falls back to per-iteration builds when it does not
    /// hold — but it cannot detect RNG draws, which is why replay is an
    /// explicit opt-in rather than an inference.
    pub const fn replayable(name: &'static str, n: u64) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Exactly(n),
            replay: true,
        }
    }
}

/// The op buffer one iteration is built into, with builder helpers so
/// models read like the syscall trace they produce.
#[derive(Debug, Clone, Default)]
pub struct OpScript {
    queue: VecDeque<Op>,
}

impl OpScript {
    /// An empty script.
    pub fn new() -> OpScript {
        OpScript::default()
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: Op) {
        self.queue.push_back(op);
    }

    /// Buffered write of `blocks` blocks at `offset`.
    pub fn write(&mut self, file: FileRef, offset: u64, blocks: u64) {
        self.push(Op::Write {
            file,
            offset,
            blocks,
        });
    }

    /// Buffered read.
    pub fn read(&mut self, file: FileRef, offset: u64, blocks: u64) {
        self.push(Op::Read {
            file,
            offset,
            blocks,
        });
    }

    /// Create a thread-private file into `slot`.
    pub fn create(&mut self, slot: usize) {
        self.push(Op::Create { slot });
    }

    /// Unlink a file.
    pub fn unlink(&mut self, file: FileRef) {
        self.push(Op::Unlink { file });
    }

    /// The sync call selected by `mode` on `file`; a no-op for
    /// [`SyncMode::None`].
    pub fn sync(&mut self, mode: SyncMode, file: FileRef) {
        if let Some(op) = mode.op(file) {
            self.push(op);
        }
    }

    /// Application think time.
    pub fn think(&mut self, dur: SimDuration) {
        self.push(Op::Think { dur });
    }

    /// Marks the completion of one application-level transaction.
    pub fn txn_mark(&mut self) {
        self.push(Op::TxnMark);
    }

    /// Ops currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no ops are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pops the next op in emission order.
    pub fn pop(&mut self) -> Option<Op> {
        self.queue.pop_front()
    }

    /// Iterates the queued ops in emission order without consuming them
    /// (the replay compiler snapshots a freshly built iteration).
    pub fn ops(&self) -> impl Iterator<Item = &Op> + '_ {
        self.queue.iter()
    }
}

/// An application model: a declarative phase list plus a per-iteration op
/// builder. Implementors keep their own state (append heads, ring
/// cursors, file pools) and must draw RNG values only inside [`build`] —
/// the engine guarantees `build` is called once per iteration in phase
/// order, which is what makes op streams deterministic per seed.
///
/// [`build`]: AppModel::build
pub trait AppModel {
    /// The phase list; fixed for the life of the workload.
    fn phases(&self) -> &[PhaseSpec];

    /// Appends the ops of iteration `iter` (0-based) of phase `phase`
    /// (index into [`phases`]) into `script`. Emitting nothing is allowed
    /// (a conditional step); the engine then advances to the next
    /// iteration.
    ///
    /// [`phases`]: AppModel::phases
    fn build(&mut self, phase: usize, iter: u64, script: &mut OpScript, rng: &mut SimRng);
}

/// Compiled steady-state trace of one replayable phase: iteration 0's
/// op sequence plus one offset stride per op.
#[derive(Debug, Clone, Default)]
enum Trace {
    /// No trace for the current phase (not replayable, not yet captured,
    /// or verification failed — the engine then builds every iteration).
    #[default]
    Off,
    /// Iteration 0 captured; awaiting the stride measurement against
    /// iteration 1.
    Captured(Vec<Op>),
    /// Strides measured between iterations 0 and 1; awaiting
    /// confirmation that iteration 2 advances by the same strides again
    /// (a single difference cannot distinguish an affine sequence from,
    /// say, a quadratic one — two consecutive differences can).
    Verify {
        /// Iteration-0 template ops.
        template: Vec<Op>,
        /// Candidate per-op offset strides (iteration 1 minus 0).
        strides: Vec<u64>,
    },
    /// Verified affine: iteration `k` replays `ops[i]` with its offset
    /// advanced by `strides[i] * k`, without calling `build` (and
    /// therefore without touching the model or the RNG).
    Compiled {
        /// Iteration-0 template ops.
        ops: Vec<Op>,
        /// Per-op offset stride (wrapping; 0 for offset-less ops).
        strides: Vec<u64>,
    },
}

/// Computes the per-op offset strides between two consecutively built
/// iterations of a candidate phase, or `None` when the shape is not
/// affine-replayable (different lengths, kinds, files, block counts, or
/// any non-offset field changing).
fn affine_strides(template: &[Op], next: &[Op]) -> Option<Vec<u64>> {
    if template.len() != next.len() {
        return None;
    }
    template
        .iter()
        .zip(next)
        .map(|(a, b)| match (a, b) {
            (
                Op::Write {
                    file: fa,
                    offset: oa,
                    blocks: ba,
                },
                Op::Write {
                    file: fb,
                    offset: ob,
                    blocks: bb,
                },
            )
            | (
                Op::Read {
                    file: fa,
                    offset: oa,
                    blocks: ba,
                },
                Op::Read {
                    file: fb,
                    offset: ob,
                    blocks: bb,
                },
            ) if fa == fb && ba == bb => Some(ob.wrapping_sub(*oa)),
            (a, b) if a == b => Some(0),
            _ => None,
        })
        .collect()
}

/// `op` as iteration `k` of the replay would emit it: the template
/// offset advanced by `stride * k` (wrapping, matching how an append
/// head would have advanced had the model been rebuilt).
fn replay_op(op: Op, stride: u64, k: u64) -> Op {
    let d = stride.wrapping_mul(k);
    match op {
        Op::Write {
            file,
            offset,
            blocks,
        } => Op::Write {
            file,
            offset: offset.wrapping_add(d),
            blocks,
        },
        Op::Read {
            file,
            offset,
            blocks,
        } => Op::Read {
            file,
            offset: offset.wrapping_add(d),
            blocks,
        },
        other => other,
    }
}

/// Drives an [`AppModel`] through its phases as a [`Workload`].
///
/// Phases marked [`PhaseSpec::replayable`] get the compiled-trace fast
/// path: the engine builds iterations 0–2 normally, checks that each
/// iteration is the previous one advanced by a constant per-op offset
/// stride ([`affine_strides`], confirmed over two consecutive
/// differences), and from then on replays the pre-lowered template
/// directly — no model call, no RNG access, no per-iteration
/// rebuilding. A failed check falls back to building every iteration,
/// so a wrongly annotated phase is slower, never incorrect (unless its
/// `build` draws RNG, which the annotation contract forbids precisely
/// because skipped draws are unobservable here).
#[derive(Debug, Clone)]
pub struct PhaseEngine<M> {
    model: M,
    phase: usize,
    iter: u64,
    script: OpScript,
    trace: Trace,
}

impl<M: AppModel> PhaseEngine<M> {
    /// Wraps a model; the engine starts at iteration 0 of phase 0.
    pub fn new(model: M) -> PhaseEngine<M> {
        PhaseEngine {
            model,
            phase: 0,
            iter: 0,
            script: OpScript::new(),
            trace: Trace::Off,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model (tests, parameter tweaks
    /// before the run starts).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Name of the phase the engine is currently in, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.model.phases().get(self.phase).map(|p| p.name)
    }
}

impl<M: AppModel> Workload for PhaseEngine<M> {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        loop {
            if let Some(op) = self.script.pop() {
                return Some(op);
            }
            let spec = match self.model.phases().get(self.phase) {
                Some(spec) => *spec,
                None => return None, // all phases exhausted
            };
            match spec.len {
                PhaseLen::Exactly(n) if self.iter >= n => {
                    self.phase += 1;
                    self.iter = 0;
                    self.trace = Trace::Off; // traces never cross phases
                    continue;
                }
                _ => {}
            }
            let iter = self.iter;
            self.iter += 1;
            if spec.replay {
                if let Trace::Compiled { ops, strides } = &self.trace {
                    for (op, stride) in ops.iter().zip(strides) {
                        self.script.push(replay_op(*op, *stride, iter));
                    }
                    continue;
                }
            }
            self.model.build(self.phase, iter, &mut self.script, rng);
            if spec.replay {
                self.trace = match (std::mem::take(&mut self.trace), iter) {
                    // An empty iteration 0 is not worth compiling (and a
                    // compiled-empty trace would spin without emitting).
                    (Trace::Off, 0) if !self.script.is_empty() => {
                        Trace::Captured(self.script.ops().copied().collect())
                    }
                    (Trace::Captured(template), 1) => {
                        let built: Vec<Op> = self.script.ops().copied().collect();
                        match affine_strides(&template, &built) {
                            Some(strides) => Trace::Verify { template, strides },
                            None => Trace::Off, // shape check failed: build every iteration
                        }
                    }
                    (Trace::Verify { template, strides }, 2) => {
                        let built: Vec<Op> = self.script.ops().copied().collect();
                        // Affine means iteration 2 sits exactly two
                        // strides past the template.
                        let confirmed = affine_strides(&template, &built).is_some_and(|d| {
                            d.iter().zip(&strides).all(|(d, s)| *d == s.wrapping_mul(2))
                        });
                        if confirmed {
                            Trace::Compiled {
                                ops: template,
                                strides,
                            }
                        } else {
                            Trace::Off
                        }
                    }
                    (t, _) => t,
                };
            }
            if self.script.is_empty() && spec.len == PhaseLen::Unbounded {
                // An unbounded phase that stopped emitting is done;
                // advancing (instead of re-calling build forever) keeps
                // the engine total.
                self.phase += 1;
                self.iter = 0;
            }
        }
    }
}

/// A ring of thread-private file slots modelling a bounded working set of
/// small files (mail spools, queue directories).
///
/// [`advance`] walks the ring: the returned `new` slot is where the next
/// file is created — and, once the pool is [`primed`], it still holds the
/// *oldest* live file, so "retire the oldest, then create" is
/// `let (new, old) = pool.advance();` followed by an unlink of `new`
/// before the create. `old` is the ring's next-oldest slot (varmail's
/// re-append target).
///
/// [`advance`]: FilePool::advance
/// [`primed`]: FilePool::primed
#[derive(Debug, Clone)]
pub struct FilePool {
    size: usize,
    cursor: usize,
    created: usize,
}

impl FilePool {
    /// A pool of `size` slots (at least 1).
    pub fn new(size: usize) -> FilePool {
        FilePool {
            size: size.max(1),
            cursor: 0,
            created: 0,
        }
    }

    /// Number of slots in the ring.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Advances the ring cursor; returns `(new, old)` slot indices: `new`
    /// is the slot to (re)create now, `old` the next-oldest slot.
    pub fn advance(&mut self) -> (usize, usize) {
        let new = self.cursor % self.size;
        let old = (self.cursor + 1) % self.size;
        self.cursor += 1;
        (new, old)
    }

    /// True once every slot has been created at least once (the slot
    /// returned as `new` by [`FilePool::advance`] holds a live file).
    pub fn primed(&self) -> bool {
        self.created >= self.size
    }

    /// Records a file creation (call once per `Op::Create` emitted).
    pub fn note_created(&mut self) {
        self.created += 1;
    }

    /// Total files created so far.
    pub fn created(&self) -> usize {
        self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two phases: one create, then `n` write+mark iterations.
    #[derive(Debug, Clone)]
    struct TwoPhase {
        phases: [PhaseSpec; 2],
    }

    impl TwoPhase {
        fn new(n: u64) -> TwoPhase {
            TwoPhase {
                phases: [PhaseSpec::once("setup"), PhaseSpec::iterations("steady", n)],
            }
        }
    }

    impl AppModel for TwoPhase {
        fn phases(&self) -> &[PhaseSpec] {
            &self.phases
        }

        fn build(&mut self, phase: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
            match phase {
                0 => s.create(0),
                _ => {
                    s.write(FileRef::Slot(0), iter, 1);
                    s.txn_mark();
                }
            }
        }
    }

    fn drain(mut w: impl Workload) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn phases_run_in_order_with_budgets() {
        let ops = drain(PhaseEngine::new(TwoPhase::new(3)));
        assert_eq!(ops.len(), 1 + 3 * 2);
        assert!(matches!(ops[0], Op::Create { slot: 0 }));
        assert!(matches!(ops[1], Op::Write { offset: 0, .. }));
        assert!(matches!(ops[5], Op::Write { offset: 2, .. }));
        assert_eq!(ops[6], Op::TxnMark);
    }

    #[test]
    fn exhausted_engine_stays_done() {
        let mut e = PhaseEngine::new(TwoPhase::new(1));
        let mut rng = SimRng::new(1);
        while e.next_op(&mut rng).is_some() {}
        assert!(e.next_op(&mut rng).is_none());
        assert_eq!(e.current_phase(), None);
    }

    #[test]
    fn empty_iterations_advance() {
        /// A phase whose even iterations emit nothing.
        #[derive(Debug)]
        struct Sparse {
            phases: [PhaseSpec; 1],
        }
        impl AppModel for Sparse {
            fn phases(&self) -> &[PhaseSpec] {
                &self.phases
            }
            fn build(&mut self, _p: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
                if iter % 2 == 1 {
                    s.txn_mark();
                }
            }
        }
        let ops = drain(PhaseEngine::new(Sparse {
            phases: [PhaseSpec::iterations("sparse", 6)],
        }));
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn unbounded_phase_that_stops_emitting_finishes() {
        #[derive(Debug)]
        struct Drying {
            phases: [PhaseSpec; 1],
            left: u64,
        }
        impl AppModel for Drying {
            fn phases(&self) -> &[PhaseSpec] {
                &self.phases
            }
            fn build(&mut self, _p: usize, _i: u64, s: &mut OpScript, _rng: &mut SimRng) {
                if self.left > 0 {
                    self.left -= 1;
                    s.txn_mark();
                }
            }
        }
        let ops = drain(PhaseEngine::new(Drying {
            phases: [PhaseSpec::unbounded("drip")],
            left: 4,
        }));
        assert_eq!(ops.len(), 4);
    }

    /// Append-style model counting its `build` calls; `affine` selects a
    /// constant-stride or quadratic offset sequence.
    #[derive(Debug)]
    struct Appender {
        phases: [PhaseSpec; 2],
        affine: bool,
        builds: u64,
    }

    impl Appender {
        fn new(n: u64, replay: bool, affine: bool) -> Appender {
            Appender {
                phases: [
                    PhaseSpec::once("setup"),
                    if replay {
                        PhaseSpec::replayable("steady", n)
                    } else {
                        PhaseSpec::iterations("steady", n)
                    },
                ],
                affine,
                builds: 0,
            }
        }
    }

    impl AppModel for Appender {
        fn phases(&self) -> &[PhaseSpec] {
            &self.phases
        }

        fn build(&mut self, phase: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
            self.builds += 1;
            if phase == 0 {
                s.create(0);
                return;
            }
            let off = if self.affine {
                7 + 3 * iter
            } else {
                iter * iter
            };
            s.write(FileRef::Slot(0), off, 2);
            s.sync(SyncMode::Fsync, FileRef::Slot(0));
            s.think(SimDuration::from_micros(4));
            s.txn_mark();
        }
    }

    #[test]
    fn replayable_phase_emits_the_built_stream() {
        let built = drain(PhaseEngine::new(Appender::new(50, false, true)));
        let mut replayed_engine = PhaseEngine::new(Appender::new(50, true, true));
        let mut rng = SimRng::new(1);
        let replayed: Vec<Op> = std::iter::from_fn(|| replayed_engine.next_op(&mut rng)).collect();
        assert_eq!(replayed, built, "replay is byte-identical to building");
        assert_eq!(
            replayed_engine.model().builds,
            1 + 3,
            "setup + three verification iterations; the other 47 replayed"
        );
    }

    #[test]
    fn non_affine_replayable_phase_falls_back_to_building() {
        let built = drain(PhaseEngine::new(Appender::new(20, false, false)));
        let mut e = PhaseEngine::new(Appender::new(20, true, false));
        let mut rng = SimRng::new(1);
        let replayed: Vec<Op> = std::iter::from_fn(|| e.next_op(&mut rng)).collect();
        assert_eq!(replayed, built);
        assert_eq!(
            e.model().builds,
            1 + 20,
            "verification failed: every iteration built"
        );
    }

    #[test]
    fn affine_strides_rejects_shape_changes() {
        let w = |o| Op::Write {
            file: FileRef::Slot(0),
            offset: o,
            blocks: 1,
        };
        assert_eq!(affine_strides(&[w(0)], &[w(5)]), Some(vec![5]));
        assert_eq!(
            affine_strides(&[w(0), Op::TxnMark], &[w(1), Op::TxnMark]),
            Some(vec![1, 0])
        );
        assert_eq!(
            affine_strides(&[w(0)], &[w(1), Op::TxnMark]),
            None,
            "length"
        );
        assert_eq!(
            affine_strides(
                &[w(0)],
                &[Op::Read {
                    file: FileRef::Slot(0),
                    offset: 1,
                    blocks: 1
                }]
            ),
            None,
            "kind"
        );
        assert_eq!(
            affine_strides(
                &[w(0)],
                &[Op::Write {
                    file: FileRef::Slot(0),
                    offset: 1,
                    blocks: 2
                }]
            ),
            None,
            "block count"
        );
        assert_eq!(
            affine_strides(&[Op::Create { slot: 0 }], &[Op::Create { slot: 1 }]),
            None,
            "non-offset field changed"
        );
    }

    #[test]
    fn script_builders_map_to_ops() {
        let mut s = OpScript::new();
        let f = FileRef::Global(0);
        s.write(f, 1, 2);
        s.read(f, 0, 1);
        s.create(3);
        s.unlink(f);
        s.sync(SyncMode::Fsync, f);
        s.sync(SyncMode::None, f); // no-op
        s.think(SimDuration::from_micros(5));
        s.txn_mark();
        assert_eq!(s.len(), 7);
        assert_eq!(
            s.pop(),
            Some(Op::Write {
                file: f,
                offset: 1,
                blocks: 2
            })
        );
    }

    #[test]
    fn file_pool_ring_and_priming() {
        let mut p = FilePool::new(3);
        assert!(!p.primed());
        assert_eq!(p.advance(), (0, 1));
        p.note_created();
        assert_eq!(p.advance(), (1, 2));
        p.note_created();
        assert_eq!(p.advance(), (2, 0));
        p.note_created();
        assert!(p.primed());
        assert_eq!(p.advance(), (0, 1), "ring wraps to the oldest slot");
        assert_eq!(p.created(), 3);
    }
}
