//! The phase-engine framework every application model is built on.
//!
//! A workload is described declaratively as a sequence of [`PhaseSpec`]s
//! (setup, steady state, drain, ...), each with an iteration budget. The
//! model implements [`AppModel::build`], which appends the ops of *one*
//! iteration of one phase into an [`OpScript`]; [`PhaseEngine`] owns the
//! phase cursor and the op queue and drives the model as a
//! [`barrier_io::Workload`].
//!
//! This replaces five bespoke generators that each hand-managed a
//! `VecDeque<Op>`, a cursor and an iteration counter. The contract that
//! makes the rewrite safe is *deterministic refill*: the engine calls
//! `build` exactly once per iteration, in phase order, and the model draws
//! from the thread RNG only inside `build` — so a model that performs the
//! same draws in the same order as a bespoke generator emits a
//! byte-identical op stream (locked by
//! `crates/workloads/tests/golden_op_trace.rs`).
//!
//! [`FilePool`] covers the recurring working-set pattern (varmail,
//! mail-queue): a ring of thread-private file slots where the slot being
//! (re)created holds the oldest file once the pool is primed.

use std::collections::VecDeque;

use barrier_io::{FileRef, Op, Workload};
use bio_sim::{SimDuration, SimRng};

use crate::SyncMode;

/// Iteration budget of one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseLen {
    /// Run exactly this many iterations, then advance to the next phase.
    Exactly(u64),
    /// Iterate until the simulation stops the thread.
    Unbounded,
}

/// One declarative phase: a name (for debugging/reporting) plus its
/// iteration budget.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpec {
    /// Phase name.
    pub name: &'static str,
    /// Iteration budget.
    pub len: PhaseLen,
}

impl PhaseSpec {
    /// A phase of exactly `n` iterations.
    pub const fn iterations(name: &'static str, n: u64) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Exactly(n),
        }
    }

    /// A single-iteration phase (setup / drain steps).
    pub const fn once(name: &'static str) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Exactly(1),
        }
    }

    /// A phase that iterates until the run is stopped externally.
    pub const fn unbounded(name: &'static str) -> PhaseSpec {
        PhaseSpec {
            name,
            len: PhaseLen::Unbounded,
        }
    }
}

/// The op buffer one iteration is built into, with builder helpers so
/// models read like the syscall trace they produce.
#[derive(Debug, Clone, Default)]
pub struct OpScript {
    queue: VecDeque<Op>,
}

impl OpScript {
    /// An empty script.
    pub fn new() -> OpScript {
        OpScript::default()
    }

    /// Appends a raw op.
    pub fn push(&mut self, op: Op) {
        self.queue.push_back(op);
    }

    /// Buffered write of `blocks` blocks at `offset`.
    pub fn write(&mut self, file: FileRef, offset: u64, blocks: u64) {
        self.push(Op::Write {
            file,
            offset,
            blocks,
        });
    }

    /// Buffered read.
    pub fn read(&mut self, file: FileRef, offset: u64, blocks: u64) {
        self.push(Op::Read {
            file,
            offset,
            blocks,
        });
    }

    /// Create a thread-private file into `slot`.
    pub fn create(&mut self, slot: usize) {
        self.push(Op::Create { slot });
    }

    /// Unlink a file.
    pub fn unlink(&mut self, file: FileRef) {
        self.push(Op::Unlink { file });
    }

    /// The sync call selected by `mode` on `file`; a no-op for
    /// [`SyncMode::None`].
    pub fn sync(&mut self, mode: SyncMode, file: FileRef) {
        if let Some(op) = mode.op(file) {
            self.push(op);
        }
    }

    /// Application think time.
    pub fn think(&mut self, dur: SimDuration) {
        self.push(Op::Think { dur });
    }

    /// Marks the completion of one application-level transaction.
    pub fn txn_mark(&mut self) {
        self.push(Op::TxnMark);
    }

    /// Ops currently queued.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when no ops are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Pops the next op in emission order.
    pub fn pop(&mut self) -> Option<Op> {
        self.queue.pop_front()
    }
}

/// An application model: a declarative phase list plus a per-iteration op
/// builder. Implementors keep their own state (append heads, ring
/// cursors, file pools) and must draw RNG values only inside [`build`] —
/// the engine guarantees `build` is called once per iteration in phase
/// order, which is what makes op streams deterministic per seed.
///
/// [`build`]: AppModel::build
pub trait AppModel {
    /// The phase list; fixed for the life of the workload.
    fn phases(&self) -> &[PhaseSpec];

    /// Appends the ops of iteration `iter` (0-based) of phase `phase`
    /// (index into [`phases`]) into `script`. Emitting nothing is allowed
    /// (a conditional step); the engine then advances to the next
    /// iteration.
    ///
    /// [`phases`]: AppModel::phases
    fn build(&mut self, phase: usize, iter: u64, script: &mut OpScript, rng: &mut SimRng);
}

/// Drives an [`AppModel`] through its phases as a [`Workload`].
#[derive(Debug, Clone)]
pub struct PhaseEngine<M> {
    model: M,
    phase: usize,
    iter: u64,
    script: OpScript,
}

impl<M: AppModel> PhaseEngine<M> {
    /// Wraps a model; the engine starts at iteration 0 of phase 0.
    pub fn new(model: M) -> PhaseEngine<M> {
        PhaseEngine {
            model,
            phase: 0,
            iter: 0,
            script: OpScript::new(),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the wrapped model (tests, parameter tweaks
    /// before the run starts).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Name of the phase the engine is currently in, if any.
    pub fn current_phase(&self) -> Option<&'static str> {
        self.model.phases().get(self.phase).map(|p| p.name)
    }
}

impl<M: AppModel> Workload for PhaseEngine<M> {
    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        loop {
            if let Some(op) = self.script.pop() {
                return Some(op);
            }
            let len = match self.model.phases().get(self.phase) {
                Some(spec) => spec.len,
                None => return None, // all phases exhausted
            };
            match len {
                PhaseLen::Exactly(n) if self.iter >= n => {
                    self.phase += 1;
                    self.iter = 0;
                    continue;
                }
                _ => {}
            }
            let iter = self.iter;
            self.iter += 1;
            self.model.build(self.phase, iter, &mut self.script, rng);
            if self.script.is_empty() && len == PhaseLen::Unbounded {
                // An unbounded phase that stopped emitting is done;
                // advancing (instead of re-calling build forever) keeps
                // the engine total.
                self.phase += 1;
                self.iter = 0;
            }
        }
    }
}

/// A ring of thread-private file slots modelling a bounded working set of
/// small files (mail spools, queue directories).
///
/// [`advance`] walks the ring: the returned `new` slot is where the next
/// file is created — and, once the pool is [`primed`], it still holds the
/// *oldest* live file, so "retire the oldest, then create" is
/// `let (new, old) = pool.advance();` followed by an unlink of `new`
/// before the create. `old` is the ring's next-oldest slot (varmail's
/// re-append target).
///
/// [`advance`]: FilePool::advance
/// [`primed`]: FilePool::primed
#[derive(Debug, Clone)]
pub struct FilePool {
    size: usize,
    cursor: usize,
    created: usize,
}

impl FilePool {
    /// A pool of `size` slots (at least 1).
    pub fn new(size: usize) -> FilePool {
        FilePool {
            size: size.max(1),
            cursor: 0,
            created: 0,
        }
    }

    /// Number of slots in the ring.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Advances the ring cursor; returns `(new, old)` slot indices: `new`
    /// is the slot to (re)create now, `old` the next-oldest slot.
    pub fn advance(&mut self) -> (usize, usize) {
        let new = self.cursor % self.size;
        let old = (self.cursor + 1) % self.size;
        self.cursor += 1;
        (new, old)
    }

    /// True once every slot has been created at least once (the slot
    /// returned as `new` by [`FilePool::advance`] holds a live file).
    pub fn primed(&self) -> bool {
        self.created >= self.size
    }

    /// Records a file creation (call once per `Op::Create` emitted).
    pub fn note_created(&mut self) {
        self.created += 1;
    }

    /// Total files created so far.
    pub fn created(&self) -> usize {
        self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two phases: one create, then `n` write+mark iterations.
    #[derive(Debug, Clone)]
    struct TwoPhase {
        phases: [PhaseSpec; 2],
    }

    impl TwoPhase {
        fn new(n: u64) -> TwoPhase {
            TwoPhase {
                phases: [PhaseSpec::once("setup"), PhaseSpec::iterations("steady", n)],
            }
        }
    }

    impl AppModel for TwoPhase {
        fn phases(&self) -> &[PhaseSpec] {
            &self.phases
        }

        fn build(&mut self, phase: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
            match phase {
                0 => s.create(0),
                _ => {
                    s.write(FileRef::Slot(0), iter, 1);
                    s.txn_mark();
                }
            }
        }
    }

    fn drain(mut w: impl Workload) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn phases_run_in_order_with_budgets() {
        let ops = drain(PhaseEngine::new(TwoPhase::new(3)));
        assert_eq!(ops.len(), 1 + 3 * 2);
        assert!(matches!(ops[0], Op::Create { slot: 0 }));
        assert!(matches!(ops[1], Op::Write { offset: 0, .. }));
        assert!(matches!(ops[5], Op::Write { offset: 2, .. }));
        assert_eq!(ops[6], Op::TxnMark);
    }

    #[test]
    fn exhausted_engine_stays_done() {
        let mut e = PhaseEngine::new(TwoPhase::new(1));
        let mut rng = SimRng::new(1);
        while e.next_op(&mut rng).is_some() {}
        assert!(e.next_op(&mut rng).is_none());
        assert_eq!(e.current_phase(), None);
    }

    #[test]
    fn empty_iterations_advance() {
        /// A phase whose even iterations emit nothing.
        #[derive(Debug)]
        struct Sparse {
            phases: [PhaseSpec; 1],
        }
        impl AppModel for Sparse {
            fn phases(&self) -> &[PhaseSpec] {
                &self.phases
            }
            fn build(&mut self, _p: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
                if iter % 2 == 1 {
                    s.txn_mark();
                }
            }
        }
        let ops = drain(PhaseEngine::new(Sparse {
            phases: [PhaseSpec::iterations("sparse", 6)],
        }));
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn unbounded_phase_that_stops_emitting_finishes() {
        #[derive(Debug)]
        struct Drying {
            phases: [PhaseSpec; 1],
            left: u64,
        }
        impl AppModel for Drying {
            fn phases(&self) -> &[PhaseSpec] {
                &self.phases
            }
            fn build(&mut self, _p: usize, _i: u64, s: &mut OpScript, _rng: &mut SimRng) {
                if self.left > 0 {
                    self.left -= 1;
                    s.txn_mark();
                }
            }
        }
        let ops = drain(PhaseEngine::new(Drying {
            phases: [PhaseSpec::unbounded("drip")],
            left: 4,
        }));
        assert_eq!(ops.len(), 4);
    }

    #[test]
    fn script_builders_map_to_ops() {
        let mut s = OpScript::new();
        let f = FileRef::Global(0);
        s.write(f, 1, 2);
        s.read(f, 0, 1);
        s.create(3);
        s.unlink(f);
        s.sync(SyncMode::Fsync, f);
        s.sync(SyncMode::None, f); // no-op
        s.think(SimDuration::from_micros(5));
        s.txn_mark();
        assert_eq!(s.len(), 7);
        assert_eq!(
            s.pop(),
            Some(Op::Write {
                file: f,
                offset: 1,
                blocks: 2
            })
        );
    }

    #[test]
    fn file_pool_ring_and_priming() {
        let mut p = FilePool::new(3);
        assert!(!p.primed());
        assert_eq!(p.advance(), (0, 1));
        p.note_created();
        assert_eq!(p.advance(), (1, 2));
        p.note_created();
        assert_eq!(p.advance(), (2, 0));
        p.note_created();
        assert!(p.primed());
        assert_eq!(p.advance(), (0, 1), "ring wraps to the oldest slot");
        assert_eq!(p.created(), 3);
    }
}
