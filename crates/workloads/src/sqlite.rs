//! SQLite insert-transaction model (Fig 14 and §5).
//!
//! In PERSIST journal mode a single insert transaction performs four
//! `fdatasync()` calls, three of which exist purely to control storage
//! order (undo-log vs journal header vs database node vs commit):
//!
//! ```text
//! write(journal, undo log)   ; fdatasync(journal)   // order  ┐
//! write(journal, header)     ; fdatasync(journal)   // order  ├ replaceable
//! write(db, updated node)    ; fdatasync(db)        // order  ┘ by fdatabarrier
//! write(db, header/commit)   ; fdatasync(db)        // durability
//! ```
//!
//! The paper's BFS-DR row replaces the first three with `fdatabarrier()`
//! and keeps the final `fdatasync()`; the BFS-OD row replaces all four.
//! In WAL mode a transaction appends to the write-ahead log and issues a
//! single `fdatasync` — little room for improvement, as Fig 14 shows.
//!
//! The journal file is overwritten in place every transaction (PERSIST
//! keeps the file), which on OptFS triggers selective data journaling —
//! the effect behind its poor SQLite/MySQL numbers in §6.5.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::engine::{AppModel, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// SQLite journal modes used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqliteJournalMode {
    /// Rollback journal, `journal_mode=PERSIST` (Android default).
    Persist,
    /// Write-ahead log.
    Wal,
}

/// SQLite insert workload over a shared database file.
///
/// One phase (`insert`), one iteration per transaction: the four
/// write+sync points of PERSIST mode, or one WAL frame append + sync.
#[derive(Debug, Clone)]
pub struct Sqlite {
    engine: PhaseEngine<SqliteModel>,
}

#[derive(Debug, Clone)]
struct SqliteModel {
    mode: SqliteJournalMode,
    /// Sync used for the three ordering points.
    order_sync: SyncMode,
    /// Sync used for the final durability point.
    commit_sync: SyncMode,
    db: FileRef,
    journal: FileRef,
    db_blocks: u64,
    wal_head: u64,
    phases: [PhaseSpec; 1],
}

impl AppModel for SqliteModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, _phase: usize, _iter: u64, s: &mut OpScript, rng: &mut SimRng) {
        // The target page is drawn before the mode split so PERSIST and
        // WAL runs consume the thread RNG identically per transaction.
        let db_page = rng.below(self.db_blocks);
        match self.mode {
            SqliteJournalMode::Persist => {
                // Undo log: two pages at the start of the journal file
                // (overwritten every transaction — PERSIST keeps the file).
                s.write(self.journal, 1, 2);
                s.sync(self.order_sync, self.journal);
                // Journal header.
                s.write(self.journal, 0, 1);
                s.sync(self.order_sync, self.journal);
                // Updated database node.
                s.write(self.db, 1 + db_page, 1);
                s.sync(self.order_sync, self.db);
                // Database header / commit point: durability.
                s.write(self.db, 0, 1);
                s.sync(self.commit_sync, self.db);
            }
            SqliteJournalMode::Wal => {
                // Append the frame (page + header) to the WAL and sync once.
                let off = self.wal_head;
                self.wal_head += 2;
                s.write(self.journal, off, 2);
                s.sync(self.commit_sync, self.journal);
            }
        }
        s.txn_mark();
    }
}

impl Sqlite {
    /// An insert workload: `inserts` transactions against `db` with
    /// `journal` as the rollback journal (PERSIST) or WAL file.
    ///
    /// `order_sync`/`commit_sync` select the experiment column:
    /// EXT4-DR = (`Fdatasync`, `Fdatasync`); BFS-DR = (`Fdatabarrier`,
    /// `Fdatasync`); BFS-OD = (`Fdatabarrier`, `Fdatabarrier`).
    pub fn new(
        mode: SqliteJournalMode,
        order_sync: SyncMode,
        commit_sync: SyncMode,
        db: FileRef,
        journal: FileRef,
        inserts: u64,
        db_blocks: u64,
    ) -> Sqlite {
        Sqlite {
            engine: PhaseEngine::new(SqliteModel {
                mode,
                order_sync,
                commit_sync,
                db,
                journal,
                db_blocks: db_blocks.max(4),
                wal_head: 0,
                phases: [PhaseSpec::iterations("insert", inserts)],
            }),
        }
    }

    /// The paper's durability row (all four calls are `fdatasync`).
    pub fn durability(
        mode: SqliteJournalMode,
        db: FileRef,
        journal: FileRef,
        inserts: u64,
    ) -> Sqlite {
        Sqlite::new(
            mode,
            SyncMode::Fdatasync,
            SyncMode::Fdatasync,
            db,
            journal,
            inserts,
            2048,
        )
    }

    /// BFS-DR: ordering points become `fdatabarrier`, commit stays
    /// `fdatasync` ("without compromising the durability of a
    /// transaction", §5).
    pub fn barrier_durability(
        mode: SqliteJournalMode,
        db: FileRef,
        journal: FileRef,
        inserts: u64,
    ) -> Sqlite {
        Sqlite::new(
            mode,
            SyncMode::Fdatabarrier,
            SyncMode::Fdatasync,
            db,
            journal,
            inserts,
            2048,
        )
    }

    /// Ordering-guarantee row (BFS-OD / OptFS): every call ordering-only.
    pub fn ordering(
        mode: SqliteJournalMode,
        db: FileRef,
        journal: FileRef,
        inserts: u64,
    ) -> Sqlite {
        Sqlite::new(
            mode,
            SyncMode::Fdatabarrier,
            SyncMode::Fdatabarrier,
            db,
            journal,
            inserts,
            2048,
        )
    }
}

impl Workload for Sqlite {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut w: Sqlite) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn persist_issues_four_syncs_per_insert() {
        let ops = drain(Sqlite::durability(
            SqliteJournalMode::Persist,
            FileRef::Global(0),
            FileRef::Global(1),
            3,
        ));
        let syncs = ops
            .iter()
            .filter(|o| matches!(o, Op::Fdatasync { .. }))
            .count();
        assert_eq!(syncs, 12, "4 fdatasync per insert (§5)");
        let marks = ops.iter().filter(|o| **o == Op::TxnMark).count();
        assert_eq!(marks, 3);
    }

    #[test]
    fn barrier_durability_keeps_one_fdatasync() {
        let ops = drain(Sqlite::barrier_durability(
            SqliteJournalMode::Persist,
            FileRef::Global(0),
            FileRef::Global(1),
            1,
        ));
        let barriers = ops
            .iter()
            .filter(|o| matches!(o, Op::Fdatabarrier { .. }))
            .count();
        let syncs = ops
            .iter()
            .filter(|o| matches!(o, Op::Fdatasync { .. }))
            .count();
        assert_eq!(barriers, 3, "three ordering points replaced");
        assert_eq!(syncs, 1, "commit point keeps durability");
    }

    #[test]
    fn ordering_replaces_everything() {
        let ops = drain(Sqlite::ordering(
            SqliteJournalMode::Persist,
            FileRef::Global(0),
            FileRef::Global(1),
            1,
        ));
        assert!(!ops.iter().any(|o| matches!(o, Op::Fdatasync { .. })));
        assert_eq!(
            ops.iter()
                .filter(|o| matches!(o, Op::Fdatabarrier { .. }))
                .count(),
            4
        );
    }

    #[test]
    fn wal_issues_one_sync_per_insert() {
        let ops = drain(Sqlite::durability(
            SqliteJournalMode::Wal,
            FileRef::Global(0),
            FileRef::Global(1),
            4,
        ));
        let syncs = ops
            .iter()
            .filter(|o| matches!(o, Op::Fdatasync { .. }))
            .count();
        assert_eq!(syncs, 4, "1 fdatasync per WAL commit");
        // WAL appends advance.
        let offsets: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offsets, vec![0, 2, 4, 6]);
    }

    #[test]
    fn persist_overwrites_journal_every_txn() {
        let ops = drain(Sqlite::durability(
            SqliteJournalMode::Persist,
            FileRef::Global(0),
            FileRef::Global(1),
            2,
        ));
        let journal_writes: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Global(1),
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(journal_writes, vec![1, 0, 1, 0], "journal reused in place");
    }
}
