//! # bio-workloads — application workload generators
//!
//! Syscall-level models of every application the paper evaluates (§5–§6):
//!
//! * [`RandWrite`] — the 4 KiB random-write microbenchmark behind Figs 1,
//!   9 and 10 (buffered, or ordered via a configurable sync call);
//! * [`Dwsl`] — fxmark's modified DWSL: per-thread 4 KiB allocating write
//!   + fsync (Fig 13);
//! * [`Sqlite`] — SQLite insert transactions in PERSIST and WAL journal
//!   modes, with the paper's substitution of ordering-only calls for three
//!   of the four `fdatasync`s (Fig 14);
//! * [`Varmail`] — filebench varmail: create/append/fsync/read/delete mail
//!   loop (Fig 15);
//! * [`OltpInsert`] — MySQL-style OLTP inserts: redo-log + binlog commits
//!   with a circularly overwritten log file (Fig 15; the overwrites are
//!   what trigger OptFS's selective data journaling).
//!
//! Beyond the paper's five, two server workloads exercise the stacks where
//! tail *latency*, not throughput, differentiates them (the `fig16`
//! experiment):
//!
//! * [`RocksDbWal`] — LSM-style WAL append + commit sync, interleaved with
//!   memtable flushes to L0 SSTs and L0→L1 compactions;
//! * [`MailQueue`] — postfix-style fsync storm: spool-file + queue-directory
//!   sync per message over a ring of small files.
//!
//! Every workload is built on the [`engine`] phase framework: a model
//! declares its phases ([`PhaseSpec`]) and builds one iteration's ops at a
//! time into an [`OpScript`]; [`PhaseEngine`] drives it as a
//! [`barrier_io::Workload`]. The sync flavour is a parameter
//! ([`SyncMode`]) so one generator covers the EXT4-DR / EXT4-OD / BFS-DR /
//! BFS-OD / OptFS experiment columns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;

mod dwsl;
mod mailqueue;
mod oltp;
mod randwrite;
mod rocksdb;
mod sqlite;
mod varmail;

pub use dwsl::Dwsl;
pub use engine::{AppModel, FilePool, OpScript, PhaseEngine, PhaseLen, PhaseSpec};
pub use mailqueue::MailQueue;
pub use oltp::OltpInsert;
pub use randwrite::{RandWrite, WriteMode};
pub use rocksdb::RocksDbWal;
pub use sqlite::{Sqlite, SqliteJournalMode};
pub use varmail::Varmail;

use barrier_io::{FileRef, Op};

/// Which synchronisation call a workload uses where the application wants
/// ordering and/or durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// `fsync` — durability (EXT4-DR / BFS-DR columns).
    Fsync,
    /// `fdatasync`.
    Fdatasync,
    /// `fbarrier` — ordering only (BFS-OD; maps to `osync` on OptFS).
    Fbarrier,
    /// `fdatabarrier` — ordering only, no wait.
    Fdatabarrier,
    /// No call at all.
    None,
}

impl SyncMode {
    /// The op for this mode on `file`, or `None` for [`SyncMode::None`].
    pub fn op(self, file: FileRef) -> Option<Op> {
        match self {
            SyncMode::Fsync => Some(Op::Fsync { file }),
            SyncMode::Fdatasync => Some(Op::Fdatasync { file }),
            SyncMode::Fbarrier => Some(Op::Fbarrier { file }),
            SyncMode::Fdatabarrier => Some(Op::Fdatabarrier { file }),
            SyncMode::None => None,
        }
    }

    /// The ordering-only counterpart (what the paper substitutes when
    /// relaxing durability).
    pub fn ordering_only(self) -> SyncMode {
        match self {
            SyncMode::Fsync => SyncMode::Fbarrier,
            SyncMode::Fdatasync => SyncMode::Fdatabarrier,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_mode_ops() {
        let f = FileRef::Global(0);
        assert_eq!(SyncMode::Fsync.op(f), Some(Op::Fsync { file: f }));
        assert_eq!(SyncMode::None.op(f), None);
        assert_eq!(
            SyncMode::Fdatasync.ordering_only().op(f),
            Some(Op::Fdatabarrier { file: f })
        );
        assert_eq!(SyncMode::Fbarrier.ordering_only(), SyncMode::Fbarrier);
    }
}
