//! fxmark's modified DWSL workload (Fig 13): every thread appends one
//! 4 KiB block to its own private file and fsyncs, repeatedly — the
//! canonical journaling-scalability stressor, because every append is an
//! allocating write and therefore forces a real journal commit.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::SyncMode;

/// Per-thread allocating-write + sync loop.
#[derive(Debug, Clone)]
pub struct Dwsl {
    sync: SyncMode,
    writes: u64,
    issued: u64,
    offset: u64,
    created: bool,
    phase: Phase,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Write,
    Sync,
    Mark,
}

impl Dwsl {
    /// `writes` append+sync operations on a fresh private file.
    pub fn new(sync: SyncMode, writes: u64) -> Dwsl {
        Dwsl {
            sync,
            writes,
            issued: 0,
            offset: 0,
            created: false,
            phase: Phase::Write,
        }
    }
}

impl Workload for Dwsl {
    fn next_op(&mut self, _rng: &mut SimRng) -> Option<Op> {
        if !self.created {
            self.created = true;
            return Some(Op::Create { slot: 0 });
        }
        let file = FileRef::Slot(0);
        loop {
            match self.phase {
                Phase::Write => {
                    if self.issued >= self.writes {
                        return None;
                    }
                    self.issued += 1;
                    let offset = self.offset;
                    self.offset += 1;
                    self.phase = Phase::Sync;
                    return Some(Op::Write {
                        file,
                        offset,
                        blocks: 1,
                    });
                }
                Phase::Sync => {
                    self.phase = Phase::Mark;
                    if let Some(op) = self.sync.op(file) {
                        return Some(op);
                    }
                }
                Phase::Mark => {
                    self.phase = Phase::Write;
                    return Some(Op::TxnMark);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_create_then_write_sync_mark() {
        let mut w = Dwsl::new(SyncMode::Fsync, 2);
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(matches!(ops[0], Op::Create { slot: 0 }));
        assert!(matches!(
            ops[1],
            Op::Write {
                offset: 0,
                blocks: 1,
                ..
            }
        ));
        assert!(matches!(ops[2], Op::Fsync { .. }));
        assert_eq!(ops[3], Op::TxnMark);
        assert!(matches!(ops[4], Op::Write { offset: 1, .. }));
        assert_eq!(ops.len(), 7);
    }

    #[test]
    fn appends_are_allocating() {
        // Offsets strictly increase: every write extends the file.
        let mut w = Dwsl::new(SyncMode::Fbarrier, 5);
        let mut rng = SimRng::new(1);
        let mut last = None;
        while let Some(op) = w.next_op(&mut rng) {
            if let Op::Write { offset, .. } = op {
                if let Some(prev) = last {
                    assert!(offset > prev);
                }
                last = Some(offset);
            }
        }
        assert_eq!(last, Some(4));
    }

    #[test]
    fn none_sync_skips_sync_ops() {
        let mut w = Dwsl::new(SyncMode::None, 2);
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(!ops.iter().any(|o| matches!(o, Op::Fsync { .. })));
    }
}
