//! fxmark's modified DWSL workload (Fig 13): every thread appends one
//! 4 KiB block to its own private file and fsyncs, repeatedly — the
//! canonical journaling-scalability stressor, because every append is an
//! allocating write and therefore forces a real journal commit.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::{SimDuration, SimRng};

use crate::engine::{AppModel, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// Per-thread allocating-write + sync loop.
///
/// Two phases: `create` (the private file) and `append` (`writes`
/// iterations of write + sync + transaction mark, each write extending
/// the file by one block).
#[derive(Debug, Clone)]
pub struct Dwsl {
    engine: PhaseEngine<DwslModel>,
}

#[derive(Debug, Clone)]
struct DwslModel {
    sync: SyncMode,
    think: Option<SimDuration>,
    phases: [PhaseSpec; 2],
}

impl AppModel for DwslModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, phase: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
        let file = FileRef::Slot(0);
        match phase {
            0 => s.create(0),
            _ => {
                // Appending at `iter` extends the file: an allocating
                // write, so the sync cannot degenerate to a data-only
                // flush.
                s.write(file, iter, 1);
                s.sync(self.sync, file);
                s.txn_mark();
                if let Some(d) = self.think {
                    s.think(d);
                }
            }
        }
    }
}

impl Dwsl {
    /// `writes` append+sync operations on a fresh private file.
    ///
    /// The append phase draws no RNG and advances its single write
    /// offset by one block per iteration, so it is compiled into a
    /// replay trace after the first three iterations ([`PhaseSpec::replayable`]).
    pub fn new(sync: SyncMode, writes: u64) -> Dwsl {
        Dwsl {
            engine: PhaseEngine::new(DwslModel {
                sync,
                think: None,
                phases: [
                    PhaseSpec::once("create"),
                    PhaseSpec::replayable("append", writes),
                ],
            }),
        }
    }

    /// Inserts a fixed think time after every transaction, turning the
    /// closed back-to-back sync loop into a rate-bounded client. Long
    /// simulated horizons need this: an unthrottled appender would outrun
    /// any finite device's capacity within minutes of simulated time.
    pub fn with_think(mut self, think: SimDuration) -> Dwsl {
        self.engine.model_mut().think = Some(think);
        self
    }
}

impl Workload for Dwsl {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_is_create_then_write_sync_mark() {
        let mut w = Dwsl::new(SyncMode::Fsync, 2);
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(matches!(ops[0], Op::Create { slot: 0 }));
        assert!(matches!(
            ops[1],
            Op::Write {
                offset: 0,
                blocks: 1,
                ..
            }
        ));
        assert!(matches!(ops[2], Op::Fsync { .. }));
        assert_eq!(ops[3], Op::TxnMark);
        assert!(matches!(ops[4], Op::Write { offset: 1, .. }));
        assert_eq!(ops.len(), 7);
    }

    #[test]
    fn appends_are_allocating() {
        // Offsets strictly increase: every write extends the file.
        let mut w = Dwsl::new(SyncMode::Fbarrier, 5);
        let mut rng = SimRng::new(1);
        let mut last = None;
        while let Some(op) = w.next_op(&mut rng) {
            if let Op::Write { offset, .. } = op {
                if let Some(prev) = last {
                    assert!(offset > prev);
                }
                last = Some(offset);
            }
        }
        assert_eq!(last, Some(4));
    }

    #[test]
    fn none_sync_skips_sync_ops() {
        let mut w = Dwsl::new(SyncMode::None, 2);
        let mut rng = SimRng::new(1);
        let ops: Vec<Op> = std::iter::from_fn(|| w.next_op(&mut rng)).collect();
        assert!(!ops.iter().any(|o| matches!(o, Op::Fsync { .. })));
    }
}
