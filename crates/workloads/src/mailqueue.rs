//! Mail-queue fsync storm (beyond the paper's five).
//!
//! Models a postfix-style queue manager: every accepted message is written
//! to its own small spool file and fsynced, and the queue *directory* is
//! synced too — the double-fsync pattern MTAs use so neither the message
//! nor its directory entry can be lost. Once the queue is primed, each
//! iteration also delivers (reads) and unlinks the oldest message, with
//! another directory sync for the removal. The result is the heaviest
//! sync-per-byte ratio of any workload here: two sync calls and two
//! metadata mutations per 1–4 KiB message.
//!
//! This is the workload where ordering-only sync shines on *latency*: the
//! accept path's two syncs serialise on flush in EXT4-DR, while BFS-OD
//! turns both into non-blocking barriers — the p99 gap is the `fig16`
//! story.
//!
//! Two phases: `mkdir` (create the queue directory file) and `storm` (one
//! iteration per message) over a [`FilePool`] ring of spool slots.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::engine::{AppModel, FilePool, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// Queue-directory slot index; spool files occupy the following slots.
const DIR_SLOT: usize = 0;
/// First spool-file slot.
const SPOOL_BASE: usize = 1;

/// Mail-queue workload: create + write + fsync(file) + fsync(dir) per
/// message, delivery (read + unlink + fsync(dir)) of the oldest once the
/// pool is primed.
#[derive(Debug, Clone)]
pub struct MailQueue {
    engine: PhaseEngine<MailQueueModel>,
}

#[derive(Debug, Clone)]
struct MailQueueModel {
    sync: SyncMode,
    pool: FilePool,
    max_msg_blocks: u64,
    phases: [PhaseSpec; 2],
}

impl AppModel for MailQueueModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, phase: usize, _iter: u64, s: &mut OpScript, rng: &mut SimRng) {
        if phase == 0 {
            s.create(DIR_SLOT);
            return;
        }
        let dir = FileRef::Slot(DIR_SLOT);
        let (ring_slot, _) = self.pool.advance();
        let slot = SPOOL_BASE + ring_slot;
        // Deliver the oldest message before its slot is reused: read it
        // out, unlink the spool file, sync the directory for the removal.
        if self.pool.primed() {
            s.read(FileRef::Slot(slot), 0, 1);
            s.unlink(FileRef::Slot(slot));
            s.sync(self.sync, dir);
        }
        // Accept a new message: spool file + data sync + directory sync.
        s.create(slot);
        self.pool.note_created();
        s.write(FileRef::Slot(slot), 0, rng.range(1, self.max_msg_blocks));
        s.sync(self.sync, FileRef::Slot(slot));
        s.sync(self.sync, dir);
        s.txn_mark();
    }
}

impl MailQueue {
    /// `messages` accept(+deliver) iterations over a ring of `pool` spool
    /// files; `sync` selects the experiment column.
    pub fn new(sync: SyncMode, messages: u64, pool: usize) -> MailQueue {
        MailQueue {
            engine: PhaseEngine::new(MailQueueModel {
                sync,
                pool: FilePool::new(pool.max(2)),
                max_msg_blocks: 4,
                phases: [
                    PhaseSpec::once("mkdir"),
                    PhaseSpec::iterations("storm", messages),
                ],
            }),
        }
    }
}

impl Workload for MailQueue {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut w: MailQueue) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn accept_path_double_syncs() {
        let ops = drain(MailQueue::new(SyncMode::Fsync, 3, 8));
        // Pool never primes (8 slots, 3 messages): 2 fsyncs per message.
        let fsyncs = ops.iter().filter(|o| matches!(o, Op::Fsync { .. })).count();
        assert_eq!(fsyncs, 6, "file + dir sync per accept");
        let dir_syncs = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Op::Fsync {
                        file: FileRef::Slot(DIR_SLOT)
                    }
                )
            })
            .count();
        assert_eq!(dir_syncs, 3);
        assert_eq!(ops.iter().filter(|o| **o == Op::TxnMark).count(), 3);
        assert!(matches!(ops[0], Op::Create { slot: DIR_SLOT }));
    }

    #[test]
    fn primed_pool_delivers_the_oldest() {
        let ops = drain(MailQueue::new(SyncMode::Fsync, 5, 2));
        // Messages 3..5 reuse slots, so each delivers (read+unlink) first.
        let unlinks = ops
            .iter()
            .filter(|o| matches!(o, Op::Unlink { .. }))
            .count();
        assert_eq!(unlinks, 3);
        let reads = ops.iter().filter(|o| matches!(o, Op::Read { .. })).count();
        assert_eq!(reads, 3);
        // Delivery adds a third sync (dir sync for the removal).
        let fsyncs = ops.iter().filter(|o| matches!(o, Op::Fsync { .. })).count();
        assert_eq!(fsyncs, 2 * 5 + 3);
    }

    #[test]
    fn spool_files_never_touch_the_dir_slot() {
        let ops = drain(MailQueue::new(SyncMode::Fbarrier, 10, 3));
        for op in &ops {
            if let Op::Create { slot } = op {
                assert!(*slot == DIR_SLOT || *slot >= SPOOL_BASE);
            }
            if let Op::Unlink {
                file: FileRef::Slot(s),
            } = op
            {
                assert!(*s >= SPOOL_BASE, "the directory is never unlinked");
            }
        }
    }

    #[test]
    fn ordering_mode_uses_barriers_only() {
        let ops = drain(MailQueue::new(SyncMode::Fbarrier, 4, 2));
        assert!(!ops.iter().any(|o| matches!(o, Op::Fsync { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Fbarrier { .. })));
    }
}
