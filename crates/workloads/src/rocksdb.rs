//! RocksDB-style WAL + compaction workload (beyond the paper's five).
//!
//! Models an LSM storage engine's IO personality, the load the paper's
//! OLTP row only hints at: every put appends one record to the write-ahead
//! log and syncs it (`sync_wal` on commit), and in the background the
//! engine periodically flushes the memtable into an L0 SST file and — once
//! enough L0 files accumulate — compacts them into a merged L1 file
//! (read-heavy, large sequential writes, then a burst of unlinks).
//!
//! Ordering-only sync (`SyncMode::Fbarrier` / `Fdatabarrier`) is exactly
//! what an LSM tree's group commit wants: the WAL record must reach
//! storage *before* the commit is acknowledged relative to later state,
//! but each individual put does not need to wait on a flush. The WAL slot
//! is recycled in place after a memtable flush (log rotation with file
//! reuse), so on OptFS the recycled-log overwrites trigger selective data
//! journaling — the same effect that hurts OptFS on the paper's OLTP
//! workload (§6.5).
//!
//! Three phases: `open` (create the WAL), `put` (one iteration per put),
//! `shutdown` (flush the remaining memtable). All files are
//! thread-private slots, so each thread is an independent DB instance.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;

use crate::engine::{AppModel, OpScript, PhaseEngine, PhaseSpec};
use crate::SyncMode;

/// WAL slot index.
const WAL_SLOT: usize = 0;
/// First L0 SST slot; `L0_FANOUT` slots follow.
const L0_BASE: usize = 1;
/// L0 files merged per compaction.
const L0_FANOUT: usize = 4;
/// Merged (L1) SST slot.
const L1_SLOT: usize = L0_BASE + L0_FANOUT;

/// RocksDB-style put stream: WAL append + sync per put, memtable flushes
/// and L0→L1 compactions interleaved.
#[derive(Debug, Clone)]
pub struct RocksDbWal {
    engine: PhaseEngine<RocksModel>,
}

#[derive(Debug, Clone)]
struct RocksModel {
    sync: SyncMode,
    /// Puts per memtable flush.
    flush_every: u64,
    /// Blocks per L0 SST file.
    sst_blocks: u64,
    wal_head: u64,
    puts_since_flush: u64,
    flushes: u64,
    compactions: u64,
    phases: [PhaseSpec; 3],
}

impl RocksModel {
    /// Memtable flush: write one L0 SST, sync it, recycle the WAL.
    fn flush_memtable(&mut self, s: &mut OpScript) {
        let slot = L0_BASE + (self.flushes as usize % L0_FANOUT);
        s.create(slot);
        s.write(FileRef::Slot(slot), 0, self.sst_blocks);
        s.sync(self.sync, FileRef::Slot(slot));
        // Log rotation with file reuse: the next WAL record overwrites
        // the head of the recycled log file.
        self.wal_head = 0;
        self.puts_since_flush = 0;
        self.flushes += 1;
        if self.flushes % L0_FANOUT as u64 == 0 {
            self.compact(s);
        }
    }

    /// L0→L1 compaction: read every L0 file, write the merged SST, drop
    /// the inputs.
    fn compact(&mut self, s: &mut OpScript) {
        for i in 0..L0_FANOUT {
            s.read(FileRef::Slot(L0_BASE + i), 0, self.sst_blocks);
        }
        if self.compactions > 0 {
            // The merged level is rewritten whole; retire the old file.
            s.unlink(FileRef::Slot(L1_SLOT));
        }
        s.create(L1_SLOT);
        s.write(
            FileRef::Slot(L1_SLOT),
            0,
            self.sst_blocks * L0_FANOUT as u64,
        );
        s.sync(self.sync, FileRef::Slot(L1_SLOT));
        for i in 0..L0_FANOUT {
            s.unlink(FileRef::Slot(L0_BASE + i));
        }
        self.compactions += 1;
    }
}

impl AppModel for RocksModel {
    fn phases(&self) -> &[PhaseSpec] {
        &self.phases
    }

    fn build(&mut self, phase: usize, iter: u64, s: &mut OpScript, _rng: &mut SimRng) {
        match phase {
            0 => s.create(WAL_SLOT),
            1 => {
                // One put: WAL record append + commit sync.
                let off = self.wal_head;
                self.wal_head += 1;
                s.write(FileRef::Slot(WAL_SLOT), off, 1);
                s.sync(self.sync, FileRef::Slot(WAL_SLOT));
                s.txn_mark();
                self.puts_since_flush += 1;
                if (iter + 1) % self.flush_every == 0 {
                    self.flush_memtable(s);
                }
            }
            _ => {
                if self.puts_since_flush > 0 {
                    self.flush_memtable(s);
                }
            }
        }
    }
}

impl RocksDbWal {
    /// `puts` WAL-synced put operations; `sync` selects the experiment
    /// column (fsync/fdatasync for DR rows, fbarrier/fdatabarrier for OD
    /// rows).
    pub fn new(sync: SyncMode, puts: u64) -> RocksDbWal {
        RocksDbWal {
            engine: PhaseEngine::new(RocksModel {
                sync,
                flush_every: 24,
                sst_blocks: 16,
                wal_head: 0,
                puts_since_flush: 0,
                flushes: 0,
                compactions: 0,
                phases: [
                    PhaseSpec::once("open"),
                    PhaseSpec::iterations("put", puts),
                    PhaseSpec::once("shutdown"),
                ],
            }),
        }
    }

    /// Overrides the memtable flush interval (puts per L0 flush).
    pub fn with_flush_every(mut self, puts: u64) -> RocksDbWal {
        self.engine.model_mut().flush_every = puts.max(1);
        self
    }
}

impl Workload for RocksDbWal {
    fn fork(&self) -> Option<Box<dyn Workload>> {
        Some(Box::new(self.clone()))
    }

    fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
        self.engine.next_op(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut w: RocksDbWal) -> Vec<Op> {
        let mut rng = SimRng::new(1);
        std::iter::from_fn(|| w.next_op(&mut rng)).collect()
    }

    #[test]
    fn every_put_syncs_the_wal() {
        let ops = drain(RocksDbWal::new(SyncMode::Fdatasync, 10).with_flush_every(100));
        let wal_syncs = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Op::Fdatasync {
                        file: FileRef::Slot(0)
                    }
                )
            })
            .count();
        // 10 put syncs; the shutdown flush syncs the L0 SST, not the WAL.
        assert_eq!(wal_syncs, 10);
        assert_eq!(ops.iter().filter(|o| **o == Op::TxnMark).count(), 10);
        assert!(matches!(ops[0], Op::Create { slot: WAL_SLOT }));
    }

    #[test]
    fn memtable_flush_writes_an_l0_sst_and_recycles_the_wal() {
        let ops = drain(RocksDbWal::new(SyncMode::Fdatasync, 4).with_flush_every(2));
        // After the flush at put 2, the WAL head restarts at offset 0.
        let wal_offsets: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Slot(0),
                    offset,
                    ..
                } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(wal_offsets, vec![0, 1, 0, 1], "WAL recycled in place");
        // Each flush creates one L0 SST (16 blocks) in slots 1, 2.
        let sst_creates: Vec<usize> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Create { slot } if *slot >= L0_BASE => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(sst_creates, vec![1, 2]);
    }

    #[test]
    fn compaction_merges_l0_files_and_unlinks_them() {
        // 4 flushes trigger one compaction: flush_every=1, 4 puts.
        let ops = drain(RocksDbWal::new(SyncMode::Fbarrier, 4).with_flush_every(1));
        let reads = ops.iter().filter(|o| matches!(o, Op::Read { .. })).count();
        assert_eq!(reads, L0_FANOUT, "compaction reads every L0 input");
        let merged_writes: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Write {
                    file: FileRef::Slot(s),
                    blocks,
                    ..
                } if *s == L1_SLOT => Some(*blocks),
                _ => None,
            })
            .collect();
        assert_eq!(merged_writes, vec![16 * L0_FANOUT as u64]);
        let unlinks = ops
            .iter()
            .filter(|o| matches!(o, Op::Unlink { .. }))
            .count();
        assert_eq!(unlinks, L0_FANOUT, "every L0 input retired");
    }

    #[test]
    fn shutdown_flushes_the_partial_memtable() {
        let ops = drain(RocksDbWal::new(SyncMode::Fdatasync, 3).with_flush_every(100));
        // No flush during the run, so shutdown must write the L0 SST.
        let sst_writes = ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    Op::Write {
                        file: FileRef::Slot(s),
                        ..
                    } if *s == L0_BASE
                )
            })
            .count();
        assert_eq!(sst_writes, 1);
    }

    #[test]
    fn ordering_mode_emits_no_durability_syncs() {
        let ops = drain(RocksDbWal::new(SyncMode::Fdatabarrier, 30));
        assert!(!ops
            .iter()
            .any(|o| matches!(o, Op::Fsync { .. } | Op::Fdatasync { .. })));
        assert!(ops.iter().any(|o| matches!(o, Op::Fdatabarrier { .. })));
    }
}
