//! Golden op-trace equivalence: the phase-engine rewrites of the five
//! paper workloads must emit **byte-identical** op streams to the
//! pre-refactor bespoke generators, draw for draw.
//!
//! The `legacy` module below preserves the original generator
//! implementations (each hand-managing its own queue/cursor/counters)
//! verbatim from before the `PhaseEngine` refactor. Every test drives a
//! legacy generator and its rewrite with identically seeded RNGs and
//! compares the full op vectors — any divergence in op order, offsets,
//! RNG draw order or stream length fails with the first mismatching
//! index. This is the same lock the dense-index migrations used
//! (reference backend kept alive for equivalence), applied to the
//! workload layer.

use barrier_io::{FileRef, Op, Workload};
use bio_sim::SimRng;
use bio_workloads::{
    Dwsl, OltpInsert, RandWrite, Sqlite, SqliteJournalMode, SyncMode, Varmail, WriteMode,
};

/// The pre-refactor generators, frozen as the reference implementations.
mod legacy {
    use std::collections::VecDeque;

    use barrier_io::{FileRef, Op, Workload};
    use bio_sim::SimRng;
    use bio_workloads::{SqliteJournalMode, SyncMode, WriteMode};

    pub struct RandWrite {
        file: FileRef,
        region_blocks: u64,
        mode: WriteMode,
        remaining: u64,
        pending_sync: bool,
    }

    impl RandWrite {
        pub fn new(file: FileRef, region_blocks: u64, mode: WriteMode, count: u64) -> RandWrite {
            RandWrite {
                file,
                region_blocks,
                mode,
                remaining: count,
                pending_sync: false,
            }
        }
    }

    impl Workload for RandWrite {
        fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
            if self.pending_sync {
                self.pending_sync = false;
                if let WriteMode::SyncEach(sync) = self.mode {
                    if let Some(op) = sync.op(self.file) {
                        return Some(op);
                    }
                }
            }
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            self.pending_sync = matches!(self.mode, WriteMode::SyncEach(_));
            Some(Op::Write {
                file: self.file,
                offset: rng.below(self.region_blocks),
                blocks: 1,
            })
        }
    }

    pub struct Dwsl {
        sync: SyncMode,
        writes: u64,
        issued: u64,
        offset: u64,
        created: bool,
        phase: DwslPhase,
    }

    #[derive(PartialEq, Eq, Clone, Copy)]
    enum DwslPhase {
        Write,
        Sync,
        Mark,
    }

    impl Dwsl {
        pub fn new(sync: SyncMode, writes: u64) -> Dwsl {
            Dwsl {
                sync,
                writes,
                issued: 0,
                offset: 0,
                created: false,
                phase: DwslPhase::Write,
            }
        }
    }

    impl Workload for Dwsl {
        fn next_op(&mut self, _rng: &mut SimRng) -> Option<Op> {
            if !self.created {
                self.created = true;
                return Some(Op::Create { slot: 0 });
            }
            let file = FileRef::Slot(0);
            loop {
                match self.phase {
                    DwslPhase::Write => {
                        if self.issued >= self.writes {
                            return None;
                        }
                        self.issued += 1;
                        let offset = self.offset;
                        self.offset += 1;
                        self.phase = DwslPhase::Sync;
                        return Some(Op::Write {
                            file,
                            offset,
                            blocks: 1,
                        });
                    }
                    DwslPhase::Sync => {
                        self.phase = DwslPhase::Mark;
                        if let Some(op) = self.sync.op(file) {
                            return Some(op);
                        }
                    }
                    DwslPhase::Mark => {
                        self.phase = DwslPhase::Write;
                        return Some(Op::TxnMark);
                    }
                }
            }
        }
    }

    pub struct Sqlite {
        mode: SqliteJournalMode,
        order_sync: SyncMode,
        commit_sync: SyncMode,
        db: FileRef,
        journal: FileRef,
        inserts: u64,
        done: u64,
        db_blocks: u64,
        wal_head: u64,
        queue: VecDeque<Op>,
    }

    impl Sqlite {
        #[allow(clippy::too_many_arguments)]
        pub fn new(
            mode: SqliteJournalMode,
            order_sync: SyncMode,
            commit_sync: SyncMode,
            db: FileRef,
            journal: FileRef,
            inserts: u64,
            db_blocks: u64,
        ) -> Sqlite {
            Sqlite {
                mode,
                order_sync,
                commit_sync,
                db,
                journal,
                inserts,
                done: 0,
                db_blocks: db_blocks.max(4),
                wal_head: 0,
                queue: VecDeque::new(),
            }
        }

        fn refill(&mut self, rng: &mut SimRng) {
            let db_page = rng.below(self.db_blocks);
            match self.mode {
                SqliteJournalMode::Persist => {
                    self.queue.push_back(Op::Write {
                        file: self.journal,
                        offset: 1,
                        blocks: 2,
                    });
                    self.push_sync(self.order_sync, self.journal);
                    self.queue.push_back(Op::Write {
                        file: self.journal,
                        offset: 0,
                        blocks: 1,
                    });
                    self.push_sync(self.order_sync, self.journal);
                    self.queue.push_back(Op::Write {
                        file: self.db,
                        offset: 1 + db_page,
                        blocks: 1,
                    });
                    self.push_sync(self.order_sync, self.db);
                    self.queue.push_back(Op::Write {
                        file: self.db,
                        offset: 0,
                        blocks: 1,
                    });
                    self.push_sync(self.commit_sync, self.db);
                }
                SqliteJournalMode::Wal => {
                    let off = self.wal_head;
                    self.wal_head += 2;
                    self.queue.push_back(Op::Write {
                        file: self.journal,
                        offset: off,
                        blocks: 2,
                    });
                    self.push_sync(self.commit_sync, self.journal);
                }
            }
            self.queue.push_back(Op::TxnMark);
        }

        fn push_sync(&mut self, mode: SyncMode, file: FileRef) {
            if let Some(op) = mode.op(file) {
                self.queue.push_back(op);
            }
        }
    }

    impl Workload for Sqlite {
        fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
            if self.queue.is_empty() {
                if self.done >= self.inserts {
                    return None;
                }
                self.done += 1;
                self.refill(rng);
            }
            self.queue.pop_front()
        }
    }

    pub struct Varmail {
        sync: SyncMode,
        iterations: u64,
        done: u64,
        pool: usize,
        cursor: usize,
        created: usize,
        max_mail_blocks: u64,
        queue: VecDeque<Op>,
    }

    impl Varmail {
        pub fn new(sync: SyncMode, iterations: u64, pool: usize) -> Varmail {
            Varmail {
                sync,
                iterations,
                done: 0,
                pool: pool.max(2),
                cursor: 0,
                created: 0,
                max_mail_blocks: 4,
                queue: VecDeque::new(),
            }
        }

        fn push_sync(&mut self, file: FileRef) {
            if let Some(op) = self.sync.op(file) {
                self.queue.push_back(op);
            }
        }

        fn refill(&mut self, rng: &mut SimRng) {
            let slot_new = self.cursor % self.pool;
            let slot_old = (self.cursor + 1) % self.pool;
            self.cursor += 1;
            let blocks = rng.range(1, self.max_mail_blocks);

            if self.created >= self.pool {
                self.queue.push_back(Op::Unlink {
                    file: FileRef::Slot(slot_new),
                });
            }
            self.queue.push_back(Op::Create { slot: slot_new });
            self.created += 1;
            self.queue.push_back(Op::Write {
                file: FileRef::Slot(slot_new),
                offset: 0,
                blocks,
            });
            self.push_sync(FileRef::Slot(slot_new));
            if self.created > 1 {
                let target = FileRef::Slot(slot_old.min(self.created - 1));
                self.queue.push_back(Op::Write {
                    file: target,
                    offset: self.max_mail_blocks,
                    blocks: rng.range(1, 2),
                });
                self.push_sync(target);
                self.queue.push_back(Op::Read {
                    file: target,
                    offset: 0,
                    blocks: 1,
                });
            }
            self.queue.push_back(Op::TxnMark);
        }
    }

    impl Workload for Varmail {
        fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
            if self.queue.is_empty() {
                if self.done >= self.iterations {
                    return None;
                }
                self.done += 1;
                self.refill(rng);
            }
            self.queue.pop_front()
        }
    }

    pub struct OltpInsert {
        sync: SyncMode,
        table: FileRef,
        redo: FileRef,
        binlog: FileRef,
        txns: u64,
        done: u64,
        pub redo_blocks: u64,
        redo_head: u64,
        binlog_head: u64,
        table_blocks: u64,
        queue: VecDeque<Op>,
    }

    impl OltpInsert {
        pub fn new(
            sync: SyncMode,
            table: FileRef,
            redo: FileRef,
            binlog: FileRef,
            txns: u64,
        ) -> OltpInsert {
            OltpInsert {
                sync,
                table,
                redo,
                binlog,
                txns,
                done: 0,
                redo_blocks: 256,
                redo_head: 0,
                binlog_head: 0,
                table_blocks: 4096,
                queue: VecDeque::new(),
            }
        }

        fn push_sync(&mut self, file: FileRef) {
            if let Some(op) = self.sync.op(file) {
                self.queue.push_back(op);
            }
        }

        fn refill(&mut self, rng: &mut SimRng) {
            let redo_off = self.redo_head % self.redo_blocks;
            self.redo_head += 1;
            self.queue.push_back(Op::Write {
                file: self.redo,
                offset: redo_off,
                blocks: 1,
            });
            self.push_sync(self.redo);
            let off = self.binlog_head;
            self.binlog_head += 1;
            self.queue.push_back(Op::Write {
                file: self.binlog,
                offset: off,
                blocks: 1,
            });
            self.push_sync(self.binlog);
            if self.done % 8 == 0 {
                for _ in 0..4 {
                    self.queue.push_back(Op::Write {
                        file: self.table,
                        offset: rng.below(self.table_blocks),
                        blocks: 1,
                    });
                }
            }
            self.queue.push_back(Op::TxnMark);
        }
    }

    impl Workload for OltpInsert {
        fn next_op(&mut self, rng: &mut SimRng) -> Option<Op> {
            if self.queue.is_empty() {
                if self.done >= self.txns {
                    return None;
                }
                self.done += 1;
                self.refill(rng);
            }
            self.queue.pop_front()
        }
    }
}

/// Drains up to `cap` ops from a workload under a fresh RNG with `seed`.
fn trace(mut w: impl Workload, seed: u64, cap: usize) -> Vec<Op> {
    let mut rng = SimRng::new(seed);
    let mut ops = Vec::new();
    while ops.len() < cap {
        match w.next_op(&mut rng) {
            Some(op) => ops.push(op),
            None => break,
        }
    }
    ops
}

/// Asserts two traces match, reporting the first mismatch index.
fn assert_identical(name: &str, legacy: Vec<Op>, rewritten: Vec<Op>) {
    assert_eq!(
        legacy.len(),
        rewritten.len(),
        "{name}: stream lengths differ"
    );
    for (i, (a, b)) in legacy.iter().zip(rewritten.iter()).enumerate() {
        assert_eq!(a, b, "{name}: first divergence at op {i}");
    }
}

const SEEDS: [u64; 4] = [1, 7, 0xDEAD_BEEF, u64::MAX / 3];

const SYNCS: [SyncMode; 5] = [
    SyncMode::Fsync,
    SyncMode::Fdatasync,
    SyncMode::Fbarrier,
    SyncMode::Fdatabarrier,
    SyncMode::None,
];

#[test]
fn randwrite_streams_are_byte_identical() {
    let f = FileRef::Global(0);
    for seed in SEEDS {
        for mode in [
            WriteMode::Buffered,
            WriteMode::SyncEach(SyncMode::Fdatasync),
            WriteMode::SyncEach(SyncMode::Fdatabarrier),
            WriteMode::SyncEach(SyncMode::None),
        ] {
            // Finite run, drained fully.
            assert_identical(
                "randwrite/finite",
                trace(legacy::RandWrite::new(f, 64, mode, 500), seed, usize::MAX),
                trace(RandWrite::new(f, 64, mode, 500), seed, usize::MAX),
            );
            // Effectively-unbounded run (the figures' configuration),
            // compared over a long prefix.
            let huge = u64::MAX / 2;
            assert_identical(
                "randwrite/unbounded",
                trace(legacy::RandWrite::new(f, 8192, mode, huge), seed, 4_000),
                trace(RandWrite::new(f, 8192, mode, huge), seed, 4_000),
            );
        }
    }
}

#[test]
fn dwsl_streams_are_byte_identical() {
    for seed in SEEDS {
        for sync in SYNCS {
            assert_identical(
                "dwsl",
                trace(legacy::Dwsl::new(sync, 300), seed, usize::MAX),
                trace(Dwsl::new(sync, 300), seed, usize::MAX),
            );
        }
    }
}

#[test]
fn sqlite_streams_are_byte_identical() {
    let (db, journal) = (FileRef::Global(0), FileRef::Global(1));
    let columns = [
        (SyncMode::Fdatasync, SyncMode::Fdatasync),
        (SyncMode::Fdatabarrier, SyncMode::Fdatasync),
        (SyncMode::Fdatabarrier, SyncMode::Fdatabarrier),
    ];
    for seed in SEEDS {
        for mode in [SqliteJournalMode::Persist, SqliteJournalMode::Wal] {
            for (order, commit) in columns {
                assert_identical(
                    "sqlite",
                    trace(
                        legacy::Sqlite::new(mode, order, commit, db, journal, 200, 2048),
                        seed,
                        usize::MAX,
                    ),
                    trace(
                        Sqlite::new(mode, order, commit, db, journal, 200, 2048),
                        seed,
                        usize::MAX,
                    ),
                );
            }
        }
    }
}

#[test]
fn varmail_streams_are_byte_identical() {
    for seed in SEEDS {
        for sync in SYNCS {
            for pool in [1usize, 2, 4, 8] {
                assert_identical(
                    "varmail",
                    trace(legacy::Varmail::new(sync, 200, pool), seed, usize::MAX),
                    trace(Varmail::new(sync, 200, pool), seed, usize::MAX),
                );
            }
        }
    }
}

#[test]
fn oltp_streams_are_byte_identical() {
    let (t, r, b) = (FileRef::Global(0), FileRef::Global(1), FileRef::Global(2));
    for seed in SEEDS {
        for sync in SYNCS {
            assert_identical(
                "oltp",
                trace(
                    legacy::OltpInsert::new(sync, t, r, b, 300),
                    seed,
                    usize::MAX,
                ),
                trace(OltpInsert::new(sync, t, r, b, 300), seed, usize::MAX),
            );
            // Small circular log: the wrap path.
            let mut lw = legacy::OltpInsert::new(sync, t, r, b, 300);
            lw.redo_blocks = 4;
            assert_identical(
                "oltp/wrap",
                trace(lw, seed, usize::MAX),
                trace(
                    OltpInsert::new(sync, t, r, b, 300).with_redo_blocks(4),
                    seed,
                    usize::MAX,
                ),
            );
        }
    }
}
