//! Fork-coverage analyzer.
//!
//! `IoStack::fork()` (PR 8) deep-copies every layer; its bit-identity
//! and no-aliasing guarantees are proptested, but those tests only cover
//! the fields that *exist today*. The failure mode this pass closes: a
//! new field (say, an arena) is added to a forkable type and the
//! hand-written `fork`/`clone` silently drops or aliases it. The same
//! failure mode applies to the zero-clone crash-capture path (PR 10):
//! `capture` builds a snapshot field-by-field through borrowed accessors
//! and `delta_apply` rebuilds cursor state from a per-epoch delta — a
//! field added to either type but not to these bodies silently vanishes
//! from every crash image. For every non-test `fn fork`, `fn capture`,
//! `fn delta_apply` (and `fn clone` inside an `impl Clone for …`) in
//! `src/`, whose body builds the type with an explicit struct literal
//! (`Self { … }` / `TypeName { … }`), every declared field of that
//! struct must be *mentioned* in the body; missing fields are findings.
//!
//! Bodies that delegate — `self.clone()`, a constructor call, returning
//! `None` — are skipped: they do not enumerate fields, so field
//! addition cannot silently miss there. `#[derive(Clone)]` emits no
//! source and is likewise out of scope (the compiler already covers
//! every field). Struct-update syntax (`..base`) is deliberately *not*
//! recognized as coverage: in a deep-copy path a `..` spread is exactly
//! the kind of silent aliasing this lint exists to catch.

use std::collections::BTreeSet;

use crate::files::{FileKind, SourceFile};
use crate::lexer::Tok;
use crate::report::Finding;
use crate::scan::StructItem;

/// Runs over all files of one crate at once (the struct a `fork` builds
/// may live in a sibling module file).
pub fn run_crate(files: &[&SourceFile]) -> Vec<Finding> {
    let structs: Vec<(&SourceFile, &StructItem)> = files
        .iter()
        .filter(|f| f.kind == FileKind::Src)
        .flat_map(|f| {
            f.scan
                .structs
                .iter()
                .filter(|s| !s.is_test)
                .map(move |s| (*f, s))
        })
        .collect();
    let mut out = Vec::new();
    for file in files.iter().filter(|f| f.kind == FileKind::Src) {
        for f in file.scan.fns.iter().filter(|f| !f.is_test) {
            let is_fork = matches!(f.name.as_str(), "fork" | "capture" | "delta_apply");
            let is_clone = f.name == "clone" && f.impl_trait.as_deref() == Some("Clone");
            if !is_fork && !is_clone {
                continue;
            }
            let Some(ty) = f.impl_type.as_deref() else {
                continue;
            };
            let Some((_, st)) = structs.iter().find(|(_, s)| s.name == ty) else {
                continue; // enum, alias, or out-of-crate type
            };
            if !st.has_named_fields || st.fields.is_empty() {
                continue;
            }
            let toks = &file.scan.toks;
            let (b0, b1) = f.body;
            // Delegation forms are total by construction.
            let delegates = (b0..=b1).any(|i| {
                toks[i].tok.is_ident("self")
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('.'))
                    && toks.get(i + 2).is_some_and(|t| t.tok.is_ident("clone"))
                    && toks.get(i + 3).is_some_and(|t| t.tok.is_punct('('))
            });
            if delegates {
                continue;
            }
            // Only field-enumerating bodies are checked: find a struct
            // literal `Ty {` or `Self {`.
            let literal = (b0..=b1).any(|i| {
                matches!(&toks[i].tok, Tok::Ident(w) if w == ty || w == "Self")
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('{'))
            });
            if !literal {
                continue;
            }
            let mentioned: BTreeSet<&str> = (b0..=b1).filter_map(|i| toks[i].tok.ident()).collect();
            for field in &st.fields {
                if !mentioned.contains(field.name.as_str()) {
                    out.push(Finding {
                        analyzer: "fork-coverage",
                        path: file.rel.clone(),
                        line: f.line,
                        symbol: format!("{}::{}", file.crate_key.name(), f.qual),
                        snippet: format!("{ty}.{}", field.name),
                        message: format!(
                            "field `{}` of `{ty}` (declared {}:{}) is not mentioned in this {} path; a new field must be explicitly deep-copied or it aliases across forks",
                            field.name,
                            file.rel,
                            field.line,
                            f.name,
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::CrateKey;

    fn run_on(src: &str) -> Vec<Finding> {
        let f = SourceFile::new(CrateKey::Core, FileKind::Src, "crates/core/src/x.rs", src);
        run_crate(&[&f])
    }

    #[test]
    fn missing_field_is_flagged() {
        let src = r#"
            struct Stack { clock: u64, queue: Vec<u8>, arena: Vec<u64> }
            impl Stack {
                pub fn fork(&self) -> Stack {
                    Stack { clock: self.clock, queue: self.queue.clone() }
                }
            }
        "#;
        // (The incomplete literal would not compile in real code — the
        // analyzer sees mentions, not the literal's completeness, so a
        // field initialized outside the literal still counts. This probe
        // only checks the mention set.)
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].snippet, "Stack.arena");
    }

    #[test]
    fn capture_and_delta_apply_bodies_are_audited() {
        let src = r#"
            struct Point { records: u64, devices: Vec<u64>, epoch: u64 }
            impl Point {
                fn capture(&self) -> Point {
                    Point { records: self.records, devices: self.devices.clone() }
                }
            }
            struct Cursor { base: u64, committed: u64 }
            impl Cursor {
                fn delta_apply(&mut self, base: u64) {
                    *self = Cursor { base, committed: self.committed };
                }
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].snippet, "Point.epoch");
    }

    #[test]
    fn complete_clone_impl_passes() {
        let src = r#"
            struct T { a: u64, b: Vec<u8> }
            impl Clone for T {
                fn clone(&self) -> Self {
                    T { a: self.a, b: self.b.clone() }
                }
            }
        "#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn delegating_and_constructor_bodies_are_skipped() {
        let src = r#"
            #[derive(Clone)]
            struct W { a: u64, b: u64 }
            impl W {
                fn fork(&self) -> Option<Box<W>> { Some(Box::new(self.clone())) }
            }
            struct R { s: [u64; 4], cached: u64 }
            impl R {
                fn new(seed: u64) -> R { R { s: [seed; 4], cached: 0 } }
                fn next(&mut self) -> u64 { self.cached }
                fn fork(&mut self) -> R { R::new(self.next()) }
            }
        "#;
        assert!(run_on(src).is_empty(), "{:?}", run_on(src));
    }

    #[test]
    fn cross_file_struct_resolution() {
        let def = SourceFile::new(
            CrateKey::Core,
            FileKind::Src,
            "crates/core/src/def.rs",
            "pub struct S { x: u64, y: u64 }",
        );
        let imp = SourceFile::new(
            CrateKey::Core,
            FileKind::Src,
            "crates/core/src/imp.rs",
            "impl Clone for S { fn clone(&self) -> S { S { x: self.x, y: 0 } } }",
        );
        let f = run_crate(&[&def, &imp]);
        assert!(f.is_empty(), "{f:?}");
        let imp_bad = SourceFile::new(
            CrateKey::Core,
            FileKind::Src,
            "crates/core/src/imp.rs",
            "impl Clone for S { fn clone(&self) -> S { S { x: self.x } } }",
        );
        let f = run_crate(&[&def, &imp_bad]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].snippet, "S.y");
    }
}
