//! The `lint.toml` allowlist: the *only* way to suppress a finding.
//!
//! There are deliberately no inline `// bio-lint: allow` escapes — every
//! suppression lives in one checked-in, reviewed file, and every entry
//! must carry a non-empty `reason`. The file is parsed with a hand-rolled
//! reader covering the TOML subset the allowlist needs (no `toml` crate;
//! the workspace builds offline):
//!
//! ```toml
//! [[allow]]
//! analyzer = "determinism"          # required: which analyzer to quiet
//! path = "crates/fs/src/txn.rs"     # required: repo-relative file
//! symbol = "TxnTable::iter"         # optional: substring of the symbol
//! snippet = "m.iter()"              # optional: substring of the snippet
//! reason = "test-only reference backend; call sites fold order-insensitively"
//! ```
//!
//! Comments and blank lines are allowed; anything else (tables, arrays,
//! non-string values, unknown keys) is a hard config error — the binary
//! exits 2 so a malformed allowlist can never silently allow everything.

use crate::report::{Finding, ANALYZERS};

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub analyzer: String,
    pub path: String,
    pub symbol: Option<String>,
    pub snippet: Option<String>,
    pub reason: String,
    /// Line of the `[[allow]]` header (for error messages).
    pub line: u32,
}

impl AllowEntry {
    /// A finding matches when analyzer and path agree exactly and the
    /// optional `symbol`/`snippet` narrowers appear as substrings.
    pub fn matches(&self, f: &Finding) -> bool {
        self.analyzer == f.analyzer
            && self.path == f.path
            && self.symbol.as_deref().is_none_or(|s| f.symbol.contains(s))
            && self
                .snippet
                .as_deref()
                .is_none_or(|s| f.snippet.contains(s))
    }
}

/// Parses the allowlist. `Err` carries a `line N: …` message.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut open = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if open {
                validate(entries.last().expect("open entry"), entries.len())?;
            }
            entries.push(AllowEntry {
                analyzer: String::new(),
                path: String::new(),
                symbol: None,
                snippet: None,
                reason: String::new(),
                line: lineno,
            });
            open = true;
            continue;
        }
        let Some((key, value)) = parse_kv(line) else {
            return Err(format!(
                "lint.toml line {lineno}: expected `[[allow]]` or `key = \"value\"`, got `{line}`"
            ));
        };
        if !open {
            return Err(format!(
                "lint.toml line {lineno}: key `{key}` outside any [[allow]] entry"
            ));
        }
        let e = entries.last_mut().expect("open entry");
        match key {
            "analyzer" => e.analyzer = value,
            "path" => e.path = value,
            "symbol" => e.symbol = Some(value),
            "snippet" => e.snippet = Some(value),
            "reason" => e.reason = value,
            other => {
                return Err(format!("lint.toml line {lineno}: unknown key `{other}`"));
            }
        }
    }
    if open {
        validate(entries.last().expect("open entry"), entries.len())?;
    }
    Ok(entries)
}

/// Every entry needs analyzer (a known one), path, and a real reason.
fn validate(e: &AllowEntry, n: usize) -> Result<(), String> {
    if !ANALYZERS.contains(&e.analyzer.as_str()) {
        return Err(format!(
            "lint.toml entry #{n} (line {}): analyzer `{}` is not one of {:?}",
            e.line, e.analyzer, ANALYZERS
        ));
    }
    if e.path.is_empty() {
        return Err(format!(
            "lint.toml entry #{n} (line {}): missing `path`",
            e.line
        ));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "lint.toml entry #{n} (line {}): every suppression must carry a non-empty `reason`",
            e.line
        ));
    }
    Ok(())
}

/// Drops a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// `key = "value"` with basic backslash escapes in the value.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    let mut value = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => value.push('\n'),
                Some('t') => value.push('\t'),
                Some(other) => value.push(other),
                None => return None,
            }
        } else if c == '"' {
            return None; // unescaped quote mid-value → malformed
        } else {
            value.push(c);
        }
    }
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_entries() {
        let text = r#"
# suppressions
[[allow]]
analyzer = "determinism"   # hash iteration
path = "crates/fs/src/txn.rs"
symbol = "TxnTable::iter"
snippet = "m.iter()"
reason = "reference backend"
"#;
        let es = parse(text).expect("parses");
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].analyzer, "determinism");
        assert_eq!(es[0].symbol.as_deref(), Some("TxnTable::iter"));
    }

    #[test]
    fn reason_is_mandatory() {
        let text = "[[allow]]\nanalyzer = \"totality\"\npath = \"a.rs\"\n";
        let err = parse(text).expect_err("must fail");
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_and_analyzers_fail() {
        let t1 =
            "[[allow]]\nanalyzer = \"totality\"\npath = \"a.rs\"\nreason = \"r\"\nfoo = \"x\"\n";
        assert!(parse(t1).is_err());
        let t2 = "[[allow]]\nanalyzer = \"nope\"\npath = \"a.rs\"\nreason = \"r\"\n";
        assert!(parse(t2).is_err());
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let text =
            "[[allow]]\nanalyzer = \"layering\"\npath = \"a.rs\"\nreason = \"issue #42 tracks this\"\n";
        let es = parse(text).expect("parses");
        assert_eq!(es[0].reason, "issue #42 tracks this");
    }
}
