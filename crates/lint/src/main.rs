//! The `bio-lint` binary.
//!
//! ```text
//! bio-lint [--json] [--root <dir>]
//! ```
//!
//! Exit codes: 0 — clean (possibly with suppressions); 1 — at least one
//! unsuppressed finding; 2 — usage or configuration error (unreadable
//! workspace, malformed `lint.toml`, entry without a reason).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("bio-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("bio-lint [--json] [--root <dir>]");
                println!("Static analysis for the barrier-io workspace: determinism,");
                println!("totality, layer-DAG and fork-coverage invariants.");
                println!("Suppressions live in <root>/lint.toml (reason required).");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bio-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match bio_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("bio-lint: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    match bio_lint::run_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_table());
            }
            if report.open.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bio-lint: {e}");
            ExitCode::from(2)
        }
    }
}
