//! Totality analyzer.
//!
//! PRs 3–4 purged the event-path panics: a stale, duplicated or forged
//! completion must *drop with a typed error and a stat counter*, never
//! abort the simulation. This pass keeps that property machine-checked:
//! inside event-handler and completion functions — names `handle`,
//! `handle_*`, `submit`, `submit_*`, `complete*`, `on_*` — of the four
//! stack crates (`flash`, `block`, `fs`, `core`), it forbids:
//!
//! * `.unwrap()` / `.expect(…)` (`unwrap_or*` stays legal — it is total),
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//!   (`assert!`/`debug_assert!` stay legal: they express *checked*
//!   invariants and compile out of release in the debug_assert case),
//! * direct indexing (`xs[i]`, `f(x)[i]`) — a handler must use
//!   `get`/`get_mut` and drop on miss, because an out-of-range id is
//!   exactly what a forged completion looks like.

use crate::files::{FileKind, SourceFile};
use crate::lexer::Tok;
use crate::report::Finding;

/// Function names with event-handler/completion contracts.
pub fn handler_name(name: &str) -> bool {
    name == "handle"
        || name.starts_with("handle_")
        || name == "submit"
        || name.starts_with("submit_")
        || name.starts_with("complete")
        || name.starts_with("on_")
}

/// Keywords that legitimately precede `[` (slice patterns, array
/// expressions) — an `Ident` receiver is only an indexing site when it is
/// not one of these.
const NON_RECEIVER_KEYWORDS: [&str; 14] = [
    "let", "in", "if", "while", "match", "return", "else", "mut", "ref", "move", "as", "break",
    "dyn", "where",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if !file.crate_key.stack() || file.kind != FileKind::Src {
        return Vec::new();
    }
    let toks = &file.scan.toks;
    let mut out = Vec::new();
    for f in file.scan.fns.iter().filter(|f| !f.is_test) {
        if !handler_name(&f.name) || file.scan.in_test(f.body.0) {
            continue;
        }
        let (b0, b1) = f.body;
        let mut finding = |idx: usize, snippet: String, message: &str| {
            out.push(Finding {
                analyzer: "totality",
                path: file.rel.clone(),
                line: toks[idx].line,
                symbol: format!("{}::{}", file.crate_key.name(), f.qual),
                snippet,
                message: message.to_string(),
            });
        };
        for i in b0..=b1 {
            match &toks[i].tok {
                Tok::Punct('.') => {
                    if let Some(Tok::Ident(m)) = toks.get(i + 1).map(|t| &t.tok) {
                        if (m == "unwrap" || m == "expect")
                            && toks.get(i + 2).is_some_and(|t| t.tok.is_punct('('))
                        {
                            finding(
                                i + 1,
                                format!(".{m}(…)"),
                                "panics in an event handler; drop with a typed error and a stat counter instead",
                            );
                        }
                    }
                }
                Tok::Ident(m)
                    if PANIC_MACROS.contains(&m.as_str())
                        && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('!')) =>
                {
                    finding(
                        i,
                        format!("{m}!(…)"),
                        "aborts in an event handler; handlers must be total — return a typed error",
                    );
                }
                Tok::Punct('[') if i > b0 => {
                    let receiver = match &toks[i - 1].tok {
                        Tok::Ident(w) if !NON_RECEIVER_KEYWORDS.contains(&w.as_str()) => {
                            Some(format!("{w}[…]"))
                        }
                        Tok::Punct(')') => Some("(…)[…]".to_string()),
                        Tok::Punct(']') => Some("…][…]".to_string()),
                        _ => None,
                    };
                    if let Some(snippet) = receiver {
                        finding(
                            i,
                            snippet,
                            "direct indexing in an event handler; a forged id must read as absent — use get/get_mut and drop on miss",
                        );
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::CrateKey;

    fn run_on(src: &str) -> Vec<Finding> {
        run(&SourceFile::new(
            CrateKey::Block,
            FileKind::Src,
            "crates/block/src/x.rs",
            src,
        ))
    }

    #[test]
    fn unwrap_expect_and_panics_in_handlers() {
        let src = r#"
            struct L { v: Vec<u8> }
            impl L {
                fn on_done(&mut self, i: usize) {
                    let x = self.v.get(i).unwrap();
                    let y = self.v.get(i).expect("present");
                    if *x != *y { panic!("mismatch"); }
                    match i { 0 => {}, _ => unreachable!() }
                }
            }
        "#;
        let f = run_on(src);
        let snippets: Vec<_> = f.iter().map(|x| x.snippet.as_str()).collect();
        assert_eq!(
            snippets,
            [".unwrap(…)", ".expect(…)", "panic!(…)", "unreachable!(…)"]
        );
        assert!(f.iter().all(|x| x.symbol == "block::L::on_done"));
    }

    #[test]
    fn indexing_flags_but_patterns_and_macros_do_not() {
        let src = r#"
            fn handle(v: &mut Vec<u64>, i: usize) -> u64 {
                let [a, b] = [1u64, 2];
                let w = vec![a, b];
                #[allow(unused)]
                let arr: [u64; 2] = [0; 2];
                v[i] + w.len() as u64
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].snippet, "v[…]");
    }

    #[test]
    fn unwrap_or_is_total_and_allowed() {
        let src = r#"
            fn on_step(x: Option<u64>) -> u64 {
                x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 1)
            }
        "#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn non_handler_fns_and_asserts_are_exempt() {
        let src = r#"
            fn rebuild(v: &Vec<u64>) -> u64 { v[0] }
            fn on_tick(v: &Vec<u64>) { debug_assert!(!v.is_empty()); assert!(v.len() < 10); }
        "#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn only_stack_crates_in_scope() {
        let src = "fn on_x(v: &Vec<u8>) -> u8 { v[0] }";
        let sim = run(&SourceFile::new(
            CrateKey::Sim,
            FileKind::Src,
            "crates/sim/src/x.rs",
            src,
        ));
        assert!(sim.is_empty());
    }
}
