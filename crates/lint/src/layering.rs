//! Layer-DAG analyzer.
//!
//! The workspace is a strict 7-crate DAG (`bio-sim` → `bio-flash` →
//! `bio-block` → `bio-fs` → `barrier-io` → `bio-workloads` /
//! `bio-bench`), with the root `barrier-io-stack` package as the facade.
//! The DAG is *hardcoded* in [`CrateKey::allowed_deps`] — this analyzer
//! is the specification, and both the source (`use` declarations and
//! inline `bio_x::…` paths, including in tests/benches/examples, which
//! must not reach around the facade either) and the `Cargo.toml`
//! dependency sections are checked against it. Adding a dependency edge
//! therefore requires touching the lint crate, which is the point.

use crate::files::{CrateKey, SourceFile};
use crate::report::Finding;

/// Scans one source file for cross-crate references.
pub fn run(file: &SourceFile) -> Vec<Finding> {
    let toks = &file.scan.toks;
    let mut out: Vec<Finding> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let Some(id) = t.tok.ident() else { continue };
        let Some(target) = CrateKey::from_lib_ident(id) else {
            continue;
        };
        // Only path-position references count (`bio_fs::…` or a bare
        // `use bio_fs;`) — a stray identifier in a doc string is already
        // excluded by the lexer, but e.g. a local named `bio_fs` without
        // `::` would be noise.
        let pathish = toks.get(i + 1).is_some_and(|n| n.tok.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.tok.is_punct(':'));
        let bare_use = i > 0
            && toks[i - 1].tok.is_ident("use")
            && toks.get(i + 1).is_some_and(|n| n.tok.is_punct(';'));
        if !pathish && !bare_use {
            continue;
        }
        if target == file.crate_key || file.crate_key.allowed_deps().contains(&target) {
            continue;
        }
        // One finding per (target, line) — a use-decl plus path mentions
        // on the same line collapse.
        if out
            .iter()
            .any(|f| f.line == t.line && f.snippet.starts_with(id))
        {
            continue;
        }
        out.push(Finding {
            analyzer: "layering",
            path: file.rel.clone(),
            line: t.line,
            symbol: file.symbol_at(i),
            snippet: format!("{id}::…"),
            message: format!(
                "`{}` must not depend on `{}` (allowed: {}); go through the facade",
                file.crate_key.name(),
                target.name(),
                allowed_names(file.crate_key),
            ),
        });
    }
    out
}

/// Checks the dependency sections of one `Cargo.toml` against the DAG.
/// `rel` is the repo-relative path, `owner` the crate the manifest
/// belongs to.
pub fn run_manifest(owner: CrateKey, rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_dep_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            // `[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`
            // only — `[workspace.dependencies]` at the root is the shared
            // version table, not an edge.
            in_dep_section = matches!(
                line,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            continue;
        }
        if !in_dep_section || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(name) = line.split(['=', ' ', '.']).next() else {
            continue;
        };
        let Some(target) = CrateKey::from_package(name.trim()) else {
            continue;
        };
        if target == owner || owner.allowed_deps().contains(&target) {
            continue;
        }
        out.push(Finding {
            analyzer: "layering",
            path: rel.to_string(),
            line: (idx + 1) as u32,
            symbol: format!("{}::Cargo.toml", owner.name()),
            snippet: format!("{} = …", target.package()),
            message: format!(
                "`{}` must not depend on `{}` (allowed: {})",
                owner.name(),
                target.name(),
                allowed_names(owner),
            ),
        });
    }
    out
}

fn allowed_names(k: CrateKey) -> String {
    let deps = k.allowed_deps();
    if deps.is_empty() {
        return "nothing".to_string();
    }
    deps.iter().map(|d| d.name()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::FileKind;

    #[test]
    fn around_the_facade_is_flagged() {
        let src = "use bio_fs::journal::Journal;\nfn f() { let _ = bio_flash::Lba(0); }";
        let f = run(&SourceFile::new(
            CrateKey::Workloads,
            FileKind::Src,
            "crates/workloads/src/x.rs",
            src,
        ));
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("allowed: sim, core"));
    }

    #[test]
    fn tests_obey_the_dag_too() {
        let src = "use bio_fs::fs::Filesystem;";
        let f = run(&SourceFile::new(
            CrateKey::Bench,
            FileKind::Test,
            "crates/bench/tests/x.rs",
            src,
        ));
        assert_eq!(f.len(), 1, "bench has no fs edge: {f:?}");
    }

    #[test]
    fn allowed_edges_and_self_references_pass() {
        let src = "use bio_sim::SimTime;\nuse bio_flash::Lba;\nuse bio_block::BlockLayer;";
        let f = run(&SourceFile::new(
            CrateKey::Fs,
            FileKind::Src,
            "crates/fs/src/x.rs",
            src,
        ));
        assert!(f.is_empty(), "{f:?}");
        let facade = run(&SourceFile::new(
            CrateKey::Facade,
            FileKind::Test,
            "tests/x.rs",
            "use bio_bench::crash::enumerate;",
        ));
        assert!(facade.is_empty(), "{facade:?}");
    }

    #[test]
    fn manifests_are_checked() {
        let toml = "[package]\nname = \"bio-workloads\"\n[dependencies]\nbio-sim = { workspace = true }\nbio-fs = { workspace = true }\n";
        let f = run_manifest(CrateKey::Workloads, "crates/workloads/Cargo.toml", toml);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].snippet.contains("bio-fs"));
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn workspace_dependency_table_is_not_an_edge() {
        let toml = "[workspace.dependencies]\nbio-fs = { path = \"crates/fs\" }\n";
        let f = run_manifest(CrateKey::Facade, "Cargo.toml", toml);
        assert!(f.is_empty(), "{f:?}");
    }
}
