//! The workspace model the analyzers run over: which crate a file
//! belongs to, what kind of target it builds into, and the scanned
//! token/item structure.

use crate::scan::{scan, FileScan};

/// The workspace crates, in DAG order. `Facade` is the root
/// `barrier-io-stack` package (src/tests/examples at the repo root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKey {
    Sim,
    Flash,
    Block,
    Fs,
    Core,
    Workloads,
    Bench,
    Facade,
    Lint,
}

impl CrateKey {
    /// Short display name used in findings and docs.
    pub fn name(self) -> &'static str {
        match self {
            CrateKey::Sim => "sim",
            CrateKey::Flash => "flash",
            CrateKey::Block => "block",
            CrateKey::Fs => "fs",
            CrateKey::Core => "core",
            CrateKey::Workloads => "workloads",
            CrateKey::Bench => "bench",
            CrateKey::Facade => "facade",
            CrateKey::Lint => "lint",
        }
    }

    /// The `use`-path identifier of the crate's library target.
    pub fn lib_ident(self) -> &'static str {
        match self {
            CrateKey::Sim => "bio_sim",
            CrateKey::Flash => "bio_flash",
            CrateKey::Block => "bio_block",
            CrateKey::Fs => "bio_fs",
            CrateKey::Core => "barrier_io",
            CrateKey::Workloads => "bio_workloads",
            CrateKey::Bench => "bio_bench",
            CrateKey::Facade => "barrier_io_stack",
            CrateKey::Lint => "bio_lint",
        }
    }

    /// The Cargo package name (as it appears in `Cargo.toml` deps).
    pub fn package(self) -> &'static str {
        match self {
            CrateKey::Sim => "bio-sim",
            CrateKey::Flash => "bio-flash",
            CrateKey::Block => "bio-block",
            CrateKey::Fs => "bio-fs",
            CrateKey::Core => "barrier-io",
            CrateKey::Workloads => "bio-workloads",
            CrateKey::Bench => "bio-bench",
            CrateKey::Facade => "barrier-io-stack",
            CrateKey::Lint => "bio-lint",
        }
    }

    /// Resolves a library identifier back to its crate.
    pub fn from_lib_ident(id: &str) -> Option<CrateKey> {
        ALL.iter().copied().find(|k| k.lib_ident() == id)
    }

    /// Resolves a package name back to its crate.
    pub fn from_package(name: &str) -> Option<CrateKey> {
        ALL.iter().copied().find(|k| k.package() == name)
    }

    /// The crates this crate may depend on — the layer DAG, hardcoded on
    /// purpose: the analyzer is the specification, `Cargo.toml` and `use`
    /// declarations are both checked against it. `bio-bench` deliberately
    /// has no `bio-fs` edge (the harness goes through the `barrier-io`
    /// facade), and `bio-workloads` sees only `bio-sim` + the facade.
    pub fn allowed_deps(self) -> &'static [CrateKey] {
        use CrateKey::*;
        match self {
            Sim => &[],
            Flash => &[Sim],
            Block => &[Sim, Flash],
            Fs => &[Sim, Flash, Block],
            Core => &[Sim, Flash, Block, Fs],
            Workloads => &[Sim, Core],
            Bench => &[Sim, Flash, Block, Core, Workloads],
            Facade => &[Sim, Flash, Block, Fs, Core, Workloads, Bench],
            Lint => &[],
        }
    }

    /// Crates whose non-test `src/` must stay bit-reproducible (scope of
    /// the determinism analyzer).
    pub fn deterministic(self) -> bool {
        use CrateKey::*;
        matches!(self, Sim | Flash | Block | Fs | Core | Workloads)
    }

    /// The four stack crates whose event-handler functions must be total
    /// (scope of the totality analyzer).
    pub fn stack(self) -> bool {
        use CrateKey::*;
        matches!(self, Flash | Block | Fs | Core)
    }
}

pub const ALL: [CrateKey; 9] = [
    CrateKey::Sim,
    CrateKey::Flash,
    CrateKey::Block,
    CrateKey::Fs,
    CrateKey::Core,
    CrateKey::Workloads,
    CrateKey::Bench,
    CrateKey::Facade,
    CrateKey::Lint,
];

/// Which compilation target a file belongs to. Determinism/totality/
/// fork-coverage apply to `Src` only; layering applies everywhere
/// (test/bench code must not reach around the facade either).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    Src,
    Test,
    Bench,
    Example,
}

/// One scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    pub crate_key: CrateKey,
    pub kind: FileKind,
    /// Repo-relative path, forward slashes.
    pub rel: String,
    pub scan: FileScan,
}

impl SourceFile {
    pub fn new(
        crate_key: CrateKey,
        kind: FileKind,
        rel: impl Into<String>,
        src: &str,
    ) -> SourceFile {
        SourceFile {
            crate_key,
            kind,
            rel: rel.into(),
            scan: scan(src),
        }
    }

    /// `crate::module::fn` attribution for a token index; falls back to
    /// the crate name when the token is outside any function body.
    pub fn symbol_at(&self, idx: usize) -> String {
        match self.scan.fn_at(idx) {
            Some(f) => format!("{}::{}", self.crate_key.name(), f.qual),
            None => self.crate_key.name().to_string(),
        }
    }
}
