//! `bio-lint` — workspace static analysis for the barrier-enabled IO
//! stack.
//!
//! The reproduction's correctness argument rests on three source-level
//! invariants that, before this crate, lived only in tests and reviewer
//! memory: **bit-exact determinism** (golden `figures` diffs,
//! serial/parallel grid identity, fork bit-identity), **total event
//! handlers** (the PR 3–4 panic-path purge: bad completions drop with
//! typed errors, never abort), and the **strict 7-crate layer DAG**.
//! This crate machine-checks all three — plus **fork coverage**, so a
//! newly added field cannot silently alias across `fork()` — on every
//! build, with findings suppressible only through the checked-in
//! `lint.toml` allowlist (mandatory reason strings).
//!
//! See `docs/INVARIANTS.md` for the invariant catalogue and rationale;
//! run `cargo run -p bio-lint` (or `-- --json`) from anywhere in the
//! workspace.
//!
//! Internals: a dependency-free lexer ([`lexer`]) and item scanner
//! ([`scan`]) — no `syn`, the workspace builds hermetically offline —
//! and four analyzers on top ([`determinism`], [`totality`],
//! [`layering`], [`forkcov`]).

pub mod allow;
pub mod determinism;
pub mod files;
pub mod forkcov;
pub mod layering;
pub mod lexer;
pub mod report;
pub mod scan;
pub mod totality;
pub mod workspace;

pub use files::{CrateKey, FileKind, SourceFile};
pub use report::{Finding, Report};
pub use workspace::{find_root, run_str, run_workspace};
