//! Determinism analyzer.
//!
//! The whole evaluation rests on bit-exact reproducibility: golden
//! `figures` diffs, serial-vs-parallel grid identity, fork bit-identity.
//! Anything that injects ambient nondeterminism into the six simulation
//! crates breaks those guarantees silently. This pass forbids, in
//! non-test `src/` code of `sim`/`flash`/`block`/`fs`/`core`/`workloads`:
//!
//! * iterating a `HashMap`/`HashSet` (`iter`, `iter_mut`, `into_iter`,
//!   `keys`, `values`, `values_mut`, `drain`, `into_keys`, `into_values`,
//!   and `for … in &map`) — `RandomState` hashing makes the order differ
//!   per process; keyed lookups (`get`, `contains`, `insert`, `remove`)
//!   stay legal. Naming a hash-order iterator type
//!   (`hash_map::Iter`) is flagged for the same reason.
//! * wall-clock reads: `Instant::now`, `SystemTime::now`.
//! * `std::thread` — all parallelism goes through `ExperimentGrid` in
//!   `bio-bench` (outside this analyzer's scope), which proves
//!   serial/parallel byte-identity.
//! * OS-entropy randomness (`OsRng`, `thread_rng`, `from_entropy`,
//!   `getrandom`) — all randomness flows from the seeded `SimRng`.
//!
//! Hash-typed *receivers* are found per file: struct fields and enum
//! variant payloads typed `HashMap`/`HashSet`, plus `let` bindings whose
//! declaration mentions either type, plus single-binding patterns of
//! map-payload enum variants (`TxnTable::Map(m) => m.iter()`).

use std::collections::BTreeSet;

use crate::files::{FileKind, SourceFile};
use crate::lexer::Tok;
use crate::report::Finding;

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
    "into_values",
];

const HASH_ITER_TYPES: [&str; 8] = [
    "Iter",
    "IterMut",
    "IntoIter",
    "Keys",
    "Values",
    "ValuesMut",
    "Drain",
    "IntoKeys",
];

const ENTROPY_IDENTS: [&str; 4] = ["OsRng", "thread_rng", "from_entropy", "getrandom"];

fn is_hashy(type_text: &str) -> bool {
    type_text.contains("HashMap") || type_text.contains("HashSet")
}

pub fn run(file: &SourceFile) -> Vec<Finding> {
    if !file.crate_key.deterministic() || file.kind != FileKind::Src {
        return Vec::new();
    }
    let mut out = Vec::new();
    let toks = &file.scan.toks;

    // Hash-typed names declared in this file. Field names are collected
    // file-globally so nested receivers resolve (`self.trans.committed`
    // flags when `TransState.committed` is hash-typed even though the
    // enclosing impl is `Device`); the false-positive direction — two
    // structs sharing a field name with different types — is handled
    // below by letting the enclosing impl's own non-hash field win for
    // `self.x` receivers.
    let mut hash_fields: BTreeSet<&str> = BTreeSet::new();
    for s in file.scan.structs.iter().filter(|s| !s.is_test) {
        for f in s.fields.iter().filter(|f| is_hashy(&f.ty)) {
            hash_fields.insert(&f.name);
        }
    }
    // struct name -> names of its *non*-hash fields (the shadow set).
    let own_plain_field = |ty: Option<&str>, name: &str| -> bool {
        let Some(ty) = ty else { return false };
        file.scan
            .structs
            .iter()
            .find(|s| s.name == ty)
            .is_some_and(|s| s.fields.iter().any(|f| f.name == name && !is_hashy(&f.ty)))
    };
    let mut hash_variants: BTreeSet<&str> = BTreeSet::new();
    for e in file.scan.enums.iter().filter(|e| !e.is_test) {
        for v in e.variants.iter().filter(|v| is_hashy(&v.payload)) {
            hash_variants.insert(&v.name);
        }
    }

    let mut finding = |idx: usize, snippet: String, message: String| {
        out.push(Finding {
            analyzer: "determinism",
            path: file.rel.clone(),
            line: toks[idx].line,
            symbol: file.symbol_at(idx),
            snippet,
            message,
        });
    };

    // ---- whole-file token scans (tests masked) -----------------------
    for i in 0..toks.len() {
        if file.scan.in_test(i) {
            continue;
        }
        let id = match toks[i].tok.ident() {
            Some(id) => id,
            None => continue,
        };
        let path_next = |j: usize| -> Option<&str> {
            // `X :: Y` — returns Y when i is X.
            if toks.get(j)?.tok.is_punct(':') && toks.get(j + 1)?.tok.is_punct(':') {
                toks.get(j + 2)?.tok.ident()
            } else {
                None
            }
        };
        match id {
            "Instant" | "SystemTime" if path_next(i + 1) == Some("now") => {
                finding(
                    i,
                    format!("{id}::now()"),
                    "wall-clock time in a deterministic crate; use SimTime from the event loop"
                        .into(),
                );
            }
            "std" if path_next(i + 1) == Some("thread") => {
                finding(
                    i,
                    "std::thread".into(),
                    "host threads in a deterministic crate; parallelism goes through bio-bench's ExperimentGrid".into(),
                );
            }
            "hash_map" | "hash_set" => {
                if let Some(t) = path_next(i + 1) {
                    if HASH_ITER_TYPES.contains(&t) {
                        finding(
                            i,
                            format!("{id}::{t}"),
                            "names a hash-order iterator type; iteration order differs per process"
                                .into(),
                        );
                    }
                }
            }
            _ if ENTROPY_IDENTS.contains(&id) => {
                finding(
                    i,
                    id.to_string(),
                    "OS-entropy randomness; all randomness must flow from the seeded SimRng".into(),
                );
            }
            _ => {}
        }
    }

    // ---- per-function receiver scans ---------------------------------
    for f in file.scan.fns.iter().filter(|f| !f.is_test) {
        let (b0, b1) = f.body;
        if file.scan.in_test(b0) {
            continue;
        }
        // `let` bindings whose declaration mentions a hash type.
        let mut locals: BTreeSet<String> = BTreeSet::new();
        let mut i = b0;
        while i <= b1 {
            if toks[i].tok.is_ident("let") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.tok.is_ident("mut")) {
                    j += 1;
                }
                if let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) {
                    // Scan the whole statement for a hash-type mention.
                    let mut k = j;
                    let mut depth = 0i32;
                    let mut hashy = false;
                    while k <= b1 {
                        match &toks[k].tok {
                            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                            Tok::Punct(';') if depth <= 0 => break,
                            Tok::Ident(w) if w == "HashMap" || w == "HashSet" => hashy = true,
                            _ => {}
                        }
                        k += 1;
                    }
                    if hashy {
                        locals.insert(name.clone());
                    }
                }
            } else if let Tok::Ident(v) = &toks[i].tok {
                // Variant pattern `Map(m)` of a hash-payload variant.
                if hash_variants.contains(v.as_str())
                    && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
                    && toks.get(i + 3).is_some_and(|t| t.tok.is_punct(')'))
                {
                    if let Some(Tok::Ident(bound)) = toks.get(i + 2).map(|t| &t.tok) {
                        locals.insert(bound.clone());
                    }
                }
            }
            i += 1;
        }

        let known = |name: &str| hash_fields.contains(name) || locals.contains(name);
        for i in b0..=b1 {
            match &toks[i].tok {
                // `x.iter()` where x is hash-typed.
                Tok::Ident(x) if known(x) => {
                    // `self.x` resolves to the enclosing impl's struct;
                    // its own non-hash field of the same name wins over a
                    // hash-typed homonym elsewhere in the file.
                    let self_receiver = i >= b0 + 2
                        && toks[i - 1].tok.is_punct('.')
                        && toks[i - 2].tok.is_ident("self");
                    if self_receiver && own_plain_field(f.impl_type.as_deref(), x) {
                        continue;
                    }
                    if toks.get(i + 1).is_some_and(|t| t.tok.is_punct('.')) {
                        if let Some(Tok::Ident(m)) = toks.get(i + 2).map(|t| &t.tok) {
                            if ITER_METHODS.contains(&m.as_str())
                                && toks.get(i + 3).is_some_and(|t| t.tok.is_punct('('))
                            {
                                finding(
                                    i,
                                    format!("{x}.{m}()"),
                                    "iterates a HashMap/HashSet; order is per-process random — use BTreeMap/BTreeSet or sort first".into(),
                                );
                            }
                        }
                    }
                }
                // `for … in &map {`.
                Tok::Ident(kw) if kw == "for" => {
                    let mut j = i + 1;
                    let mut guard = 0;
                    while j <= b1 && guard < 64 {
                        if toks[j].tok.is_ident("in") {
                            let mut k = j + 1;
                            while toks
                                .get(k)
                                .is_some_and(|t| t.tok.is_punct('&') || t.tok.is_ident("mut"))
                            {
                                k += 1;
                            }
                            // `for x in &map {` and `for x in &self.map {`.
                            let mut self_receiver = false;
                            if toks.get(k).is_some_and(|t| t.tok.is_ident("self"))
                                && toks.get(k + 1).is_some_and(|t| t.tok.is_punct('.'))
                            {
                                self_receiver = true;
                                k += 2;
                            }
                            if let Some(Tok::Ident(x)) = toks.get(k).map(|t| &t.tok) {
                                if known(x)
                                    && toks.get(k + 1).is_some_and(|t| t.tok.is_punct('{'))
                                    && !(self_receiver
                                        && own_plain_field(f.impl_type.as_deref(), x))
                                {
                                    finding(
                                        k,
                                        format!("for … in &{x}"),
                                        "iterates a HashMap/HashSet; order is per-process random — use BTreeMap/BTreeSet or sort first".into(),
                                    );
                                }
                            }
                            break;
                        }
                        if toks[j].tok.is_punct('{') {
                            break;
                        }
                        j += 1;
                        guard += 1;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::files::CrateKey;

    fn run_on(src: &str) -> Vec<Finding> {
        run(&SourceFile::new(
            CrateKey::Fs,
            FileKind::Src,
            "crates/fs/src/x.rs",
            src,
        ))
    }

    #[test]
    fn field_iteration_is_flagged_lookups_are_not() {
        let src = r#"
            use std::collections::HashMap;
            struct T { map: HashMap<u64, u32>, n: usize }
            impl T {
                fn bad(&self) -> usize { self.map.iter().count() }
                fn good(&self) -> Option<&u32> { self.map.get(&1) }
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].snippet, "map.iter()");
        assert_eq!(f[0].symbol, "fs::T::bad");
    }

    #[test]
    fn local_and_for_loop_iteration() {
        let src = r#"
            use std::collections::HashSet;
            fn f() {
                let mut s: HashSet<u64> = HashSet::new();
                s.insert(1);
                for v in &s { drop(v); }
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].snippet.contains("for"));
    }

    #[test]
    fn for_loop_over_self_field() {
        let src = r#"
            use std::collections::HashSet;
            struct T { hot: HashSet<u64>, cold: Vec<u64> }
            impl T {
                fn bad(&self) -> u64 { let mut n = 0; for h in &self.hot { n += *h; } n }
                fn fine(&self) -> u64 { let mut n = 0; for c in &self.cold { n += *c; } n }
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].snippet, "for … in &hot");
        assert_eq!(f[0].symbol, "fs::T::bad");
    }

    #[test]
    fn variant_binding_iteration() {
        let src = r#"
            use std::collections::HashMap;
            enum Table { Dense(Vec<u8>), Map(HashMap<u64, u32>) }
            impl Table {
                fn len(&self) -> usize {
                    match self { Table::Dense(v) => v.len(), Table::Map(m) => m.len() }
                }
                fn bad(&self) -> usize {
                    match self { Table::Dense(v) => v.len(), Table::Map(m) => m.keys().count() }
                }
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].snippet, "m.keys()");
    }

    #[test]
    fn clock_thread_and_entropy() {
        let src = r#"
            fn f() -> u64 {
                let t = std::time::Instant::now();
                std::thread::yield_now();
                let r = thread_rng();
                drop((t, r)); 0
            }
        "#;
        let f = run_on(src);
        let snippets: Vec<_> = f.iter().map(|x| x.snippet.as_str()).collect();
        assert!(snippets.contains(&"Instant::now()"), "{snippets:?}");
        assert!(snippets.contains(&"std::thread"), "{snippets:?}");
        assert!(snippets.contains(&"thread_rng"), "{snippets:?}");
    }

    #[test]
    fn impls_own_vec_field_shadows_a_hash_homonym() {
        // `Metrics.ops` is a HashMap, `RunReport.ops` a Vec — iterating
        // the latter through `self.ops` must not flag, while iterating a
        // nested hash field (`self.inner.ops`) still does.
        let src = r#"
            use std::collections::HashMap;
            struct Metrics { ops: HashMap<u64, u32> }
            struct RunReport { ops: Vec<u32>, inner: Metrics }
            impl RunReport {
                fn fine(&self) -> usize { self.ops.iter().count() }
            }
            impl Metrics {
                fn bad(&self) -> usize { self.ops.iter().count() }
            }
        "#;
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].symbol, "fs::Metrics::bad");
    }

    #[test]
    fn test_code_is_exempt() {
        let src = r#"
            #[cfg(test)]
            mod tests {
                use std::collections::HashMap;
                fn helper(m: &HashMap<u64, u32>) { let m2: HashMap<u64,u32> = HashMap::new(); for x in &m2 { drop(x); } drop(m.iter()); }
            }
        "#;
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_and_kinds() {
        let src = "struct T { m: std::collections::HashMap<u8,u8> } impl T { fn f(&self) { self.m.iter(); } }";
        let bench = run(&SourceFile::new(
            CrateKey::Bench,
            FileKind::Src,
            "crates/bench/src/x.rs",
            src,
        ));
        assert!(bench.is_empty());
        let test_kind = run(&SourceFile::new(
            CrateKey::Fs,
            FileKind::Test,
            "crates/fs/tests/x.rs",
            src,
        ));
        assert!(test_kind.is_empty());
    }
}
