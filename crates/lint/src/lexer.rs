//! A minimal, dependency-free Rust lexer.
//!
//! Produces a flat token stream with line numbers — just enough structure
//! for the analyzers in this crate to reason about identifiers, method
//! calls, paths and brace nesting without `syn` (the workspace builds
//! hermetically offline, so no parser dependency is available). It gets
//! right exactly the constructs that make naive text scanning wrong:
//!
//! * cooked strings with escapes (`"a \" b"`),
//! * raw and byte strings (`r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`),
//! * char literals vs lifetimes (`'a'` vs `'a`),
//! * nested block comments (`/* /* */ */`) and line comments,
//! * raw identifiers (`r#match` lexes as the identifier `match`),
//! * numeric literals incl. floats, exponents and suffixes.
//!
//! Everything else is a single-character [`Tok::Punct`]; multi-character
//! operators (`::`, `->`, `..`) appear as consecutive punct tokens, which
//! the scanner and analyzers match as sequences.

/// One lexed token (comments and whitespace are dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword. Raw identifiers (`r#match`) are stored
    /// without the `r#` prefix so keyword matching stays uniform.
    Ident(String),
    /// `'a`, `'static` — distinguished from char literals by lookahead.
    Lifetime(String),
    /// Any string-ish literal; the contents are irrelevant to analysis.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (any base, optional float part / suffix).
    Num,
    /// A single punctuation character.
    Punct(char),
}

impl Tok {
    /// The identifier name, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when the token is exactly the punct `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }

    /// True when the token is exactly the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tok::Ident(i) if i == s)
    }
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Lexes a whole source file. Invalid input never panics: unrecognized
/// bytes come out as punct tokens and unterminated literals run to EOF.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, n: usize) -> Option<char> {
        self.chars.get(self.pos + n).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn emit(&mut self, tok: Tok, line: u32) {
        self.out.push(Token { tok, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.cooked_string(line),
                '\'' => self.quote(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if is_ident_start(c) => self.word(line),
                _ => {
                    self.bump();
                    self.emit(Tok::Punct(c), line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    /// Block comments nest in Rust; track the depth.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// `"…"` with backslash escapes; also used for `b"…"` bodies.
    fn cooked_string(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.emit(Tok::Str, line);
    }

    /// `r"…"` / `r#"…"#` with `hashes` guard hashes; the `r`/`br` prefix
    /// and the hashes are already consumed.
    fn raw_string(&mut self, hashes: usize, line: u32) {
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.emit(Tok::Str, line);
    }

    /// `'` starts a lifetime or a char literal; decide by lookahead: an
    /// ident run closed by another `'` is a char (`'a'`), otherwise a
    /// lifetime (`'a`, `'static`).
    fn quote(&mut self, line: u32) {
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal: '\n', '\'', '\u{1F4A9}'.
                self.bump(); // '
                self.bump(); // backslash
                if let Some(e) = self.bump() {
                    if e == 'u' && self.peek(0) == Some('{') {
                        while let Some(c) = self.bump() {
                            if c == '}' {
                                break;
                            }
                        }
                    }
                }
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.emit(Tok::Char, line);
            }
            Some(c) if is_ident_start(c) => {
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some('\'') {
                    // 'a' — a char literal.
                    for _ in 0..=j {
                        self.bump();
                    }
                    self.emit(Tok::Char, line);
                } else {
                    self.bump(); // '
                    let mut name = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        name.push(self.bump().unwrap_or_default());
                    }
                    self.emit(Tok::Lifetime(name), line);
                }
            }
            Some('\'') => {
                // `''` — malformed; consume both, keep going.
                self.bump();
                self.bump();
                self.emit(Tok::Char, line);
            }
            _ => {
                // '(' etc. — a one-char literal.
                self.bump();
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.emit(Tok::Char, line);
            }
        }
    }

    /// Numeric literal: base prefixes, `_` separators, a fractional part
    /// only when a digit follows the dot (so `0..n` stays a range), and
    /// `e`/`E` exponents with an optional sign.
    fn number(&mut self, line: u32) {
        let mut prev = '0';
        loop {
            match self.peek(0) {
                Some(c) if is_ident_continue(c) => {
                    prev = c;
                    self.bump();
                }
                Some('.') if self.peek(1).is_some_and(|d| d.is_ascii_digit()) => {
                    prev = '.';
                    self.bump();
                }
                Some(s @ ('+' | '-'))
                    if (prev == 'e' || prev == 'E')
                        && self.peek(1).is_some_and(|d| d.is_ascii_digit()) =>
                {
                    prev = s;
                    self.bump();
                }
                _ => break,
            }
        }
        self.emit(Tok::Num, line);
    }

    /// Identifier — or the prefix of a raw string / byte string / raw
    /// identifier, which all start with ident characters.
    fn word(&mut self, line: u32) {
        let mut w = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            w.push(self.bump().unwrap_or_default());
        }
        let stringish = w == "r" || w == "b" || w == "br";
        match self.peek(0) {
            Some('"') if stringish => {
                if w == "b" {
                    // Byte string: cooked rules (escapes).
                    self.cooked_string(line);
                } else {
                    self.raw_string(0, line);
                }
            }
            Some('\'') if w == "b" => {
                // Byte char literal b'x'.
                self.quote(line);
            }
            Some('#') if stringish && w != "b" => {
                let mut hashes = 1;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes, line);
                } else if w == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                    // Raw identifier r#match: emit the bare name.
                    self.bump(); // #
                    let mut name = String::new();
                    while self.peek(0).is_some_and(is_ident_continue) {
                        name.push(self.bump().unwrap_or_default());
                    }
                    self.emit(Tok::Ident(name), line);
                } else {
                    self.emit(Tok::Ident(w), line);
                }
            }
            _ => self.emit(Tok::Ident(w), line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // Nothing inside any string form may leak as an identifier.
        let src = r####"let a = "fn bad1 {"; let b = r#"fn bad2 {"#; let c = b"fn bad3"; let d = br##"fn bad4 "# "##; done();"####;
        let ids = idents(src);
        assert!(ids.iter().all(|i| !i.starts_with("bad")), "{ids:?}");
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let ids = idents("before /* x /* y */ z */ after");
        assert_eq!(ids, ["before", "after"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("'a' 'x: &'static str = 'b'");
        let kinds: Vec<_> = toks
            .iter()
            .map(|t| match &t.tok {
                Tok::Char => "char",
                Tok::Lifetime(_) => "life",
                Tok::Ident(_) => "id",
                _ => ".",
            })
            .collect();
        assert_eq!(kinds[0], "char");
        assert!(kinds.contains(&"life"));
        assert_eq!(*kinds.last().expect("nonempty"), "char");
    }

    #[test]
    fn raw_ident_lexes_bare() {
        let ids = idents("let r#match = r#fn; use r#type;");
        assert_eq!(ids, ["let", "match", "fn", "use", "type"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = lex("for i in 0..10 { f(1.5e-3, 0x1F, 1_000u64) }");
        let dots = toks.iter().filter(|t| t.tok.is_punct('.')).count();
        assert_eq!(dots, 2, "range dots survive: {toks:?}");
        let nums = toks.iter().filter(|t| t.tok == Tok::Num).count();
        assert_eq!(nums, 5);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "a\n/* c1\nc2 */\nb\n\"s1\ns2\"\nc";
        let toks = lex(src);
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.tok.is_ident(name))
                .map(|t| t.line)
                .unwrap_or(0)
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 4);
        assert_eq!(line_of("c"), 7);
    }
}
