//! Workspace walker and orchestration: finds every Rust source file in
//! the workspace, scans it, runs the four analyzers, and partitions the
//! findings against `lint.toml`.

use std::fs;
use std::path::{Path, PathBuf};

use crate::files::{CrateKey, FileKind, SourceFile};
use crate::report::{Finding, Report};
use crate::{allow, determinism, forkcov, layering, totality};

/// The member crates and their directories. `crates/compat/*` (vendored
/// criterion/proptest stand-ins) and `crates/lint` itself are scanned for
/// layering only via their manifests; their sources model foreign APIs
/// and tooling, not the simulation, so the simulation invariants do not
/// apply there.
const MEMBERS: [(&str, CrateKey); 8] = [
    ("crates/sim", CrateKey::Sim),
    ("crates/flash", CrateKey::Flash),
    ("crates/block", CrateKey::Block),
    ("crates/fs", CrateKey::Fs),
    ("crates/core", CrateKey::Core),
    ("crates/workloads", CrateKey::Workloads),
    ("crates/bench", CrateKey::Bench),
    ("", CrateKey::Facade),
];

/// Walks up from `start` to the workspace root (the directory holding
/// `lint.toml` or a `[workspace]` manifest).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("lint.toml").is_file() {
            return Some(dir);
        }
        if let Ok(manifest) = fs::read_to_string(dir.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Runs everything: scan, analyze, load `lint.toml`, partition.
pub fn run_workspace(root: &Path) -> Result<Report, String> {
    let allows = match fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => allow::parse(&text)?,
        Err(_) => Vec::new(), // no allowlist: nothing suppressed
    };
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;

    for (dir, key) in MEMBERS {
        let base = if dir.is_empty() {
            root.to_path_buf()
        } else {
            root.join(dir)
        };
        let mut crate_files: Vec<SourceFile> = Vec::new();
        for (sub, kind) in [
            ("src", FileKind::Src),
            ("tests", FileKind::Test),
            ("benches", FileKind::Bench),
            ("examples", FileKind::Example),
        ] {
            for path in rust_files(&base.join(sub)) {
                let text = fs::read_to_string(&path)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                let rel = rel_path(root, &path);
                crate_files.push(SourceFile::new(key, kind, rel, &text));
                files_scanned += 1;
            }
        }
        for f in &crate_files {
            findings.extend(determinism::run(f));
            findings.extend(totality::run(f));
            findings.extend(layering::run(f));
        }
        let refs: Vec<&SourceFile> = crate_files.iter().collect();
        findings.extend(forkcov::run_crate(&refs));

        let manifest = base.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            findings.extend(layering::run_manifest(
                key,
                &rel_path(root, &manifest),
                &text,
            ));
        }
    }
    // The lint crate's own manifest obeys the DAG too (no deps at all).
    if let Ok(text) = fs::read_to_string(root.join("crates/lint/Cargo.toml")) {
        findings.extend(layering::run_manifest(
            CrateKey::Lint,
            "crates/lint/Cargo.toml",
            &text,
        ));
    }

    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.analyzer).cmp(&(b.path.as_str(), b.line, b.analyzer))
    });
    Ok(Report::partition(findings, allows, files_scanned))
}

/// Runs all four analyzers over one in-memory file (fixture harness).
pub fn run_str(key: CrateKey, kind: FileKind, rel: &str, src: &str) -> Vec<Finding> {
    let f = SourceFile::new(key, kind, rel, src);
    let mut out = determinism::run(&f);
    out.extend(totality::run(&f));
    out.extend(layering::run(&f));
    out.extend(forkcov::run_crate(&[&f]));
    out.sort_by(|a, b| (a.line, a.analyzer).cmp(&(b.line, b.analyzer)));
    out
}

/// All `.rs` files under `dir`, recursively, in sorted order (findings
/// must render identically on every run and platform).
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
