//! Findings, suppression bookkeeping, and the two output renderers
//! (human table / machine JSON). JSON is hand-written — no serde; the
//! schema is small and stable (CI parses it in the `lint` job).

use crate::allow::AllowEntry;

/// One analyzer hit, attributed to `crate::module::fn` at `path:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// `determinism` | `totality` | `layering` | `fork-coverage`.
    pub analyzer: &'static str,
    /// Repo-relative path with forward slashes.
    pub path: String,
    pub line: u32,
    /// Qualified symbol (`fs::journal::Journal::on_jd_done`); module or
    /// crate granularity when the hit is outside any function.
    pub symbol: String,
    /// Short source-shaped excerpt (`committed.iter()`), used for
    /// allowlist matching.
    pub snippet: String,
    /// Human explanation of the violated invariant.
    pub message: String,
}

/// The outcome of a full run: partitioned findings plus allowlist audit.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by any `lint.toml` entry — these fail the run.
    pub open: Vec<Finding>,
    /// Suppressed findings, paired with the index of the matching entry.
    pub suppressed: Vec<(Finding, usize)>,
    /// The allowlist as loaded (for rendering / unused detection).
    pub allows: Vec<AllowEntry>,
    /// Indices of allowlist entries that matched nothing (stale —
    /// reported so dead suppressions get cleaned up).
    pub unused_allows: Vec<usize>,
    /// Files scanned (observability).
    pub files_scanned: usize,
}

pub const ANALYZERS: [&str; 4] = ["determinism", "totality", "layering", "fork-coverage"];

impl Report {
    /// Splits `findings` against the allowlist. First matching entry wins.
    pub fn partition(
        findings: Vec<Finding>,
        allows: Vec<AllowEntry>,
        files_scanned: usize,
    ) -> Report {
        let mut open = Vec::new();
        let mut suppressed = Vec::new();
        let mut used = vec![false; allows.len()];
        for f in findings {
            match allows.iter().position(|a| a.matches(&f)) {
                Some(i) => {
                    used[i] = true;
                    suppressed.push((f, i));
                }
                None => open.push(f),
            }
        }
        let unused_allows = (0..allows.len()).filter(|&i| !used[i]).collect();
        Report {
            open,
            suppressed,
            allows,
            unused_allows,
            files_scanned,
        }
    }

    /// Per-analyzer `(open, suppressed)` counts, in [`ANALYZERS`] order.
    pub fn counts(&self) -> Vec<(&'static str, usize, usize)> {
        ANALYZERS
            .iter()
            .map(|&a| {
                (
                    a,
                    self.open.iter().filter(|f| f.analyzer == a).count(),
                    self.suppressed
                        .iter()
                        .filter(|(f, _)| f.analyzer == a)
                        .count(),
                )
            })
            .collect()
    }

    /// Human-readable table; one line per open finding, then a summary.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.open.is_empty() {
            out.push_str("bio-lint: no unsuppressed findings\n");
        } else {
            out.push_str(&format!(
                "bio-lint: {} unsuppressed finding(s)\n\n",
                self.open.len()
            ));
            let wa = self
                .open
                .iter()
                .map(|f| f.analyzer.len())
                .max()
                .unwrap_or(8);
            let wp = self
                .open
                .iter()
                .map(|f| f.path.len() + 1 + digits(f.line))
                .max()
                .unwrap_or(8);
            for f in &self.open {
                out.push_str(&format!(
                    "  {:<wa$}  {:<wp$}  {}\n      {} — {}\n",
                    f.analyzer,
                    format!("{}:{}", f.path, f.line),
                    f.symbol,
                    f.snippet,
                    f.message,
                    wa = wa,
                    wp = wp,
                ));
            }
            out.push('\n');
        }
        out.push_str("  analyzer       open  suppressed\n");
        for (a, open, supp) in self.counts() {
            out.push_str(&format!("  {a:<13} {open:>5}  {supp:>10}\n"));
        }
        out.push_str(&format!(
            "  files scanned: {}; allowlist entries: {} ({} unused)\n",
            self.files_scanned,
            self.allows.len(),
            self.unused_allows.len()
        ));
        for &i in &self.unused_allows {
            let a = &self.allows[i];
            out.push_str(&format!(
                "  warning: unused lint.toml entry #{} ({} @ {})\n",
                i + 1,
                a.analyzer,
                a.path
            ));
        }
        out
    }

    /// Machine output: stable small schema, keys always present.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        push_findings(&mut s, self.open.iter());
        s.push_str("],\n  \"suppressed\": [");
        push_findings(&mut s, self.suppressed.iter().map(|(f, _)| f));
        s.push_str("],\n  \"summary\": {");
        let counts = self.counts();
        for (k, (a, open, supp)) in counts.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    \"{a}\": {{\"open\": {open}, \"suppressed\": {supp}}}"
            ));
        }
        s.push_str("\n  },\n");
        s.push_str(&format!(
            "  \"files_scanned\": {},\n  \"allow_entries\": {},\n  \"unused_allow_entries\": [",
            self.files_scanned,
            self.allows.len()
        ));
        for (k, &i) in self.unused_allows.iter().enumerate() {
            if k > 0 {
                s.push_str(", ");
            }
            s.push_str(&(i + 1).to_string());
        }
        s.push_str("]\n}\n");
        s
    }
}

fn push_findings<'a>(s: &mut String, it: impl Iterator<Item = &'a Finding>) {
    let mut first = true;
    for f in it {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n    {{\"analyzer\": \"{}\", \"path\": \"{}\", \"line\": {}, \"symbol\": \"{}\", \"snippet\": \"{}\", \"message\": \"{}\"}}",
            f.analyzer,
            esc(&f.path),
            f.line,
            esc(&f.symbol),
            esc(&f.snippet),
            esc(&f.message),
        ));
    }
    if !first {
        s.push_str("\n  ");
    }
}

fn digits(mut n: u32) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// Minimal JSON string escape (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            analyzer: "determinism",
            path: "crates/x/src/a.rs".into(),
            line: 3,
            symbol: "a::f".into(),
            snippet: "m.iter()".into(),
            message: "hash iteration".into(),
        }
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut f = finding();
        f.message = "quote \" and \\ back".into();
        let r = Report::partition(vec![f], vec![], 1);
        let j = r.render_json();
        assert!(j.contains("quote \\\" and \\\\ back"));
        assert!(j.contains("\"determinism\": {\"open\": 1, \"suppressed\": 0}"));
        assert!(j.contains("\"totality\": {\"open\": 0, \"suppressed\": 0}"));
    }

    #[test]
    fn unused_allows_are_reported() {
        let allow = AllowEntry {
            analyzer: "totality".into(),
            path: "nowhere.rs".into(),
            symbol: None,
            snippet: None,
            reason: "r".into(),
            line: 1,
        };
        let r = Report::partition(vec![finding()], vec![allow], 1);
        assert_eq!(r.open.len(), 1);
        assert_eq!(r.unused_allows, vec![0]);
    }
}
