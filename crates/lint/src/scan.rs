//! Item scanner: structure on top of the flat token stream.
//!
//! Walks a lexed file once and records the items the analyzers care
//! about — functions (with body token ranges and `module::Type::fn`
//! qualification), structs (field names + type text), enums (variant
//! names + payload text) — plus which token ranges are test-only
//! (`#[cfg(test)]` / `#[test]`), so analyzers can skip them.
//!
//! This is deliberately not a parser: it tracks brace nesting and a small
//! amount of item grammar, and treats everything else as opaque tokens.
//! Known approximations (fine for lint purposes, locked by fixtures):
//! items inside function bodies are not scanned, and `#[cfg(not(test))]`
//! is treated like `#[cfg(test)]`.

use crate::lexer::{lex, Tok, Token};

/// A named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    /// The field's type, as space-joined token text (`HashMap < Lba , BlockTag >`).
    pub ty: String,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
    /// Empty for unit and tuple structs.
    pub fields: Vec<Field>,
    /// Trait names mentioned in `#[derive(...)]`.
    pub derives: Vec<String>,
    pub is_test: bool,
    /// True only for brace-form structs (the fork-coverage analyzer
    /// checks field mentions only on those).
    pub has_named_fields: bool,
}

#[derive(Debug, Clone)]
pub struct Variant {
    pub name: String,
    /// Space-joined token text of the payload (tuple or braced), empty
    /// for unit variants.
    pub payload: String,
}

#[derive(Debug, Clone)]
pub struct EnumItem {
    pub name: String,
    pub line: u32,
    pub variants: Vec<Variant>,
    pub is_test: bool,
}

#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// `module::Type::name` (no crate prefix; the workspace walker adds it).
    pub qual: String,
    pub line: u32,
    /// Token index range of the body, inclusive of both braces.
    pub body: (usize, usize),
    pub is_test: bool,
    /// Set when the fn lives in an `impl` (or trait) block.
    pub impl_type: Option<String>,
    /// Set when the fn lives in an `impl Trait for Type` block.
    pub impl_trait: Option<String>,
}

/// The scanned file: tokens plus item structure.
#[derive(Debug, Default)]
pub struct FileScan {
    pub toks: Vec<Token>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
    /// Token index ranges (inclusive) covered by test-only items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl FileScan {
    /// True when token `idx` falls inside a test-only item.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
    }

    /// The innermost non-test function whose body contains token `idx`.
    pub fn fn_at(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| idx >= f.body.0 && idx <= f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }
}

/// Lexes and scans one source file.
pub fn scan(src: &str) -> FileScan {
    let toks = lex(src);
    let mut s = Scanner {
        toks: &toks,
        i: 0,
        out: FileScan::default(),
    };
    let end = toks.len();
    s.items(
        end,
        &Ctx {
            path: Vec::new(),
            impl_type: None,
            impl_trait: None,
            in_test: false,
        },
    );
    let mut scan = s.out;
    scan.toks = toks;
    scan
}

/// Item-scope context (module path, enclosing impl, test-ness).
#[derive(Clone)]
struct Ctx {
    path: Vec<String>,
    impl_type: Option<String>,
    impl_trait: Option<String>,
    in_test: bool,
}

/// Attributes gathered in front of one item.
#[derive(Default)]
struct Attrs {
    test: bool,
    derives: Vec<String>,
}

struct Scanner<'a> {
    toks: &'a [Token],
    i: usize,
    out: FileScan,
}

impl<'a> Scanner<'a> {
    fn tok(&self, idx: usize) -> Option<&Tok> {
        self.toks.get(idx).map(|t| &t.tok)
    }

    fn line(&self, idx: usize) -> u32 {
        self.toks.get(idx).map(|t| t.line).unwrap_or(0)
    }

    /// Index just past the token matching the opener at `open` (which
    /// must be `(`, `[` or `{`). Strings/comments are already tokenized,
    /// so counting delimiters is sound.
    fn skip_balanced(&self, open: usize) -> usize {
        let (o, c) = match self.tok(open) {
            Some(Tok::Punct('(')) => ('(', ')'),
            Some(Tok::Punct('[')) => ('[', ']'),
            Some(Tok::Punct('{')) => ('{', '}'),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut j = open;
        while let Some(t) = self.tok(j) {
            if t.is_punct(o) {
                depth += 1;
            } else if t.is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Skips a `<…>` generics list starting at `start` (a `<`). `->`
    /// inside (e.g. `Fn() -> u8` bounds) must not close the list, so the
    /// `>` of an arrow is ignored.
    fn skip_generics(&self, start: usize) -> usize {
        let mut depth = 0i32;
        let mut j = start;
        while let Some(t) = self.tok(j) {
            match t {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    let arrow = j > 0
                        && self
                            .tok(j - 1)
                            .is_some_and(|p| p.is_punct('-') || p.is_punct('='));
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.toks.len()
    }

    /// Skips to just past the next `;` at delimiter depth 0 (for
    /// `const`/`static`/`type`/`use` items whose initializers may contain
    /// balanced groups).
    fn skip_to_semi(&mut self) {
        while let Some(t) = self.tok(self.i) {
            match t {
                Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                    self.i = self.skip_balanced(self.i);
                }
                Tok::Punct(';') => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Consumes the run of outer attributes in front of an item. Inner
    /// attributes (`#![…]`) are skipped without attaching.
    fn attrs(&mut self) -> Attrs {
        let mut out = Attrs::default();
        loop {
            match (self.tok(self.i), self.tok(self.i + 1)) {
                (Some(Tok::Punct('#')), Some(Tok::Punct('['))) => {
                    let end = self.skip_balanced(self.i + 1);
                    let idents: Vec<&str> = self.toks[self.i + 1..end]
                        .iter()
                        .filter_map(|t| t.tok.ident())
                        .collect();
                    match idents.first().copied() {
                        Some("test") => out.test = true,
                        Some("cfg") if idents.contains(&"test") => out.test = true,
                        Some("derive") => {
                            out.derives
                                .extend(idents[1..].iter().map(|s| s.to_string()));
                        }
                        _ => {}
                    }
                    self.i = end;
                }
                (Some(Tok::Punct('#')), Some(Tok::Punct('!'))) => {
                    // #![…]
                    if self.tok(self.i + 2).is_some_and(|t| t.is_punct('[')) {
                        self.i = self.skip_balanced(self.i + 2);
                    } else {
                        self.i += 2;
                    }
                }
                _ => return out,
            }
        }
    }

    /// Scans items until token index `end`.
    fn items(&mut self, end: usize, ctx: &Ctx) {
        while self.i < end {
            let attr = self.attrs();
            if self.i >= end {
                return;
            }
            let start = self.i;
            let item_test = ctx.in_test || attr.test;
            match self.tok(self.i).cloned() {
                Some(Tok::Ident(kw)) => match kw.as_str() {
                    // Visibility / qualifier prefixes: consume and loop so
                    // the collected attrs… are lost. To keep attrs, handle
                    // inline: scan past prefixes here.
                    "pub" | "unsafe" | "async" | "default" | "extern" | "const" => {
                        self.prefixed_item(end, ctx, attr, start);
                    }
                    "mod" => self.mod_item(ctx, item_test, start),
                    "fn" => {
                        self.fn_item(ctx, item_test, start);
                    }
                    "struct" | "union" => self.struct_item(attr, item_test, start),
                    "enum" => self.enum_item(item_test, start),
                    "impl" => self.impl_item(ctx, item_test, start),
                    "trait" => self.trait_item(ctx, item_test, start),
                    "use" | "static" | "type" | "macro_rules" => {
                        self.i += 1;
                        // macro_rules! name { … } has no semicolon; skip
                        // its balanced body instead.
                        if kw == "macro_rules" {
                            while let Some(t) = self.tok(self.i) {
                                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                                    self.i = self.skip_balanced(self.i);
                                    break;
                                }
                                self.i += 1;
                            }
                        } else {
                            self.skip_to_semi();
                        }
                        self.note_test(item_test, ctx, start);
                    }
                    _ => self.i += 1,
                },
                Some(Tok::Punct('{')) => {
                    self.i = self.skip_balanced(self.i);
                }
                _ => self.i += 1,
            }
        }
    }

    /// Handles `pub`/`unsafe`/`const`/… prefixes without losing the item's
    /// attributes: skips the prefixes, then dispatches on the keyword.
    fn prefixed_item(&mut self, end: usize, ctx: &Ctx, attr: Attrs, start: usize) {
        let item_test = ctx.in_test || attr.test;
        loop {
            match self.tok(self.i).cloned() {
                Some(Tok::Ident(w)) => match w.as_str() {
                    "pub" => {
                        self.i += 1;
                        if self.tok(self.i).is_some_and(|t| t.is_punct('(')) {
                            self.i = self.skip_balanced(self.i);
                        }
                    }
                    "unsafe" | "async" | "default" => self.i += 1,
                    "extern" => {
                        self.i += 1;
                        if matches!(self.tok(self.i), Some(Tok::Str)) {
                            self.i += 1;
                        }
                    }
                    "const" => {
                        // `const fn` is a prefix; `const NAME: …;` is an item.
                        if self.tok(self.i + 1).is_some_and(|t| t.is_ident("fn")) {
                            self.i += 1;
                        } else {
                            self.i += 1;
                            self.skip_to_semi();
                            self.note_test(item_test, ctx, start);
                            return;
                        }
                    }
                    "fn" => {
                        self.fn_item(ctx, item_test, start);
                        return;
                    }
                    "struct" | "union" => {
                        self.struct_item(attr, item_test, start);
                        return;
                    }
                    "enum" => {
                        self.enum_item(item_test, start);
                        return;
                    }
                    "mod" => {
                        self.mod_item(ctx, item_test, start);
                        return;
                    }
                    "trait" => {
                        self.trait_item(ctx, item_test, start);
                        return;
                    }
                    "impl" => {
                        self.impl_item(ctx, item_test, start);
                        return;
                    }
                    "use" | "static" | "type" => {
                        self.skip_to_semi();
                        self.note_test(item_test, ctx, start);
                        return;
                    }
                    _ => {
                        self.i += 1;
                        return;
                    }
                },
                _ => return,
            }
            if self.i >= end {
                return;
            }
        }
    }

    /// Records a test range for an item spanning `start..self.i` when the
    /// item itself is the test root (not already inside one).
    fn note_test(&mut self, item_test: bool, ctx: &Ctx, start: usize) {
        if item_test && !ctx.in_test && self.i > start {
            self.out.test_ranges.push((start, self.i - 1));
        }
    }

    fn mod_item(&mut self, ctx: &Ctx, item_test: bool, start: usize) {
        self.i += 1; // mod
        let name = match self.tok(self.i).cloned() {
            Some(Tok::Ident(n)) => {
                self.i += 1;
                n
            }
            _ => String::new(),
        };
        match self.tok(self.i) {
            Some(Tok::Punct('{')) => {
                let body_end = self.skip_balanced(self.i);
                self.i += 1; // into the body
                let mut inner = ctx.clone();
                inner.path.push(name);
                inner.in_test = item_test;
                self.items(body_end - 1, &inner);
                self.i = body_end;
                self.note_test(item_test, ctx, start);
            }
            _ => {
                // `mod name;`
                self.skip_to_semi();
            }
        }
    }

    fn fn_item(&mut self, ctx: &Ctx, item_test: bool, start: usize) {
        self.i += 1; // fn
        let (name, line) = match self.tok(self.i).cloned() {
            Some(Tok::Ident(n)) => {
                let l = self.line(self.i);
                self.i += 1;
                (n, l)
            }
            _ => return,
        };
        // Find the body `{` (or `;` for a bodyless trait method) at
        // paren/bracket depth 0. Signatures cannot contain braces.
        loop {
            match self.tok(self.i) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('[')) => {
                    self.i = self.skip_balanced(self.i);
                }
                Some(Tok::Punct(';')) => {
                    self.i += 1;
                    return; // declaration only
                }
                Some(Tok::Punct('{')) => break,
                Some(_) => self.i += 1,
                None => return,
            }
        }
        let body_start = self.i;
        let body_end = self.skip_balanced(body_start); // one past `}`
        self.i = body_end;
        let mut qual_parts = ctx.path.clone();
        if let Some(t) = &ctx.impl_type {
            qual_parts.push(t.clone());
        }
        qual_parts.push(name.clone());
        self.out.fns.push(FnItem {
            name,
            qual: qual_parts.join("::"),
            line,
            body: (body_start, body_end.saturating_sub(1)),
            is_test: item_test,
            impl_type: ctx.impl_type.clone(),
            impl_trait: ctx.impl_trait.clone(),
        });
        self.note_test(item_test, ctx, start);
    }

    fn struct_item(&mut self, attr: Attrs, item_test: bool, start: usize) {
        self.i += 1; // struct / union
        let (name, line) = match self.tok(self.i).cloned() {
            Some(Tok::Ident(n)) => {
                let l = self.line(self.i);
                self.i += 1;
                (n, l)
            }
            _ => return,
        };
        if self.tok(self.i).is_some_and(|t| t.is_punct('<')) {
            self.i = self.skip_generics(self.i);
        }
        let mut fields = Vec::new();
        let mut named = false;
        loop {
            match self.tok(self.i) {
                Some(Tok::Punct(';')) => {
                    self.i += 1;
                    break;
                }
                Some(Tok::Punct('(')) => {
                    // Tuple struct: skip payload, then the trailing `;`.
                    self.i = self.skip_balanced(self.i);
                }
                Some(Tok::Punct('{')) => {
                    named = true;
                    let body_end = self.skip_balanced(self.i);
                    self.named_fields(self.i + 1, body_end - 1, &mut fields);
                    self.i = body_end;
                    break;
                }
                Some(_) => self.i += 1, // where-clause etc.
                None => break,
            }
        }
        self.out.structs.push(StructItem {
            name,
            line,
            fields,
            derives: attr.derives,
            is_test: item_test,
            has_named_fields: named,
        });
        if item_test {
            self.out.test_ranges.push((start, self.i.saturating_sub(1)));
        }
    }

    /// Parses `name: Type` fields between `from` and `to` (exclusive of
    /// the struct's braces).
    fn named_fields(&self, from: usize, to: usize, out: &mut Vec<Field>) {
        let mut j = from;
        while j < to {
            // Leading attributes and visibility.
            while let (Some(a), Some(b)) = (self.tok(j), self.tok(j + 1)) {
                if a.is_punct('#') && b.is_punct('[') {
                    j = self.skip_balanced(j + 1);
                } else if a.is_ident("pub") {
                    j += 1;
                    if self.tok(j).is_some_and(|t| t.is_punct('(')) {
                        j = self.skip_balanced(j);
                    }
                } else {
                    break;
                }
            }
            let (name, line) = match self.tok(j).cloned() {
                Some(Tok::Ident(n)) => (n, self.line(j)),
                _ => break,
            };
            j += 1;
            if !self.tok(j).is_some_and(|t| t.is_punct(':')) {
                break;
            }
            j += 1;
            // Type text runs to the next comma at depth 0.
            let ty_start = j;
            let mut angle = 0i32;
            while j < to {
                match self.tok(j) {
                    Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => {
                        j = self.skip_balanced(j);
                        continue;
                    }
                    Some(Tok::Punct('<')) => angle += 1,
                    Some(Tok::Punct('>')) => {
                        let arrow = j > 0 && self.tok(j - 1).is_some_and(|p| p.is_punct('-'));
                        if !arrow {
                            angle -= 1;
                        }
                    }
                    Some(Tok::Punct(',')) if angle <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            out.push(Field {
                name,
                ty: join_tokens(&self.toks[ty_start..j.min(to)]),
                line,
            });
            j += 1; // past the comma
        }
    }

    fn enum_item(&mut self, item_test: bool, start: usize) {
        self.i += 1; // enum
        let (name, line) = match self.tok(self.i).cloned() {
            Some(Tok::Ident(n)) => {
                let l = self.line(self.i);
                self.i += 1;
                (n, l)
            }
            _ => return,
        };
        if self.tok(self.i).is_some_and(|t| t.is_punct('<')) {
            self.i = self.skip_generics(self.i);
        }
        while let Some(t) = self.tok(self.i) {
            if t.is_punct('{') {
                break;
            }
            self.i += 1;
        }
        let body_end = self.skip_balanced(self.i);
        let mut variants = Vec::new();
        let mut j = self.i + 1;
        while j < body_end - 1 {
            while let (Some(a), Some(b)) = (self.tok(j), self.tok(j + 1)) {
                if a.is_punct('#') && b.is_punct('[') {
                    j = self.skip_balanced(j + 1);
                } else {
                    break;
                }
            }
            let vname = match self.tok(j).cloned() {
                Some(Tok::Ident(n)) => n,
                _ => break,
            };
            j += 1;
            let mut payload = String::new();
            match self.tok(j) {
                Some(Tok::Punct('(')) | Some(Tok::Punct('{')) => {
                    let p_end = self.skip_balanced(j);
                    payload = join_tokens(&self.toks[j + 1..p_end - 1]);
                    j = p_end;
                }
                _ => {}
            }
            // Discriminant (`= expr`) or separator.
            while j < body_end - 1 && !self.tok(j).is_some_and(|t| t.is_punct(',')) {
                match self.tok(j) {
                    Some(Tok::Punct('(')) | Some(Tok::Punct('[')) | Some(Tok::Punct('{')) => {
                        j = self.skip_balanced(j)
                    }
                    _ => j += 1,
                }
            }
            j += 1;
            variants.push(Variant {
                name: vname,
                payload,
            });
        }
        self.i = body_end;
        self.out.enums.push(EnumItem {
            name,
            line,
            variants,
            is_test: item_test,
        });
        if item_test {
            self.out.test_ranges.push((start, self.i.saturating_sub(1)));
        }
    }

    fn impl_item(&mut self, ctx: &Ctx, item_test: bool, start: usize) {
        self.i += 1; // impl
        if self.tok(self.i).is_some_and(|t| t.is_punct('<')) {
            self.i = self.skip_generics(self.i);
        }
        // First path (trait, or the type when there is no `for`).
        let mut first_last: Option<String> = None;
        let mut second_last: Option<String> = None;
        let mut saw_for = false;
        loop {
            match self.tok(self.i).cloned() {
                Some(Tok::Ident(w)) if w == "for" => {
                    saw_for = true;
                    self.i += 1;
                }
                Some(Tok::Ident(w)) if w == "where" => {
                    while let Some(t) = self.tok(self.i) {
                        if t.is_punct('{') {
                            break;
                        }
                        self.i += 1;
                    }
                }
                Some(Tok::Ident(w)) => {
                    if saw_for {
                        second_last = Some(w);
                    } else {
                        first_last = Some(w);
                    }
                    self.i += 1;
                }
                Some(Tok::Punct('<')) => self.i = self.skip_generics(self.i),
                Some(Tok::Punct('{')) => break,
                Some(_) => self.i += 1,
                None => return,
            }
        }
        let (ty, tr) = if saw_for {
            (second_last, first_last)
        } else {
            (first_last, None)
        };
        let body_end = self.skip_balanced(self.i);
        self.i += 1;
        let mut inner = ctx.clone();
        inner.impl_type = ty;
        inner.impl_trait = tr;
        inner.in_test = item_test;
        self.items(body_end - 1, &inner);
        self.i = body_end;
        self.note_test(item_test, ctx, start);
    }

    /// Traits scan like impls (default method bodies are real code); the
    /// trait name stands in as the impl type.
    fn trait_item(&mut self, ctx: &Ctx, item_test: bool, start: usize) {
        self.i += 1; // trait
        let name = match self.tok(self.i).cloned() {
            Some(Tok::Ident(n)) => {
                self.i += 1;
                n
            }
            _ => return,
        };
        while let Some(t) = self.tok(self.i) {
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') {
                self.i += 1;
                return; // trait alias
            }
            if t.is_punct('<') {
                self.i = self.skip_generics(self.i);
                continue;
            }
            self.i += 1;
        }
        let body_end = self.skip_balanced(self.i);
        self.i += 1;
        let mut inner = ctx.clone();
        inner.impl_type = Some(name);
        inner.impl_trait = None;
        inner.in_test = item_test;
        self.items(body_end - 1, &inner);
        self.i = body_end;
        self.note_test(item_test, ctx, start);
    }
}

/// Space-joins token text (idents and puncts; literals become
/// placeholders). Used for field-type and variant-payload matching.
pub fn join_tokens(toks: &[Token]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty() {
            s.push(' ');
        }
        match &t.tok {
            Tok::Ident(i) => s.push_str(i),
            Tok::Lifetime(l) => {
                s.push('\'');
                s.push_str(l);
            }
            Tok::Str => s.push_str("\"\""),
            Tok::Char => s.push_str("' '"),
            Tok::Num => s.push('0'),
            Tok::Punct(c) => s.push(*c),
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        use std::collections::HashMap;

        pub struct Table {
            pub base: HashMap<u64, u32>,
            count: usize,
        }

        pub enum Mode {
            Dense(Vec<u8>),
            Map(HashMap<u64, u32>),
            Off,
        }

        impl Table {
            pub fn handle_event(&mut self) -> usize {
                self.count
            }
        }

        impl Clone for Table {
            fn clone(&self) -> Self {
                Table { base: self.base.clone(), count: self.count }
            }
        }

        mod helpers {
            pub fn submit_probe() {}
        }

        #[cfg(test)]
        mod tests {
            #[test]
            fn probe() { let m = std::collections::HashMap::<u8, u8>::new(); drop(m); }
        }
    "#;

    #[test]
    fn structs_fields_and_enums() {
        let s = scan(SRC);
        let t = &s.structs[0];
        assert_eq!(t.name, "Table");
        assert!(t.has_named_fields);
        assert_eq!(t.fields.len(), 2);
        assert_eq!(t.fields[0].name, "base");
        assert!(t.fields[0].ty.contains("HashMap"));
        let m = &s.enums[0];
        assert_eq!(m.name, "Mode");
        let names: Vec<_> = m.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, ["Dense", "Map", "Off"]);
        assert!(m.variants[1].payload.contains("HashMap"));
        assert!(m.variants[2].payload.is_empty());
    }

    #[test]
    fn fns_get_impl_and_module_quals() {
        let s = scan(SRC);
        let handle = s.fns.iter().find(|f| f.name == "handle_event").expect("fn");
        assert_eq!(handle.qual, "Table::handle_event");
        assert_eq!(handle.impl_type.as_deref(), Some("Table"));
        assert!(handle.impl_trait.is_none());
        let clone = s.fns.iter().find(|f| f.name == "clone").expect("fn");
        assert_eq!(clone.impl_trait.as_deref(), Some("Clone"));
        assert_eq!(clone.impl_type.as_deref(), Some("Table"));
        let probe = s.fns.iter().find(|f| f.name == "submit_probe").expect("fn");
        assert_eq!(probe.qual, "helpers::submit_probe");
    }

    #[test]
    fn test_items_are_ranged() {
        let s = scan(SRC);
        let probe = s.fns.iter().find(|f| f.name == "probe").expect("fn");
        assert!(probe.is_test);
        assert!(s.in_test(probe.body.0));
        let handle = s.fns.iter().find(|f| f.name == "handle_event").expect("fn");
        assert!(!s.in_test(handle.body.0));
    }

    #[test]
    fn derives_are_collected() {
        let s = scan("#[derive(Debug, Clone, Default)] struct A { x: u8 }");
        assert_eq!(s.structs[0].derives, ["Debug", "Clone", "Default"]);
    }
}
