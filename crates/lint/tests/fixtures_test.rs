//! Fixture suite: seeded violations for all four analyzers plus lexer
//! edge cases, and a self-check that the live workspace is clean modulo
//! the checked-in `lint.toml`.
//!
//! The fixture `.rs` files under `tests/fixtures/` are data, not code —
//! they are pulled in with `include_str!` and scanned through
//! [`bio_lint::run_str`] exactly as the workspace walker would scan them.

use std::path::Path;

use bio_lint::{run_str, run_workspace, CrateKey, FileKind, Finding};

fn snippets<'a>(findings: &'a [Finding], analyzer: &str) -> Vec<&'a str> {
    findings
        .iter()
        .filter(|f| f.analyzer == analyzer)
        .map(|f| f.snippet.as_str())
        .collect()
}

#[test]
fn determinism_fixture_findings() {
    let src = include_str!("fixtures/determinism_bad.rs");
    let f = run_str(
        CrateKey::Fs,
        FileKind::Src,
        "crates/fs/src/determinism_bad.rs",
        src,
    );
    assert!(f.iter().all(|x| x.analyzer == "determinism"), "{f:?}");
    let s = snippets(&f, "determinism");
    assert_eq!(
        s,
        [
            "pages.iter()",
            "for … in &hot",
            "m.values()",
            "scratch.drain()",
            "Instant::now()",
            "std::thread",
            "thread_rng",
            "hash_map::Iter",
        ],
        "{f:#?}"
    );
    // Attribution: the field iteration resolves to its method.
    let first = f.iter().find(|x| x.snippet == "pages.iter()").unwrap();
    assert_eq!(first.symbol, "fs::Cache::checksum");
    assert!(first.path.ends_with("determinism_bad.rs"));
    assert!(first.line > 0);
}

#[test]
fn determinism_fixture_is_quiet_outside_scope() {
    // The same violations in test-kind files or non-deterministic crates
    // produce nothing (bench owns the only sanctioned host parallelism).
    let src = include_str!("fixtures/determinism_bad.rs");
    let as_test = run_str(
        CrateKey::Fs,
        FileKind::Test,
        "crates/fs/tests/determinism_bad.rs",
        src,
    );
    assert!(
        as_test.iter().all(|f| f.analyzer != "determinism"),
        "{as_test:?}"
    );
    let in_bench = run_str(
        CrateKey::Bench,
        FileKind::Src,
        "crates/bench/src/determinism_bad.rs",
        src,
    );
    assert!(
        in_bench.iter().all(|f| f.analyzer != "determinism"),
        "{in_bench:?}"
    );
}

#[test]
fn totality_fixture_findings() {
    let src = include_str!("fixtures/totality_bad.rs");
    let f = run_str(
        CrateKey::Block,
        FileKind::Src,
        "crates/block/src/totality_bad.rs",
        src,
    );
    let s = snippets(&f, "totality");
    assert_eq!(
        s,
        [
            ".unwrap(…)",
            ".expect(…)",
            "panic!(…)",
            "slots[…]",
            "unreachable!(…)",
            "slots[…]",
        ],
        "{f:#?}"
    );
    // Five in the completion handler, one in the submit path; the
    // non-handler `rebuild` and the total `on_retry` stay silent.
    let handler = f
        .iter()
        .filter(|x| x.symbol == "block::Lane::handle_completion")
        .count();
    let submit = f
        .iter()
        .filter(|x| x.symbol == "block::Lane::submit")
        .count();
    assert_eq!((handler, submit), (5, 1), "{f:#?}");
}

#[test]
fn layering_fixture_findings() {
    let src = include_str!("fixtures/layering_bad.rs");
    let f = run_str(
        CrateKey::Workloads,
        FileKind::Src,
        "crates/workloads/src/layering_bad.rs",
        src,
    );
    let s = snippets(&f, "layering");
    assert_eq!(s, ["bio_fs::…", "bio_flash::…", "bio_block::…"], "{f:#?}");
    assert!(f
        .iter()
        .filter(|x| x.analyzer == "layering")
        .all(|x| x.message.contains("allowed: sim, core")));
}

#[test]
fn forkcov_fixture_findings() {
    let src = include_str!("fixtures/forkcov_bad.rs");
    let f = run_str(
        CrateKey::Core,
        FileKind::Src,
        "crates/core/src/forkcov_bad.rs",
        src,
    );
    let s = snippets(&f, "fork-coverage");
    assert_eq!(s, ["Snapshot.arena", "Cursor.history"], "{f:#?}");
    let miss = f.iter().find(|x| x.analyzer == "fork-coverage").unwrap();
    assert_eq!(miss.symbol, "core::Snapshot::fork");
    assert!(miss.message.contains("arena"));
    let delta = f.iter().find(|x| x.snippet == "Cursor.history").unwrap();
    assert_eq!(delta.symbol, "core::Cursor::delta_apply");
}

#[test]
fn lexer_edge_cases_produce_no_findings() {
    // Every trigger in this fixture is buried in strings, raw strings,
    // nested comments, chars, or raw identifiers — a lexer that leaks any
    // of them into the token stream fails this test.
    let src = include_str!("fixtures/lexer_edge.rs");
    let f = run_str(
        CrateKey::Fs,
        FileKind::Src,
        "crates/fs/src/lexer_edge.rs",
        src,
    );
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn live_workspace_is_clean_modulo_allowlist() {
    // The standing CI gate, as a test: the real workspace must have no
    // unsuppressed findings and no stale lint.toml entries.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let report = run_workspace(&root).expect("lint run");
    assert!(
        report.open.is_empty(),
        "unsuppressed findings in the live workspace:\n{}",
        report.render_table()
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lint.toml entries:\n{}",
        report.render_table()
    );
    assert!(
        report.files_scanned > 50,
        "walker found only {} files",
        report.files_scanned
    );
    assert!(report.allows.iter().all(|a| !a.reason.trim().is_empty()));
}
