//! Seeded fork-coverage violations. Scanned as `crates/core/src/` text by
//! `fixtures_test.rs` — never compiled into the workspace.

pub struct Snapshot {
    clock: u64,
    queue: Vec<u64>,
    arena: Vec<u8>,
}

impl Snapshot {
    // VIOLATION: `arena` is never mentioned — a fork that silently drops
    // (or would alias) the newest field.
    pub fn fork(&self) -> Snapshot {
        Snapshot {
            clock: self.clock,
            queue: self.queue.clone(),
        }
    }
}

pub struct Ledger {
    entries: Vec<u64>,
    sealed: bool,
}

impl Clone for Ledger {
    // Legal: every field is mentioned.
    fn clone(&self) -> Self {
        Ledger {
            entries: self.entries.clone(),
            sealed: self.sealed,
        }
    }
}

pub struct Wrapper {
    inner: Ledger,
    tag: u64,
}

impl Wrapper {
    // Legal: delegates to `self.clone()` — no field enumeration to audit.
    pub fn fork(&self) -> Box<Wrapper> {
        Box::new(self.clone())
    }
}

pub struct Cursor {
    base: u64,
    committed: u64,
    history: Vec<u64>,
}

impl Cursor {
    // VIOLATION: the rebuilt cursor never mentions `history` — a capture
    // delta that silently drops the newest tracked field.
    pub fn delta_apply(&mut self, base: u64, committed: u64) {
        *self = Cursor { base, committed };
    }
}
