//! Seeded determinism violations. Scanned as `crates/fs/src/` text by
//! `fixtures_test.rs` — never compiled into the workspace.

use std::collections::{HashMap, HashSet};

pub struct Cache {
    pages: HashMap<u64, u32>,
    hot: HashSet<u64>,
    names: Vec<String>,
}

pub enum Table {
    Dense(Vec<u32>),
    Sparse(HashMap<u64, u32>),
}

impl Cache {
    // VIOLATION: hash-field iteration.
    pub fn checksum(&self) -> u64 {
        self.pages.iter().map(|(k, v)| k ^ u64::from(*v)).sum()
    }

    // VIOLATION: `for … in &set`.
    pub fn spill(&self) -> usize {
        let mut n = 0;
        for h in &self.hot {
            n += *h as usize;
        }
        n
    }

    // Legal: keyed lookups and a Vec iteration.
    pub fn fine(&self) -> usize {
        let _ = self.pages.get(&1);
        let _ = self.hot.contains(&2);
        self.names.iter().count()
    }
}

impl Table {
    // VIOLATION: iterating the hash-payload variant's binding.
    pub fn total(&self) -> u64 {
        match self {
            Table::Dense(v) => v.iter().map(|x| u64::from(*x)).sum(),
            Table::Sparse(m) => m.values().map(|x| u64::from(*x)).sum(),
        }
    }
}

// VIOLATION: local HashMap drained in declaration order.
pub fn drain_local() -> usize {
    let mut scratch: HashMap<u64, u64> = HashMap::new();
    scratch.insert(1, 2);
    scratch.drain().count()
}

// VIOLATIONS: wall clock, host threads, OS entropy, hash-order iterator type.
pub fn ambient() {
    let _t = std::time::Instant::now();
    std::thread::yield_now();
    let _r = thread_rng();
    let _it: std::collections::hash_map::Iter<u64, u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Exempt: test code may iterate hash maps.
    #[test]
    fn order_insensitive_probe() {
        let m: HashMap<u64, u64> = HashMap::new();
        assert_eq!(m.iter().count(), 0);
    }
}
