//! Lexer edge cases: every analyzer trigger below is inert — buried in
//! string literals, raw strings, nested comments, char literals, or raw
//! identifiers. Expected finding count: zero.

/* outer comment
   /* nested comment mentioning self.map.iter() and panic!("x") */
   still inside the outer comment: Instant::now()
*/

pub struct Decoy {
    text: String,
    r#match: u64, // raw ident — keyword as a field name
}

impl Decoy {
    pub fn handle_decoys(&self) -> usize {
        // Triggers inside cooked strings are not code.
        let a = "self.map.iter() and v[0] and .unwrap()";
        // Raw strings with hashes, containing quotes and fake panics.
        let b = r#"panic!("not real") and thread_rng() "quoted""#;
        let c = r##"r#"nested raw"# with hash_map::Iter inside"##;
        // Byte strings and chars; '"' and '\'' must not open a string.
        let d = b"bytes with .expect(\"x\") inside";
        let e = '"';
        let f = '\'';
        let g = '\u{1F600}';
        // Lifetimes must not be mistaken for char literals.
        fn inner<'a>(s: &'a str) -> &'a str {
            s
        }
        // Raw identifier: `r#match` is the field, not the keyword.
        let h = self.r#match;
        // Float/range punctuation: `0..10` must stay a range, and the
        // exponent form must not swallow the method call.
        let i = (0..10).count();
        let j = 1.5e3_f64.to_bits();
        a.len()
            + b.len()
            + c.len()
            + d.len()
            + inner(&self.text).len()
            + (e as usize)
            + (f as usize)
            + (g as usize)
            + (h as usize)
            + i
            + (j as usize)
    }
}
