//! Seeded totality violations. Scanned as `crates/block/src/` text by
//! `fixtures_test.rs` — never compiled into the workspace.

pub struct Lane {
    slots: Vec<u64>,
}

impl Lane {
    // VIOLATIONS: unwrap, expect, panic!, unreachable!, direct indexing —
    // all inside a `handle_*` event handler.
    pub fn handle_completion(&mut self, i: usize) -> u64 {
        let a = self.slots.get(i).unwrap();
        let b = self.slots.get(i).expect("slot present");
        if a != b {
            panic!("slot mismatch");
        }
        match i {
            0 => self.slots[i],
            _ => unreachable!(),
        }
    }

    // VIOLATION: indexing in a submit path.
    pub fn submit(&mut self, i: usize) -> u64 {
        self.slots[i]
    }

    // Legal: total alternatives inside a handler.
    pub fn on_retry(&mut self, i: usize) -> u64 {
        debug_assert!(i < 1024);
        self.slots.get(i).copied().unwrap_or(0)
    }

    // Legal: not a handler name — construction code may index.
    pub fn rebuild(&mut self, i: usize) -> u64 {
        self.slots[i]
    }
}
