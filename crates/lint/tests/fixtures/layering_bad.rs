//! Seeded layering violations. Scanned as `crates/workloads/src/` text by
//! `fixtures_test.rs` — never compiled into the workspace.
//!
//! `bio-workloads` may depend on `bio-sim` and `barrier-io` only; every
//! reference below the facade is a DAG violation.

// Legal edges.
use bio_sim::SimTime;
use barrier_io::stack::IoStack;

// VIOLATION: workloads reaching under the facade into the filesystem.
use bio_fs::journal::Journal;

// VIOLATION: bare use of a forbidden crate.
use bio_flash;

pub fn probe(now: SimTime, stack: &IoStack) -> u64 {
    // VIOLATION: inline path into a forbidden crate.
    let lba = bio_block::Lba(7);
    let _ = (now, stack, lba);
    0
}
