//! End-to-end device behaviour: drives the `Device` state machine with a
//! miniature event loop and checks timing, durability and crash semantics.

use bio_flash::{
    audit_epoch_order, BarrierMode, BlockTag, CmdId, Command, Completion, DevAction, DevEvent,
    Device, DeviceProfile, Lba, Priority, WriteFlags,
};
use bio_sim::{EventQueue, SimTime};

/// Minimal host: schedules device-internal events and collects completions.
struct Harness {
    dev: Device,
    q: EventQueue<DevEvent>,
    completions: Vec<Completion>,
}

impl Harness {
    fn new(profile: DeviceProfile, seed: u64) -> Harness {
        Harness {
            dev: Device::new(profile, seed),
            q: EventQueue::new(),
            completions: Vec::new(),
        }
    }

    fn apply(&mut self, actions: Vec<DevAction>) {
        for a in actions {
            match a {
                DevAction::Complete(c) => self.completions.push(c),
                DevAction::After(d, ev) => self.q.push_after(d, ev),
            }
        }
    }

    fn submit(&mut self, cmd: Command) {
        let mut out = Vec::new();
        let now = self.q.now();
        self.dev
            .submit(cmd, now, &mut out)
            .expect("queue unexpectedly full");
        self.apply(out);
    }

    fn submit_may_bounce(&mut self, cmd: Command) -> bool {
        let mut out = Vec::new();
        let now = self.q.now();
        let ok = self.dev.submit(cmd, now, &mut out).is_ok();
        self.apply(out);
        ok
    }

    /// Runs the event loop to quiescence.
    fn run(&mut self) {
        while let Some((now, ev)) = self.q.pop() {
            let mut out = Vec::new();
            self.dev.handle(ev, now, &mut out);
            self.apply(out);
        }
    }

    /// Runs until the given command completes, returning its completion time.
    fn run_until_complete(&mut self, id: CmdId) -> SimTime {
        loop {
            if let Some(c) = self.completions.iter().find(|c| c.id == id) {
                return c.at;
            }
            let (now, ev) = self.q.pop().expect("event queue drained before completion");
            let mut out = Vec::new();
            self.dev.handle(ev, now, &mut out);
            self.apply(out);
        }
    }
}

fn wcmd(id: u64, lba: u64, tag: u64, flags: WriteFlags) -> Command {
    Command::write(CmdId(id), Lba(lba), vec![BlockTag(tag)], flags)
}

#[test]
fn buffered_write_completes_at_dma_time() {
    let mut h = Harness::new(DeviceProfile::ufs(), 1);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    let t = h.run_until_complete(CmdId(1));
    // UFS: 60us decode (idle link) + 25us per block.
    assert_eq!(t, SimTime::from_micros(85));
    // Content visible in final (drained) image.
    h.run();
    assert_eq!(h.dev.final_image().tag(Lba(0)), BlockTag(10));
}

#[test]
fn cached_write_is_lost_on_crash_without_flush() {
    let mut h = Harness::new(DeviceProfile::ufs(), 2);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    h.run_until_complete(CmdId(1));
    // Completed but still in the writeback cache: power loss destroys it.
    let img = h.dev.crash_image();
    assert_eq!(img.tag(Lba(0)), BlockTag::UNWRITTEN);
}

#[test]
fn flush_makes_data_durable() {
    let mut h = Harness::new(DeviceProfile::ufs(), 3);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    h.run_until_complete(CmdId(1));
    h.submit(Command::flush(CmdId(2)));
    let t_flush = h.run_until_complete(CmdId(2));
    assert!(
        t_flush > SimTime::from_micros(70),
        "flush takes program time"
    );
    assert_eq!(h.dev.crash_image().tag(Lba(0)), BlockTag(10));
}

#[test]
fn supercap_flush_is_cheap_and_crash_safe() {
    let mut h = Harness::new(DeviceProfile::supercap_ssd(), 4);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    let t_w = h.run_until_complete(CmdId(1));
    h.submit(Command::flush(CmdId(2)));
    let t_flush = h.run_until_complete(CmdId(2));
    // PLP flush costs only the fixed overhead (25us), no cache drain.
    assert!(
        t_flush.since(t_w) <= bio_sim::SimDuration::from_micros(30),
        "supercap flush took {}",
        t_flush.since(t_w)
    );
    // And even without any flush the cache is durable.
    let mut h2 = Harness::new(DeviceProfile::supercap_ssd(), 5);
    h2.submit(wcmd(1, 7, 70, WriteFlags::NONE));
    h2.run_until_complete(CmdId(1));
    assert_eq!(h2.dev.crash_image().tag(Lba(7)), BlockTag(70));
}

#[test]
fn fua_write_is_durable_at_completion() {
    let mut h = Harness::new(DeviceProfile::ufs(), 6);
    let flags = WriteFlags {
        fua: true,
        flush_before: false,
        barrier: false,
    };
    h.submit(wcmd(1, 3, 30, flags));
    let t = h.run_until_complete(CmdId(1));
    // FUA costs DMA + a flash program, far more than DMA alone.
    assert!(t >= SimTime::from_micros(70 + 200));
    assert_eq!(h.dev.crash_image().tag(Lba(3)), BlockTag(30));
}

#[test]
fn flush_fua_write_drains_cache_first() {
    let mut h = Harness::new(DeviceProfile::ufs(), 7);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    h.run_until_complete(CmdId(1));
    // JC-style write: FLUSH|FUA.
    h.submit(wcmd(2, 1, 20, WriteFlags::FLUSH_FUA));
    h.run_until_complete(CmdId(2));
    let img = h.dev.crash_image();
    assert_eq!(img.tag(Lba(0)), BlockTag(10), "preflush persisted lba 0");
    assert_eq!(img.tag(Lba(1)), BlockTag(20), "FUA persisted lba 1");
}

#[test]
fn queue_depth_is_bounded() {
    let mut h = Harness::new(DeviceProfile::ufs(), 8); // QD 16
    let mut accepted = 0;
    for i in 0..40 {
        if h.submit_may_bounce(wcmd(i + 1, i, i + 100, WriteFlags::NONE)) {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 16, "exactly QD commands fit");
    assert_eq!(h.dev.stats().queue_full_rejections, 24);
    h.run();
    assert_eq!(h.completions.len(), 16);
}

#[test]
fn writes_complete_in_transfer_order_on_one_link() {
    let mut h = Harness::new(DeviceProfile::plain_ssd(), 9);
    for i in 0..8u64 {
        h.submit(wcmd(i + 1, i, i + 100, WriteFlags::NONE));
    }
    h.run();
    let order: Vec<u64> = h.completions.iter().map(|c| c.id.0).collect();
    assert_eq!(order, (1..=8).collect::<Vec<_>>());
}

#[test]
fn barrier_write_pays_emulation_penalty_on_plain_ssd() {
    // plain-SSD profile has a 5% barrier overhead.
    let mut plain = Harness::new(DeviceProfile::plain_ssd(), 10);
    plain.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    let t_plain = plain.run_until_complete(CmdId(1));

    let mut barrier = Harness::new(DeviceProfile::plain_ssd(), 10);
    barrier.submit(wcmd(1, 0, 10, WriteFlags::BARRIER));
    let t_barrier = barrier.run_until_complete(CmdId(1));
    assert!(t_barrier > t_plain);
    let ratio = t_barrier.as_nanos() as f64 / t_plain.as_nanos() as f64;
    assert!((ratio - 1.05).abs() < 0.01, "ratio {ratio}");
}

#[test]
fn lfs_device_preserves_epoch_order_across_crashes() {
    // Write epochs of 4 blocks, barrier-delimited; crash mid-destage; the
    // persisted image must never show epoch n+1 while epoch n is missing.
    for seed in 0..20u64 {
        let mut h = Harness::new(DeviceProfile::ufs(), seed);
        h.dev.record_history(true);
        let mut id = 0;
        for epoch in 0..6u64 {
            for i in 0..4u64 {
                id += 1;
                let lba = epoch * 4 + i;
                let flags = if i == 3 {
                    WriteFlags::BARRIER
                } else {
                    WriteFlags::NONE
                };
                h.submit(wcmd(id, lba, 1000 + id, flags).with_priority(Priority::Ordered));
                h.run_until_complete(CmdId(id));
            }
        }
        // Force some destaging, then crash partway: pop a bounded number of
        // events so programs are mid-flight.
        h.submit(Command::flush(CmdId(999)));
        for _ in 0..(seed % 17) {
            if let Some((now, ev)) = h.q.pop() {
                let mut out = Vec::new();
                h.dev.handle(ev, now, &mut out);
                h.apply(out);
            }
        }
        let img = h.dev.crash_image();
        let violations = audit_epoch_order(h.dev.history().unwrap(), &img);
        assert!(
            violations.is_empty(),
            "seed {seed}: LFS device violated epoch order: {violations:?}"
        );
    }
}

#[test]
fn orderless_device_can_violate_epoch_order() {
    // Same workload on a device with BarrierMode::Unsupported: across many
    // seeds at least one crash must violate epoch ordering (this is the
    // vulnerability the paper's barrier removes).
    let mut violated = false;
    for seed in 0..40u64 {
        let profile = DeviceProfile::ufs().with_barrier_mode(BarrierMode::Unsupported);
        let mut h = Harness::new(profile, seed);
        h.dev.record_history(true);
        let mut id = 0;
        for epoch in 0..6u64 {
            for i in 0..4u64 {
                id += 1;
                let lba = epoch * 4 + i;
                let flags = if i == 3 {
                    WriteFlags::BARRIER
                } else {
                    WriteFlags::NONE
                };
                h.submit(wcmd(id, lba, 1000 + id, flags));
                h.run_until_complete(CmdId(id));
            }
        }
        h.submit(Command::flush(CmdId(999)));
        for _ in 0..(3 + seed % 23) {
            if let Some((now, ev)) = h.q.pop() {
                let mut out = Vec::new();
                h.dev.handle(ev, now, &mut out);
                h.apply(out);
            }
        }
        let img = h.dev.crash_image();
        if !audit_epoch_order(h.dev.history().unwrap(), &img).is_empty() {
            violated = true;
            break;
        }
    }
    assert!(
        violated,
        "orderless device never violated epoch order across 40 crashes — \
         the baseline model is too strong"
    );
}

#[test]
fn sustained_writes_trigger_gc() {
    // Small device so GC happens quickly.
    let mut profile = DeviceProfile::ufs();
    profile.segments = 8;
    profile.pages_per_segment = 32;
    profile.cache_blocks = 16;
    profile.gc_low_watermark = 0.3;
    let mut h = Harness::new(profile, 11);
    let mut id = 0;
    // Overwrite a 64-block working set far beyond device capacity.
    for round in 0..12u64 {
        for lba in 0..64u64 {
            id += 1;
            loop {
                if h.submit_may_bounce(wcmd(id, lba, round * 64 + lba + 1, WriteFlags::NONE)) {
                    break;
                }
                // Queue full: let the device make progress.
                let (now, ev) = h.q.pop().expect("device stuck");
                let mut out = Vec::new();
                h.dev.handle(ev, now, &mut out);
                h.apply(out);
            }
        }
    }
    while !h.submit_may_bounce(Command::flush(CmdId(99999))) {
        let (now, ev) = h.q.pop().expect("device stuck");
        let mut out = Vec::new();
        h.dev.handle(ev, now, &mut out);
        h.apply(out);
    }
    h.run();
    assert!(h.dev.ftl_stats().gc_runs > 0, "GC never ran");
    assert!(h.dev.ftl_stats().write_amplification() >= 1.0);
    // All final contents must be the last round's writes.
    let img = h.dev.final_image();
    for lba in 0..64u64 {
        assert_eq!(img.tag(Lba(lba)), BlockTag(11 * 64 + lba + 1), "lba {lba}");
    }
}

#[test]
fn replayed_finish_cannot_produce_a_completion_sample() {
    // A flush completes via a Finish event; the host derives its latency
    // sample from the Completion record. Before the admit time moved
    // inline into the active table, a replayed Finish could re-complete a
    // command whose admit record was gone, yielding a zero-latency sample.
    // Now the replay must produce no Completion at all.
    let mut h = Harness::new(DeviceProfile::ufs(), 21);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    h.run_until_complete(CmdId(1));
    h.submit(Command::flush(CmdId(2)));
    h.run_until_complete(CmdId(2));
    h.run();
    let completions = h.completions.len();
    let stats = h.dev.stats();
    // Replay the Finish for the already-completed flush, and forge one for
    // a command that never existed.
    for id in [CmdId(2), CmdId(99)] {
        let mut out = Vec::new();
        let now = h.q.now();
        h.dev.handle(DevEvent::Finish { id }, now, &mut out);
        h.apply(out);
    }
    h.run();
    assert_eq!(
        h.completions.len(),
        completions,
        "replayed Finish must not emit a Completion (no latency sample)"
    );
    assert_eq!(h.dev.stats().flush_cmds, stats.flush_cmds);
    assert_eq!(h.dev.stats().write_cmds, stats.write_cmds);
    assert_eq!(h.dev.queue_depth(), 0, "no queue slot double-released");
}

#[test]
fn forged_stage_events_are_inert() {
    // DmaDone / PreflushDone / Finish events naming a live command in the
    // wrong stage (replayed or forged interrupts) must not double-queue it
    // for the link or the cache, and must not complete a mid-flight write
    // before its data reaches the cache; the device completes every
    // command exactly once with its content intact.
    let mut h = Harness::new(DeviceProfile::plain_ssd(), 22);
    for i in 1..=3u64 {
        h.submit(wcmd(i, i, i + 10, WriteFlags::NONE));
    }
    // Interleave forged events with the real ones.
    for _ in 0..64 {
        let Some((now, ev)) = h.q.pop() else { break };
        let mut out = Vec::new();
        h.dev.handle(ev, now, &mut out);
        h.apply(out);
        for id in [CmdId(1), CmdId(2), CmdId(3), CmdId(7)] {
            let mut out = Vec::new();
            h.dev.handle(DevEvent::PreflushDone { id }, now, &mut out);
            h.dev.handle(DevEvent::DmaDone { id }, now, &mut out);
            h.dev.handle(DevEvent::Finish { id }, now, &mut out);
            h.apply(out);
        }
    }
    h.run();
    for i in 1..=3u64 {
        let n = h.completions.iter().filter(|c| c.id == CmdId(i)).count();
        assert_eq!(n, 1, "command {i} must complete exactly once, got {n}");
    }
    assert_eq!(h.dev.queue_depth(), 0);
    let img = h.dev.final_image();
    for i in 1..=3u64 {
        assert_eq!(img.tag(Lba(i)), BlockTag(i + 10), "content intact");
    }
}

#[test]
fn forged_finish_on_a_waiting_write_does_not_complete_it() {
    // A forged Finish naming a live write that has not transferred yet
    // must be dropped: completing it would free its queue slot and report
    // success to the host while the data never reaches the cache.
    let mut h = Harness::new(DeviceProfile::ufs(), 24);
    h.submit(wcmd(1, 0, 10, WriteFlags::NONE));
    // The write is mid-flight (Dma scheduled, nothing completed yet).
    assert!(h.completions.is_empty());
    let mut out = Vec::new();
    let now = h.q.now();
    h.dev
        .handle(DevEvent::Finish { id: CmdId(1) }, now, &mut out);
    h.apply(out);
    assert!(
        h.completions.is_empty(),
        "forged Finish must not complete a waiting write"
    );
    // The genuine pipeline still completes it exactly once, with content.
    h.run();
    assert_eq!(h.completions.len(), 1);
    h.run();
    assert_eq!(h.dev.final_image().tag(Lba(0)), BlockTag(10));
}

#[test]
fn waiting_commands_keep_their_admit_time_across_a_fence() {
    // Two writes behind an ordered barrier write: they sit in the queue
    // until the fence completes, so their decode overlaps the wait and the
    // per-command overhead is not charged (the §6.2 rule). The admit time
    // that drives this now rides inline through the queue pick.
    let mut h = Harness::new(DeviceProfile::ufs(), 23);
    h.submit(wcmd(1, 0, 1, WriteFlags::BARRIER).with_priority(Priority::Ordered));
    h.submit(wcmd(2, 1, 2, WriteFlags::NONE));
    let t1 = h.run_until_complete(CmdId(1));
    let t2 = h.run_until_complete(CmdId(2));
    assert!(t2 > t1, "fenced command completes after the fence");
    // UFS dma_per_block = 25us: the queued command pays only its DMA after
    // the fence completes, not the 60us decode overhead.
    assert_eq!(
        t2.saturating_since(t1),
        bio_sim::SimDuration::from_micros(25),
        "queued command must not be charged decode overhead"
    );
}

#[test]
fn qd_series_tracks_occupancy() {
    let mut h = Harness::new(DeviceProfile::plain_ssd(), 12);
    for i in 0..4u64 {
        h.submit(wcmd(i + 1, i, i + 1, WriteFlags::NONE));
    }
    let peak = h
        .dev
        .qd_series()
        .max_in(SimTime::ZERO, SimTime::from_secs(1));
    assert!(peak >= 4.0, "peak {peak}");
    h.run();
    assert_eq!(h.dev.queue_depth(), 0);
}
