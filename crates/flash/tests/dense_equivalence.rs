//! Equivalence suites locking the dense hot-path indexes to their original
//! map-based implementations.
//!
//! PR 3 replaced the `BTreeMap`/`HashMap` pair inside [`WritebackCache`]
//! with a slab + intrusive per-LBA chain, and the FTL's `HashMap` forward
//! map with a paged direct map. These properties drive both the new
//! structures and the *original* implementations (kept here verbatim as
//! references) through identical random workloads and require every
//! observable to match, so the refactor cannot silently change barrier
//! semantics.

use std::collections::{BTreeMap, HashMap};

use bio_flash::{BlockTag, EntryState, Ftl, Lba, WritebackCache};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference writeback cache: the pre-dense-index implementation, verbatim
// (a BTreeMap keyed by transfer seq + a HashMap latest-index), minus the
// panicking accessors the new API replaced with typed errors.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RefEntry {
    lba: Lba,
    tag: BlockTag,
    epoch: u64,
    state: EntryState,
}

#[derive(Debug, Default)]
struct RefCache {
    entries: BTreeMap<u64, RefEntry>,
    latest: HashMap<Lba, u64>,
    current_epoch: u64,
    next_seq: u64,
}

impl RefCache {
    fn new() -> RefCache {
        RefCache {
            entries: BTreeMap::new(),
            latest: HashMap::new(),
            current_epoch: 0,
            next_seq: 1,
        }
    }

    fn insert(&mut self, lba: Lba, tag: BlockTag, barrier: bool) -> u64 {
        let seq = if let Some(&prev_seq) = self.latest.get(&lba) {
            let prev = self.entries[&prev_seq];
            if prev.state == EntryState::Dirty && prev.epoch == self.current_epoch {
                self.entries.get_mut(&prev_seq).expect("entry exists").tag = tag;
                prev_seq
            } else {
                self.push_new(lba, tag)
            }
        } else {
            self.push_new(lba, tag)
        };
        if barrier {
            self.current_epoch += 1;
        }
        seq
    }

    fn push_new(&mut self, lba: Lba, tag: BlockTag) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            seq,
            RefEntry {
                lba,
                tag,
                epoch: self.current_epoch,
                state: EntryState::Dirty,
            },
        );
        self.latest.insert(lba, seq);
        seq
    }

    fn lookup(&self, lba: Lba) -> Option<BlockTag> {
        self.latest.get(&lba).map(|seq| self.entries[seq].tag)
    }

    fn dirty_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == EntryState::Dirty)
            .count()
    }

    fn min_pending_epoch(&self) -> Option<u64> {
        self.entries.values().map(|e| e.epoch).min()
    }

    fn pending_seqs(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    fn destage_candidates(&self, max_epoch: Option<u64>, lba_ordered: bool) -> Vec<u64> {
        let mut seen: std::collections::HashSet<Lba> = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (&seq, e) in &self.entries {
            let first_for_lba = seen.insert(e.lba);
            if lba_ordered && !first_for_lba {
                continue;
            }
            if e.state != EntryState::Dirty {
                continue;
            }
            if let Some(bound) = max_epoch {
                if e.epoch > bound {
                    continue;
                }
            }
            out.push(seq);
        }
        out
    }

    fn mark_destaging(&mut self, seq: u64) {
        let e = self.entries.get_mut(&seq).expect("unknown cache entry");
        assert_eq!(e.state, EntryState::Dirty, "entry already destaging");
        e.state = EntryState::Destaging;
    }

    fn complete(&mut self, seq: u64) -> RefEntry {
        let e = self.entries.remove(&seq).expect("unknown cache entry");
        if self.latest.get(&e.lba) == Some(&seq) {
            self.latest.remove(&e.lba);
        }
        e
    }
}

/// Asserts every observable of the dense cache matches the reference.
fn assert_cache_equiv(
    dense: &WritebackCache,
    reference: &RefCache,
    lba_span: u64,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(dense.len(), reference.entries.len());
    prop_assert_eq!(dense.is_empty(), reference.entries.is_empty());
    prop_assert_eq!(dense.current_epoch(), reference.current_epoch);
    prop_assert_eq!(dense.dirty_count(), reference.dirty_count());
    prop_assert_eq!(dense.min_pending_epoch(), reference.min_pending_epoch());
    prop_assert_eq!(dense.pending_seqs(), reference.pending_seqs());
    for lba_ordered in [false, true] {
        for bound in [None, reference.min_pending_epoch(), Some(0)] {
            prop_assert_eq!(
                dense.destage_candidates(bound, lba_ordered),
                reference.destage_candidates(bound, lba_ordered),
                "candidates diverge (bound {:?}, lba_ordered {})",
                bound,
                lba_ordered
            );
        }
    }
    for l in 0..lba_span {
        prop_assert_eq!(dense.lookup(Lba(l)), reference.lookup(Lba(l)));
    }
    let dense_entries: Vec<(u64, Lba, BlockTag, u64, EntryState)> = dense
        .entries_in_order()
        .map(|(s, e)| (s, e.lba, e.tag, e.epoch, e.state))
        .collect();
    let ref_entries: Vec<(u64, Lba, BlockTag, u64, EntryState)> = reference
        .entries
        .iter()
        .map(|(&s, e)| (s, e.lba, e.tag, e.epoch, e.state))
        .collect();
    prop_assert_eq!(dense_entries, ref_entries);
    Ok(())
}

const LBA_SPAN: u64 = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random insert/mark/complete workloads (including out-of-order
    /// completions, as the orderless and LFS engines produce) leave the
    /// dense cache and the map-based reference in identical states.
    #[test]
    fn cache_matches_map_reference(
        ops in prop::collection::vec(
            (0u8..6, 0u64..LBA_SPAN, 0u64..1024, proptest::bool::ANY),
            1..60,
        )
    ) {
        let mut dense = WritebackCache::new(1024);
        let mut reference = RefCache::new();
        let mut tag = 1u64;
        for (op, lba, sel, flag) in ops {
            match op {
                // Inserts dominate so caches actually fill up.
                0..=2 => {
                    let s1 = dense.insert(Lba(lba), BlockTag(tag), flag);
                    let s2 = reference.insert(Lba(lba), BlockTag(tag), flag);
                    prop_assert_eq!(s1, s2, "insert returned different seqs");
                    tag += 1;
                }
                3 | 4 => {
                    // Mark a dirty candidate (both sides agree on the
                    // candidate list by induction).
                    let cands = reference.destage_candidates(None, flag);
                    if !cands.is_empty() {
                        let seq = cands[(sel as usize) % cands.len()];
                        dense.mark_destaging(seq).expect("candidate is dirty");
                        reference.mark_destaging(seq);
                    }
                }
                _ => {
                    // Complete any resident entry — in-order or not.
                    let pending = reference.pending_seqs();
                    if !pending.is_empty() {
                        let seq = pending[(sel as usize) % pending.len()];
                        let e1 = dense.complete(seq).expect("pending entry resident");
                        let e2 = reference.complete(seq);
                        prop_assert_eq!(e1.lba, e2.lba);
                        prop_assert_eq!(e1.tag, e2.tag);
                        prop_assert_eq!(e1.epoch, e2.epoch);
                    }
                }
            }
            assert_cache_equiv(&dense, &reference, LBA_SPAN)?;
        }
    }

    /// The dense FTL forward map agrees with a hash-map content model
    /// across random append workloads that force segment rolls, GC and
    /// live-page relocation.
    #[test]
    fn ftl_matches_map_model(
        appends in prop::collection::vec((0u64..10, proptest::bool::ANY), 1..200)
    ) {
        // 32 segments x 8 pages, high GC watermark: the tail of a 200-append
        // run garbage-collects constantly (free < 12.8 after ~19 rolls), yet
        // even an adversarial pattern that makes every victim carry live
        // pages (net -1 free per roll, <= 25 rolls) cannot run out of space.
        let mut ftl = Ftl::new(32, 8, 0.4);
        let mut model: HashMap<Lba, BlockTag> = HashMap::new();
        for (tag, (lba, wide)) in (1u64..).zip(appends) {
            // `wide` widens the address range so the map also sees LBAs
            // beyond the dense low region.
            let lba = Lba(if wide { 1_000 + lba } else { lba });
            ftl.append(lba, BlockTag(tag));
            model.insert(lba, BlockTag(tag));

            prop_assert_eq!(ftl.live_pages(), model.len());
            for (&l, &t) in &model {
                prop_assert_eq!(ftl.tag_at(l), Some(t), "content diverged at {}", l);
                prop_assert!(ftl.lookup(l).is_some());
            }
            let mut mapped: Vec<(Lba, BlockTag)> = ftl.mapped().collect();
            mapped.sort();
            let mut expect: Vec<(Lba, BlockTag)> = model.iter().map(|(&l, &t)| (l, t)).collect();
            expect.sort();
            prop_assert_eq!(mapped, expect);
        }
    }
}
