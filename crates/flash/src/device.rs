//! The barrier-compliant storage device: command queue, host link,
//! writeback cache, FTL, chip array and crash semantics in one event-driven
//! state machine.
//!
//! The device is a Mealy machine: the host calls [`Device::submit`] /
//! [`Device::handle`], and the device answers with [`DevAction`]s — either
//! completion interrupts for the host or timed internal events the caller
//! must schedule back into the simulation. This keeps the device free of
//! any dependency on the event loop and directly unit-testable.
//!
//! ## Command flow
//!
//! ```text
//! submit → [queue: SCSI priority pick] → (preflush?) → DMA over link
//!        → writeback cache insert (epoch-tagged)  → completion IRQ
//!        → background destage → flash program on a chip → durable
//! ```
//!
//! A flush drains the cache entries present at its service start; a FUA
//! write completes only when its own program finishes; a barrier write
//! closes the current epoch. How epochs constrain destaging is decided by
//! the profile's [`BarrierMode`].

use std::collections::{BTreeSet, HashSet, VecDeque};

use bio_sim::{RunSet, SeqTable, SimDuration, SimRng, SimTime, TimeSeries};

use crate::cache::WritebackCache;
use crate::chip::ChipArray;
use crate::ftl::Ftl;
use crate::profile::{BarrierMode, DeviceProfile};
use crate::queue::CommandQueue;
use crate::recovery::{AppendLog, PersistedImage, TransferRec};
use crate::types::{BlockTag, CmdId, CmdKind, Command, Completion, Lba};

/// Cap on recycled tag buffers held by the device; beyond this the Vec is
/// simply dropped (the pool only needs to cover the in-flight window).
const TAG_BUF_POOL_CAP: usize = 64;

/// Internal device events; the host event loop schedules these back via
/// [`Device::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevEvent {
    /// A DMA transfer finished on the host link.
    DmaDone {
        /// The command whose transfer finished.
        id: CmdId,
    },
    /// A flash program finished on a chip.
    ProgramDone {
        /// Cache sequence of the destaged entry.
        seq: u64,
        /// Chip that ran the program.
        chip: usize,
    },
    /// Delayed completion (flush round-trip overhead).
    Finish {
        /// The command to complete.
        id: CmdId,
    },
    /// A write's preflush finished (drain + controller round trip).
    PreflushDone {
        /// The write command whose preflush completed.
        id: CmdId,
    },
    /// Re-run the service/destage pumps (chips became idle).
    Pump,
}

/// What the device asks of its caller after processing an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevAction {
    /// Deliver a completion interrupt to the host.
    Complete(Completion),
    /// Schedule an internal event after a delay.
    After(SimDuration, DevEvent),
}

/// Why a drain (pending-program set) exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainKind {
    /// A flush command: complete the command when drained.
    Flush,
    /// The preflush half of a `FLUSH|FUA` write: move the write to the
    /// link when drained.
    Preflush,
    /// A FUA write: complete the command once its own blocks are
    /// programmed.
    Fua,
}

/// A pending-program set. The member keys are cache destage sequences —
/// snapshotted in ascending order and retired one by one — so the set is
/// a [`RunSet`] of sorted runs (usually exactly one), not a hash set:
/// membership updates are a binary search over a handful of runs instead
/// of a hash+probe per program completion.
#[derive(Debug, Clone)]
struct Drain {
    id: CmdId,
    remaining: RunSet,
    kind: DrainKind,
}

/// Progress of an admitted command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for the preflush drain.
    Preflush,
    /// Drained (or no preflush needed); waiting for the link.
    WaitLink,
    /// DMA in flight.
    Dma,
    /// DMA done but the cache is full; waiting for space.
    WaitCache,
    /// FUA write waiting for its own program.
    WaitFua,
    /// Flush command draining.
    Draining,
}

#[derive(Debug, Clone)]
struct ActiveCmd {
    cmd: Command,
    stage: Stage,
    /// When the command was admitted to the queue (carried through
    /// [`CommandQueue::pick`], never reconstructed); commands that waited
    /// (queue fence or busy link) had time to decode in parallel.
    arrived: SimTime,
}

/// Extra bookkeeping per in-flight destage program.
#[derive(Debug, Clone, Copy)]
struct DestageInfo {
    append_seq: u64,
}

/// Transactional-writeback engine state.
///
/// `committed` is an ordered set: [`Device::committed_groups`] iterates
/// it into the crash enumerator, so the order must be reproducible
/// across processes. `open` members are only probed (`contains`), never
/// iterated, so the hash set stays.
#[derive(Debug, Clone, Default)]
struct TransState {
    open: Option<(u64, HashSet<u64>)>,
    next_gid: u64,
    committed: BTreeSet<u64>,
    /// When capture tracking is armed, groups committed since the last
    /// [`Device::take_capture_delta`], in commit order.
    committed_log: Option<Vec<u64>>,
}

/// What changed in a device's capture-relevant state since the previous
/// [`Device::take_capture_delta`] call: the crash engine replays this onto
/// its shared snapshot instead of re-reading the whole append log, making
/// a crash-point capture O(writes this epoch) rather than O(log length).
#[derive(Debug, Clone, Default)]
pub struct DeviceCaptureDelta {
    /// Blocks folded into the durable base, in fold order.
    pub folds: Vec<(Lba, BlockTag)>,
    /// Transactional-writeback groups committed, in commit order.
    pub committed_groups: Vec<u64>,
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceStats {
    /// Write commands completed.
    pub write_cmds: u64,
    /// Read commands completed.
    pub read_cmds: u64,
    /// Flush commands completed.
    pub flush_cmds: u64,
    /// 4 KiB blocks written by the host.
    pub blocks_written: u64,
    /// Flash programs issued (host destage only; GC is counted by the FTL).
    pub programs: u64,
    /// Read commands served from the writeback cache.
    pub cache_hit_reads: u64,
    /// Commands that bounced because the queue was full.
    pub queue_full_rejections: u64,
}

/// The simulated storage device.
///
/// `Clone` deep-copies the whole machine — queue, cache, FTL, chips,
/// append log, in-flight bookkeeping and RNG — so a clone evolves
/// bit-identically to the original under the same event stream. This is
/// the `bio-flash` leg of stack `fork()`.
#[derive(Debug, Clone)]
pub struct Device {
    profile: DeviceProfile,
    rng: SimRng,
    queue: CommandQueue,
    cache: WritebackCache,
    ftl: Ftl,
    chips: ChipArray,
    log: AppendLog,

    /// The host link is busy transferring until this instant; queued
    /// commands pipeline their decode with the previous transfer, so only
    /// a link that is *idle* at pick time charges the per-command
    /// overhead (this is why deep queues hide latency — §6.2).
    link_free_at: SimTime,
    ready_for_link: VecDeque<CmdId>,
    /// Admitted commands in service, keyed by the bump-allocated [`CmdId`]
    /// (a dense sliding-window table; the window base doubles as a
    /// generation check, so a replayed or forged event naming a completed
    /// command reads as absent). The admission time rides inline in
    /// [`ActiveCmd`] — there is no side map to leak or miss.
    active: SeqTable<ActiveCmd>,
    drains: Vec<Drain>,
    /// FIFO of DMA-completed writes awaiting cache insertion. Strict FIFO:
    /// inserts must happen in transfer order or epoch tagging would break,
    /// so one blocked insert blocks everything behind it.
    pending_inserts: VecDeque<CmdId>,
    /// Keyed by cache destage sequence (bump-allocated, so a dense
    /// sliding-window table; a replayed `ProgramDone` for an already
    /// completed sequence reads as absent rather than aliasing).
    destage_info: SeqTable<DestageInfo>,
    in_flight_programs: usize,
    trans: TransState,

    history: Option<Vec<TransferRec>>,
    qd_series: TimeSeries,
    stats: DeviceStats,
    next_pump_at: Option<SimTime>,
    /// Recycled tag buffers: write commands retire their payload `Vec`s
    /// here at completion, and cache insertion draws its working copy from
    /// the pool, so the steady-state write path stops allocating.
    tag_bufs: Vec<Vec<BlockTag>>,
}

impl Device {
    /// Builds a device from a profile; `seed` drives all device-internal
    /// randomness (program jitter, orderless destage picking).
    pub fn new(profile: DeviceProfile, seed: u64) -> Device {
        profile.validate();
        Device {
            queue: CommandQueue::new(profile.queue_depth),
            cache: WritebackCache::new(profile.cache_blocks),
            ftl: Ftl::new(
                profile.segments,
                profile.pages_per_segment,
                profile.gc_low_watermark,
            ),
            chips: ChipArray::new(profile.parallelism()),
            log: AppendLog::new(),
            rng: SimRng::new(seed),
            link_free_at: SimTime::ZERO,
            ready_for_link: VecDeque::new(),
            active: SeqTable::new(),
            drains: Vec::new(),
            pending_inserts: VecDeque::new(),
            destage_info: SeqTable::new(),
            in_flight_programs: 0,
            trans: TransState::default(),
            history: None,
            qd_series: TimeSeries::new(),
            stats: DeviceStats::default(),
            next_pump_at: None,
            tag_bufs: Vec::new(),
            profile,
        }
    }

    /// Enables transfer-history recording (needed by the crash audits;
    /// costs memory proportional to the number of transfers).
    pub fn record_history(&mut self, on: bool) {
        self.history = if on { Some(Vec::new()) } else { None };
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Current command-queue occupancy (waiting + in service).
    pub fn queue_depth(&self) -> usize {
        self.queue.occupancy()
    }

    /// True when another command can be admitted.
    pub fn can_accept(&self) -> bool {
        self.queue.has_room()
    }

    /// Queue-depth time series (Fig 10 / Fig 12 instrumentation).
    pub fn qd_series(&self) -> &TimeSeries {
        &self.qd_series
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// FTL statistics (GC, write amplification).
    pub fn ftl_stats(&self) -> crate::ftl::FtlStats {
        self.ftl.stats()
    }

    /// Number of dirty cache entries.
    pub fn dirty_blocks(&self) -> usize {
        self.cache.len()
    }

    /// The transfer history, when recording is enabled.
    pub fn history(&self) -> Option<&[TransferRec]> {
        self.history.as_deref()
    }

    /// The append log (durable prefix + in-flight tail). The crash
    /// enumerator reads this to construct every admissible crash image at
    /// a fork point instead of the single sampled one.
    pub fn append_log(&self) -> &AppendLog {
        &self.log
    }

    /// The writeback cache (read-only), exposing pending entries and
    /// their barrier epochs to the crash enumerator.
    pub fn cache(&self) -> &WritebackCache {
        &self.cache
    }

    /// Transactional-writeback groups committed so far (meaningful only
    /// under [`BarrierMode::Transactional`]; empty in other modes). The
    /// crash enumerator needs this to tell all-or-nothing groups that are
    /// already pinned durable from those still free to vanish.
    pub fn committed_groups(&self) -> impl Iterator<Item = u64> + '_ {
        self.trans.committed.iter().copied()
    }

    /// Arms capture-delta tracking: fold and group-commit streams are
    /// recorded from now on for [`Device::take_capture_delta`]. Off by
    /// default — figure runs pay nothing; the crash engine drains the
    /// streams at every capture, keeping them bounded by one epoch.
    pub fn enable_capture_tracking(&mut self) {
        self.log.track_folds();
        if self.trans.committed_log.is_none() {
            self.trans.committed_log = Some(Vec::new());
        }
    }

    /// Drains the capture-relevant changes since the previous take (all
    /// empty when tracking was never armed).
    pub fn take_capture_delta(&mut self) -> DeviceCaptureDelta {
        DeviceCaptureDelta {
            folds: self.log.take_fold_log(),
            committed_groups: self
                .trans
                .committed_log
                .as_mut()
                .map(std::mem::take)
                .unwrap_or_default(),
        }
    }

    /// Submits a command. Returns the command back when the queue is full
    /// (the host's dispatch layer must retry — Fig 6(b)).
    pub fn submit(
        &mut self,
        cmd: Command,
        now: SimTime,
        out: &mut Vec<DevAction>,
    ) -> Result<(), Command> {
        match self.queue.admit(cmd, now) {
            Ok(()) => {
                self.sample_qd(now);
                self.pump(now, out);
                Ok(())
            }
            Err(cmd) => {
                self.stats.queue_full_rejections += 1;
                Err(cmd)
            }
        }
    }

    /// Processes an internal event previously emitted as
    /// [`DevAction::After`].
    pub fn handle(&mut self, ev: DevEvent, now: SimTime, out: &mut Vec<DevAction>) {
        match ev {
            DevEvent::DmaDone { id } => self.on_dma_done(id, now, out),
            DevEvent::ProgramDone { seq, chip } => self.on_program_done(seq, chip, now, out),
            DevEvent::Finish { id } => {
                // Finish events are only ever scheduled for flush commands
                // (the delayed-completion path); any other target — a
                // retired id, or a forged Finish naming a live command
                // mid-flight — is dropped. Without the stage check a
                // forged Finish would remove a live write from the active
                // table while it still sits in ready_for_link /
                // pending_inserts, completing it to the host without its
                // data ever reaching the cache.
                if self
                    .active
                    .get(id.0)
                    .is_none_or(|a| a.stage != Stage::Draining)
                {
                    return;
                }
                self.complete_cmd(id, now, out);
                self.pump(now, out);
            }
            DevEvent::PreflushDone { id } => {
                // A PreflushDone for a command no longer active, or one
                // not actually waiting on a preflush (a replayed or forged
                // event), is dropped rather than re-queued for the link —
                // a double enqueue would start two DMAs for one command.
                let Some(active) = self.active.get_mut(id.0) else {
                    return;
                };
                if active.stage != Stage::Preflush {
                    return;
                }
                active.stage = Stage::WaitLink;
                self.ready_for_link.push_back(id);
                self.pump(now, out);
            }
            DevEvent::Pump => {
                self.next_pump_at = None;
                self.pump(now, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Service pump: picks commands off the queue and drives their stages.
    // ------------------------------------------------------------------

    fn pump(&mut self, now: SimTime, out: &mut Vec<DevAction>) {
        loop {
            if let Some(id) = self.ready_for_link.pop_front() {
                self.start_dma(id, now, out);
                continue;
            }
            let Some((cmd, admitted)) = self.queue.pick() else {
                break;
            };
            self.begin_service(cmd, admitted, out);
        }
        self.destage_pump(now, out);
    }

    fn begin_service(&mut self, cmd: Command, arrived: SimTime, out: &mut Vec<DevAction>) {
        let id = cmd.id;
        match &cmd.kind {
            CmdKind::Flush => {
                self.active.insert(
                    id.0,
                    ActiveCmd {
                        cmd,
                        stage: Stage::Draining,
                        arrived,
                    },
                );
                let remaining = if self.profile.plp {
                    RunSet::new() // PLP: cache contents already durable
                } else {
                    // pending_seqs is ascending (cache slab key order).
                    RunSet::from_sorted(self.cache.pending_seqs())
                };
                if remaining.is_empty() {
                    out.push(DevAction::After(
                        self.profile.flush_overhead,
                        DevEvent::Finish { id },
                    ));
                } else {
                    self.drains.push(Drain {
                        id,
                        remaining,
                        kind: DrainKind::Flush,
                    });
                }
            }
            CmdKind::Write { flags, .. } => {
                let needs_preflush = flags.flush_before;
                if needs_preflush {
                    // PLP: nothing to drain, but the flush round trip is
                    // still paid (t_eps of the paper's quick-flush).
                    let remaining = if self.profile.plp {
                        RunSet::new()
                    } else {
                        RunSet::from_sorted(self.cache.pending_seqs())
                    };
                    if remaining.is_empty() {
                        // Even an empty preflush costs the controller
                        // round trip, like an explicit flush.
                        self.active.insert(
                            id.0,
                            ActiveCmd {
                                cmd,
                                stage: Stage::Preflush,
                                arrived,
                            },
                        );
                        out.push(DevAction::After(
                            self.profile.flush_overhead,
                            DevEvent::PreflushDone { id },
                        ));
                    } else {
                        self.active.insert(
                            id.0,
                            ActiveCmd {
                                cmd,
                                stage: Stage::Preflush,
                                arrived,
                            },
                        );
                        self.drains.push(Drain {
                            id,
                            remaining,
                            kind: DrainKind::Preflush,
                        });
                    }
                } else {
                    self.active.insert(
                        id.0,
                        ActiveCmd {
                            cmd,
                            stage: Stage::WaitLink,
                            arrived,
                        },
                    );
                    self.ready_for_link.push_back(id);
                }
            }
            CmdKind::Read { .. } => {
                self.active.insert(
                    id.0,
                    ActiveCmd {
                        cmd,
                        stage: Stage::WaitLink,
                        arrived,
                    },
                );
                self.ready_for_link.push_back(id);
            }
        }
    }

    fn start_dma(&mut self, id: CmdId, now: SimTime, out: &mut Vec<DevAction>) {
        // The link queue only ever holds live WaitLink commands; if the
        // entry is gone or out of phase the enqueue was forged, so skip it
        // rather than transfer for a dead command.
        let Some(active) = self.active.get_mut(id.0) else {
            debug_assert!(false, "ready_for_link entry without active command");
            return;
        };
        if active.stage != Stage::WaitLink {
            debug_assert!(false, "ready_for_link entry out of phase");
            return;
        }
        // Check the kind before mutating the stage: bailing out *after*
        // the Dma transition would wedge the command (no DmaDone ever
        // scheduled) and leak its queue slot.
        if matches!(active.cmd.kind, CmdKind::Flush) {
            debug_assert!(false, "flush command in the link queue");
            return;
        }
        active.stage = Stage::Dma;
        let blocks = active.cmd.kind.blocks().max(1);
        let mut dur = self.profile.dma_per_block * blocks;
        // Command decode/setup pipelines with the previous transfer; it is
        // only exposed when the command never waited (idle link and no
        // queueing) — the Wait-on-Transfer regime of §6.2.
        let never_waited = active.arrived >= now && self.link_free_at <= now;
        if never_waited {
            dur += self.profile.cmd_overhead;
        }
        match &active.cmd.kind {
            CmdKind::Write { flags, .. } => {
                if flags.barrier {
                    dur = dur.mul_f64(self.profile.barrier_overhead.factor());
                }
            }
            CmdKind::Read { start, .. } => {
                // Cache hit serves straight from DRAM; a miss pays one flash
                // read (read-ahead covers the rest of the span).
                if self.cache.lookup(*start).is_some() {
                    self.stats.cache_hit_reads += 1;
                } else {
                    dur += self.profile.page_read;
                }
            }
            // Excluded above, before the stage transition.
            CmdKind::Flush => {
                debug_assert!(false, "flush rejected before Dma");
                return;
            }
        }
        let done = self.link_free_at.max(now) + dur;
        self.link_free_at = done;
        out.push(DevAction::After(
            done.saturating_since(now),
            DevEvent::DmaDone { id },
        ));
    }

    fn on_dma_done(&mut self, id: CmdId, now: SimTime, out: &mut Vec<DevAction>) {
        // A DmaDone for a command that is not mid-DMA is a replayed or
        // forged event: acting on it would double-queue a cache insert or
        // double-complete a read. Drop it.
        let Some(active) = self.active.get_mut(id.0) else {
            return;
        };
        if active.stage != Stage::Dma {
            return;
        }
        match &active.cmd.kind {
            CmdKind::Read { .. } => {
                self.stats.read_cmds += 1;
                self.complete_cmd(id, now, out);
            }
            CmdKind::Write { .. } => {
                // Cache insertion happens strictly in transfer order;
                // capacity backpressure queues the command (and everything
                // behind it) until programs free space.
                active.stage = Stage::WaitCache;
                self.pending_inserts.push_back(id);
                self.drain_pending_inserts(now, out);
            }
            // A flush can never be in the Dma stage (start_dma rejects it
            // before the transition), so nothing was mutated yet here and
            // dropping the event is safe.
            CmdKind::Flush => {
                debug_assert!(false, "flush command in Dma stage");
                return;
            }
        }
        self.pump(now, out);
    }

    /// Admits DMA-completed writes into the cache in transfer order, as
    /// long as each fits (FUA writes always fit: they do not occupy a
    /// long-term slot).
    fn drain_pending_inserts(&mut self, now: SimTime, out: &mut Vec<DevAction>) {
        while let Some(&id) = self.pending_inserts.front() {
            // Only live writes are ever queued for insertion; a vanished
            // entry means the FIFO was corrupted from outside — discard
            // the orphan instead of indexing into a dead slot.
            let Some(a) = self.active.get(id.0) else {
                debug_assert!(false, "pending insert without active command");
                self.pending_inserts.pop_front();
                continue;
            };
            let (blocks, fua) = match &a.cmd.kind {
                CmdKind::Write { tags, flags, .. } => (tags.len(), flags.fua && !self.profile.plp),
                _ => {
                    debug_assert!(false, "only writes queue for insertion");
                    self.pending_inserts.pop_front();
                    continue;
                }
            };
            if !fua && self.cache.len() + blocks > self.profile.cache_blocks {
                break; // wait for programs to free space
            }
            self.pending_inserts.pop_front();
            let seqs = self.insert_blocks(id);
            if fua {
                if let Some(a) = self.active.get_mut(id.0) {
                    a.stage = Stage::WaitFua;
                }
                self.drains.push(Drain {
                    id,
                    // Sequences of one insert batch are consecutive.
                    remaining: RunSet::from_sorted(seqs),
                    kind: DrainKind::Fua,
                });
            } else {
                self.stats.write_cmds += 1;
                self.complete_cmd(id, now, out);
            }
        }
    }

    /// Inserts a write command's blocks into the cache in transfer order,
    /// honouring the barrier flag on the final block. Returns the cache
    /// sequences of the inserted blocks.
    fn insert_blocks(&mut self, id: CmdId) -> Vec<u64> {
        // The working copy of the payload comes from the recycled-buffer
        // pool (the active entry keeps its own Vec until completion).
        let mut tags = self.tag_bufs.pop().unwrap_or_default();
        tags.clear();
        let Some((start, flags)) = self.active.get(id.0).and_then(|a| match &a.cmd.kind {
            CmdKind::Write {
                start,
                tags: t,
                flags,
            } => {
                tags.extend_from_slice(t);
                Some((*start, *flags))
            }
            _ => None,
        }) else {
            self.reclaim_tag_buf(tags);
            return Vec::new();
        };
        let n = tags.len();
        let mut seqs = Vec::with_capacity(n);
        for (i, &tag) in tags.iter().enumerate() {
            let lba = start.offset(i as u64);
            let barrier = flags.barrier && i + 1 == n;
            let seq = self.cache.insert(lba, tag, barrier);
            seqs.push(seq);
            self.stats.blocks_written += 1;
            if let Some(h) = self.history.as_mut() {
                let epoch = self.cache.entry(seq).expect("just inserted").epoch;
                h.push(TransferRec {
                    seq,
                    lba,
                    tag,
                    epoch,
                });
            }
        }
        self.reclaim_tag_buf(tags);
        seqs
    }

    /// Banks a retired payload buffer for reuse by later inserts.
    fn reclaim_tag_buf(&mut self, mut buf: Vec<BlockTag>) {
        if self.tag_bufs.len() < TAG_BUF_POOL_CAP && buf.capacity() > 0 {
            buf.clear();
            self.tag_bufs.push(buf);
        }
    }

    // ------------------------------------------------------------------
    // Destage pump: moves cache entries to flash under the barrier engine.
    // ------------------------------------------------------------------

    fn destage_wanted(&self) -> bool {
        if self.cache.is_empty() {
            return false;
        }
        let drain_active = !self.drains.is_empty();
        let waiters = !self.pending_inserts.is_empty();
        let over_watermark = self.cache.dirty_count() as f64
            > self.profile.destage_watermark * self.profile.cache_blocks as f64;
        let open_group = self.trans.open.is_some();
        drain_active || waiters || over_watermark || open_group
    }

    fn destage_pump(&mut self, now: SimTime, out: &mut Vec<DevAction>) {
        if !self.destage_wanted() {
            return;
        }
        let engine = self.profile.barrier_mode;
        // Transactional engine: open a group snapshot if none is open.
        if engine == BarrierMode::Transactional && self.trans.open.is_none() {
            let members: HashSet<u64> = self.cache.pending_seqs().into_iter().collect();
            if !members.is_empty() {
                let gid = self.trans.next_gid;
                self.trans.next_gid += 1;
                self.trans.open = Some((gid, members));
            }
        }
        let epoch_bound = match engine {
            BarrierMode::InOrderWriteback => self.cache.min_pending_epoch(),
            _ => None,
        };
        // Log-structured recovery appends strictly in transfer order (the
        // paper's §3.2 firmware); in-place engines must serialise per-LBA.
        let lba_ordered = engine != BarrierMode::LfsInOrderRecovery;
        let mut candidates = self.cache.destage_candidates(epoch_bound, lba_ordered);
        if let Some((_, members)) = &self.trans.open {
            candidates.retain(|s| members.contains(s));
        }
        if engine == BarrierMode::Unsupported && candidates.len() > 1 {
            // Orderless controller: no ordering promise, pick within a
            // parallelism-sized window at random.
            let w = candidates.len().min(self.profile.parallelism().max(2));
            let head: &mut [u64] = &mut candidates[..w];
            self.rng.shuffle(head);
        }
        for seq in candidates {
            // Roll/GC first so the time cost lands before chip selection.
            if let Some(gc) = self.ftl.prepare_append() {
                let per_page = self.profile.page_read + self.profile.page_program;
                let pause = per_page * (gc.moved_pages as u64)
                    / (self.profile.parallelism() as u64)
                    + self.profile.segment_erase;
                self.chips.delay_all(now, pause);
            }
            let Some(chip) = self.chips.find_idle(now) else {
                break;
            };
            // Candidates come from the cache snapshot above with no
            // intervening completions, so marking cannot fail.
            let marked = self.cache.mark_destaging(seq);
            debug_assert!(marked.is_ok(), "destage candidate vanished: {marked:?}");
            if marked.is_err() {
                continue;
            }
            let entry = *self.cache.entry(seq).expect("marked entry");
            self.ftl.append(entry.lba, entry.tag);
            let group = self.trans.open.as_ref().map(|(g, _)| *g);
            let append_seq = self.log.begin(entry.lba, entry.tag, group);
            self.destage_info.insert(seq, DestageInfo { append_seq });
            let dur = ChipArray::jittered(
                self.profile.page_program,
                self.profile.program_jitter,
                &mut self.rng,
            );
            self.chips.start_op(chip, now, dur);
            self.in_flight_programs += 1;
            self.stats.programs += 1;
            out.push(DevAction::After(dur, DevEvent::ProgramDone { seq, chip }));
        }
        // If work remains but every chip is busy and nothing is in flight
        // (GC blanket delay), schedule a wake-up at the next idle instant.
        if self.destage_wanted() && self.in_flight_programs == 0 {
            let at = self.chips.next_idle_at().max(now);
            if self.next_pump_at != Some(at) {
                self.next_pump_at = Some(at);
                out.push(DevAction::After(at.saturating_since(now), DevEvent::Pump));
            }
        }
    }

    fn on_program_done(&mut self, seq: u64, _chip: usize, now: SimTime, out: &mut Vec<DevAction>) {
        // The destage record is the ground truth for in-flight programs: a
        // duplicate or forged ProgramDone has no record and is dropped
        // before any accounting changes.
        let Some(info) = self.destage_info.remove(seq) else {
            return;
        };
        self.in_flight_programs -= 1;
        let completed = self.cache.complete(seq);
        debug_assert!(completed.is_ok(), "destage record without cache entry");
        self.log.mark_done(info.append_seq);

        // Transactional group accounting.
        let mut group_committed = false;
        if let Some((gid, members)) = self.trans.open.as_mut() {
            members.remove(&seq);
            if members.is_empty() {
                self.trans.committed.insert(*gid);
                if let Some(log) = &mut self.trans.committed_log {
                    log.push(*gid);
                }
                group_committed = true;
            }
        }
        if group_committed {
            self.trans.open = None;
        }
        let committed = &self.trans.committed;
        self.log.fold(|g| committed.contains(&g));

        // Drain accounting (flushes, preflushes, FUA writes).
        let mut finished: Vec<(CmdId, DrainKind)> = Vec::new();
        self.drains.retain_mut(|d| {
            d.remaining.remove(seq);
            if d.remaining.is_empty() {
                finished.push((d.id, d.kind));
                false
            } else {
                true
            }
        });
        for (id, kind) in finished {
            match kind {
                DrainKind::Flush => {
                    out.push(DevAction::After(
                        self.profile.flush_overhead,
                        DevEvent::Finish { id },
                    ));
                }
                DrainKind::Preflush => {
                    // Drained: pay the controller round trip before the
                    // write proceeds to the link.
                    out.push(DevAction::After(
                        self.profile.flush_overhead,
                        DevEvent::PreflushDone { id },
                    ));
                }
                DrainKind::Fua => {
                    self.stats.write_cmds += 1;
                    self.complete_cmd(id, now, out);
                }
            }
        }

        // Cache space freed: admit waiting writes in transfer order.
        self.drain_pending_inserts(now, out);

        self.pump(now, out);
    }

    fn complete_cmd(&mut self, id: CmdId, now: SimTime, out: &mut Vec<DevAction>) {
        // A duplicate Finish event (replayed completion) finds no active
        // command — the sliding window's base makes a completed id read as
        // absent — so it is dropped without touching queue slots, stats,
        // or the latency-bearing Completion record.
        let Some(active) = self.active.remove(id.0) else {
            return;
        };
        match active.cmd.kind {
            CmdKind::Flush => self.stats.flush_cmds += 1,
            // A retiring write hands its payload buffer back to the pool.
            CmdKind::Write { tags, .. } => self.reclaim_tag_buf(tags),
            CmdKind::Read { .. } => {}
        }
        let released = self.queue.complete(id);
        debug_assert!(released, "active command missing from queue");
        self.sample_qd(now);
        out.push(DevAction::Complete(Completion { id, at: now }));
    }

    fn sample_qd(&mut self, now: SimTime) {
        self.qd_series.record(now, self.queue.occupancy() as f64);
    }

    // ------------------------------------------------------------------
    // Crash semantics.
    // ------------------------------------------------------------------

    /// Computes the storage-surface contents if power were lost right now,
    /// under the profile's barrier mode (§3.2's enforcement options).
    pub fn crash_image(&self) -> PersistedImage {
        if self.profile.plp {
            // Supercap: everything transferred is durable.
            let mut img = self.log.image(|_| true, false);
            img.overlay(self.cache.entries_in_order().map(|(_, e)| (e.lba, e.tag)));
            return img;
        }
        match self.profile.barrier_mode {
            BarrierMode::LfsInOrderRecovery => self.log.image(|r| r.done, true),
            BarrierMode::Transactional => {
                let committed = self.trans.committed.clone();
                self.log.image(
                    move |r| r.done && r.group.is_none_or(|g| committed.contains(&g)),
                    false,
                )
            }
            BarrierMode::InOrderWriteback | BarrierMode::Unsupported => {
                self.log.image(|r| r.done, false)
            }
        }
    }

    /// The durable state with *no* crash: cache fully drained (used to
    /// validate end-of-run content).
    pub fn final_image(&self) -> PersistedImage {
        let mut img = self.log.image(|_| true, false);
        img.overlay(self.cache.entries_in_order().map(|(_, e)| (e.lba, e.tag)));
        img
    }
}
