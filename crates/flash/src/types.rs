//! Core vocabulary types shared across the device model: logical block
//! addresses, command identifiers, command kinds, SCSI priority classes and
//! completion records.

use core::fmt;

use bio_sim::SimTime;

/// A logical block address in 4 KiB units.
///
/// The paper's experiments are all in 4 KiB pages; the device maps one LBA
/// to one flash page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lba(pub u64);

impl Lba {
    /// The LBA `n` blocks after this one.
    #[inline]
    pub fn offset(self, n: u64) -> Lba {
        Lba(self.0 + n)
    }
}

impl fmt::Display for Lba {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lba:{}", self.0)
    }
}

/// Identifies the content version written to a block.
///
/// The simulation does not move real bytes around; every write carries a
/// unique tag so crash-recovery audits can tell exactly *which* write
/// survived. Tag 0 is reserved for "never written".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockTag(pub u64);

impl BlockTag {
    /// The "never written" sentinel.
    pub const UNWRITTEN: BlockTag = BlockTag(0);
}

/// A monotonically assigned command identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CmdId(pub u64);

impl fmt::Display for CmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cmd:{}", self.0)
    }
}

/// SCSI command priority classes (§3.4 of the paper).
///
/// * `Simple` commands may be serviced in any order between fences.
/// * `Ordered` commands are fences: an ordered command is serviced only
///   after every earlier command completes, and no later command may be
///   serviced before it. Order-preserving dispatch tags barrier writes with
///   this class.
/// * `HeadOfQueue` commands jump to the front (used for flush).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Freely reorderable between fences.
    #[default]
    Simple,
    /// A fence in the command queue.
    Ordered,
    /// Serviced before everything else in the queue.
    HeadOfQueue,
}

/// Per-write option flags, mirroring the kernel's `REQ_*` request flags at
/// the device interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WriteFlags {
    /// Force Unit Access: bypass the writeback cache; complete only when the
    /// data is on the storage surface.
    pub fua: bool,
    /// Flush the writeback cache *before* servicing this write
    /// (`REQ_FLUSH` / preflush).
    pub flush_before: bool,
    /// Cache-barrier flag (`REQ_BARRIER`): blocks transferred after this
    /// write must not persist before blocks transferred up to and including
    /// it (§3.2).
    pub barrier: bool,
}

impl WriteFlags {
    /// Plain buffered write: no flush, no FUA, no barrier.
    pub const NONE: WriteFlags = WriteFlags {
        fua: false,
        flush_before: false,
        barrier: false,
    };

    /// The classical journal-commit flags: `FLUSH|FUA`.
    pub const FLUSH_FUA: WriteFlags = WriteFlags {
        fua: true,
        flush_before: true,
        barrier: false,
    };

    /// A barrier write (`REQ_BARRIER`).
    pub const BARRIER: WriteFlags = WriteFlags {
        fua: false,
        flush_before: false,
        barrier: true,
    };
}

/// What a command asks the device to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CmdKind {
    /// Write `tags.len()` consecutive blocks starting at `start`.
    Write {
        /// First block address.
        start: Lba,
        /// Content version tag for each consecutive block.
        tags: Vec<BlockTag>,
        /// FUA / flush / barrier options.
        flags: WriteFlags,
    },
    /// Read `count` consecutive blocks starting at `start`.
    Read {
        /// First block address.
        start: Lba,
        /// Number of blocks.
        count: u64,
    },
    /// Flush the writeback cache to the storage surface.
    Flush,
}

impl CmdKind {
    /// Number of 4 KiB blocks moved by this command (0 for flush).
    pub fn blocks(&self) -> u64 {
        match self {
            CmdKind::Write { tags, .. } => tags.len() as u64,
            CmdKind::Read { count, .. } => *count,
            CmdKind::Flush => 0,
        }
    }

    /// True for write commands carrying the barrier flag.
    pub fn is_barrier(&self) -> bool {
        matches!(self, CmdKind::Write { flags, .. } if flags.barrier)
    }
}

/// A command submitted to the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Unique id, assigned by the submitter.
    pub id: CmdId,
    /// The operation.
    pub kind: CmdKind,
    /// SCSI priority class.
    pub priority: Priority,
}

impl Command {
    /// Creates a write command.
    pub fn write(id: CmdId, start: Lba, tags: Vec<BlockTag>, flags: WriteFlags) -> Command {
        Command {
            id,
            kind: CmdKind::Write { start, tags, flags },
            priority: Priority::Simple,
        }
    }

    /// Creates a flush command (head-of-queue, as in the paper §3.4).
    pub fn flush(id: CmdId) -> Command {
        Command {
            id,
            kind: CmdKind::Flush,
            priority: Priority::HeadOfQueue,
        }
    }

    /// Creates a read command.
    pub fn read(id: CmdId, start: Lba, count: u64) -> Command {
        Command {
            id,
            kind: CmdKind::Read { start, count },
            priority: Priority::Simple,
        }
    }

    /// Sets the SCSI priority, builder style.
    pub fn with_priority(mut self, p: Priority) -> Command {
        self.priority = p;
        self
    }
}

/// Completion record delivered to the host when a command finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Which command completed.
    pub id: CmdId,
    /// When it completed.
    pub at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lba_offset() {
        assert_eq!(Lba(10).offset(5), Lba(15));
        assert_eq!(Lba(10).to_string(), "lba:10");
    }

    #[test]
    fn cmd_blocks() {
        let w = CmdKind::Write {
            start: Lba(0),
            tags: vec![BlockTag(1), BlockTag(2)],
            flags: WriteFlags::NONE,
        };
        assert_eq!(w.blocks(), 2);
        assert_eq!(CmdKind::Flush.blocks(), 0);
        assert_eq!(
            CmdKind::Read {
                start: Lba(3),
                count: 7
            }
            .blocks(),
            7
        );
    }

    #[test]
    fn barrier_flag_detection() {
        let b = Command::write(CmdId(1), Lba(0), vec![BlockTag(1)], WriteFlags::BARRIER);
        assert!(b.kind.is_barrier());
        let p = Command::write(CmdId(2), Lba(0), vec![BlockTag(2)], WriteFlags::NONE);
        assert!(!p.kind.is_barrier());
        assert!(!CmdKind::Flush.is_barrier());
    }

    #[test]
    fn flush_is_head_of_queue() {
        assert_eq!(Command::flush(CmdId(9)).priority, Priority::HeadOfQueue);
    }

    #[test]
    fn priority_builder() {
        let c = Command::write(CmdId(1), Lba(0), vec![BlockTag(1)], WriteFlags::NONE)
            .with_priority(Priority::Ordered);
        assert_eq!(c.priority, Priority::Ordered);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn flags_presets() {
        assert!(WriteFlags::FLUSH_FUA.fua && WriteFlags::FLUSH_FUA.flush_before);
        assert!(!WriteFlags::NONE.barrier);
        assert!(WriteFlags::BARRIER.barrier);
    }
}
