//! The device writeback cache.
//!
//! Entries are kept in *transfer order* (a monotonically increasing
//! sequence number assigned as DMA completes) because every barrier
//! enforcement scheme in §3.2 of the paper is defined over that order.
//! Each entry carries the *epoch* it belongs to; the epoch counter
//! advances when a barrier write is inserted, so "epoch n+1 must not
//! persist before epoch n" is checkable directly on the entries.
//!
//! Crucially, entries for the same LBA in *different* epochs are kept as
//! separate versions (no cross-epoch coalescing): collapsing them would
//! let a later epoch's content replace an earlier epoch's while other
//! earlier-epoch blocks are still volatile, silently breaking the barrier
//! guarantee.

use std::collections::{BTreeMap, HashMap};

use crate::types::{BlockTag, Lba};

/// Destage lifecycle of one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// In cache, not yet being written to flash.
    Dirty,
    /// A flash program for this entry is in flight.
    Destaging,
}

/// One cached block version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Block address.
    pub lba: Lba,
    /// Content version.
    pub tag: BlockTag,
    /// Barrier epoch this version belongs to.
    pub epoch: u64,
    /// Destage state.
    pub state: EntryState,
}

/// Transfer-ordered writeback cache with epoch accounting.
#[derive(Debug, Clone, Default)]
pub struct WritebackCache {
    /// Entries in transfer order, keyed by transfer sequence number.
    entries: BTreeMap<u64, CacheEntry>,
    /// Latest (highest-seq) entry per LBA, for read hits and coalescing.
    latest: HashMap<Lba, u64>,
    capacity: usize,
    current_epoch: u64,
    next_seq: u64,
}

impl WritebackCache {
    /// Creates a cache holding at most `capacity` block versions.
    pub fn new(capacity: usize) -> WritebackCache {
        WritebackCache {
            entries: BTreeMap::new(),
            latest: HashMap::new(),
            capacity: capacity.max(1),
            current_epoch: 0,
            next_seq: 1,
        }
    }

    /// Number of resident entries (dirty + destaging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True when at capacity; inserts must wait for a destage.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// The epoch new writes are tagged with.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    /// Inserts one transferred block. If `barrier` is set the epoch counter
    /// advances *after* the insert: the barrier write is the last member of
    /// its epoch (§3.2).
    ///
    /// Same-epoch overwrites of a still-dirty entry coalesce in place;
    /// anything else creates a new version. Returns the entry's transfer
    /// sequence number.
    pub fn insert(&mut self, lba: Lba, tag: BlockTag, barrier: bool) -> u64 {
        let seq = if let Some(&prev_seq) = self.latest.get(&lba) {
            let prev = self.entries[&prev_seq];
            if prev.state == EntryState::Dirty && prev.epoch == self.current_epoch {
                // Safe coalesce: same epoch, program not yet started.
                self.entries.get_mut(&prev_seq).expect("entry exists").tag = tag;
                prev_seq
            } else {
                self.push_new(lba, tag)
            }
        } else {
            self.push_new(lba, tag)
        };
        if barrier {
            self.current_epoch += 1;
        }
        seq
    }

    fn push_new(&mut self, lba: Lba, tag: BlockTag) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(
            seq,
            CacheEntry {
                lba,
                tag,
                epoch: self.current_epoch,
                state: EntryState::Dirty,
            },
        );
        self.latest.insert(lba, seq);
        seq
    }

    /// Latest cached content for `lba` (read hit), if resident.
    pub fn lookup(&self, lba: Lba) -> Option<BlockTag> {
        self.latest.get(&lba).map(|seq| self.entries[seq].tag)
    }

    /// The entry at `seq`, if resident.
    pub fn entry(&self, seq: u64) -> Option<&CacheEntry> {
        self.entries.get(&seq)
    }

    /// Count of entries not yet being destaged.
    pub fn dirty_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.state == EntryState::Dirty)
            .count()
    }

    /// The minimum epoch among resident entries, i.e. the epoch that must
    /// finish persisting first under in-order writeback.
    pub fn min_pending_epoch(&self) -> Option<u64> {
        self.entries.values().map(|e| e.epoch).min()
    }

    /// Sequence numbers of every resident entry, in transfer order: the
    /// snapshot a flush command must drain.
    pub fn pending_seqs(&self) -> Vec<u64> {
        self.entries.keys().copied().collect()
    }

    /// Destage candidates in transfer order.
    ///
    /// `max_epoch` optionally gates candidates to epochs `<=` the bound
    /// (used by the in-order writeback engine).
    ///
    /// With `lba_ordered` set, an entry is only eligible once every earlier
    /// resident version of the same LBA has been programmed — required for
    /// engines that write in place. A log-structured device (the paper's
    /// UFS firmware) must NOT set it: the FTL appends strictly in transfer
    /// order, and two versions of one LBA are simply two appends, so
    /// holding the newer one back would reorder the append log and break
    /// prefix recovery.
    pub fn destage_candidates(&self, max_epoch: Option<u64>, lba_ordered: bool) -> Vec<u64> {
        let mut seen: std::collections::HashSet<Lba> = std::collections::HashSet::new();
        let mut out = Vec::new();
        for (&seq, e) in &self.entries {
            let first_for_lba = seen.insert(e.lba);
            if lba_ordered && !first_for_lba {
                continue;
            }
            if e.state != EntryState::Dirty {
                continue;
            }
            if let Some(bound) = max_epoch {
                if e.epoch > bound {
                    continue;
                }
            }
            out.push(seq);
        }
        out
    }

    /// Marks an entry as having a flash program in flight.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is absent or already destaging.
    pub fn mark_destaging(&mut self, seq: u64) {
        let e = self.entries.get_mut(&seq).expect("unknown cache entry");
        assert_eq!(e.state, EntryState::Dirty, "entry already destaging");
        e.state = EntryState::Destaging;
    }

    /// Removes a fully programmed entry, freeing its slot. Returns it.
    ///
    /// # Panics
    ///
    /// Panics if `seq` is absent.
    pub fn complete(&mut self, seq: u64) -> CacheEntry {
        let e = self.entries.remove(&seq).expect("unknown cache entry");
        if self.latest.get(&e.lba) == Some(&seq) {
            self.latest.remove(&e.lba);
        }
        e
    }

    /// All resident entries in transfer order (used for PLP crash images).
    pub fn entries_in_order(&self) -> impl Iterator<Item = (u64, &CacheEntry)> {
        self.entries.iter().map(|(&s, e)| (s, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut c = WritebackCache::new(8);
        c.insert(Lba(1), BlockTag(10), false);
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(10)));
        assert_eq!(c.lookup(Lba(2)), None);
        assert_eq!(c.len(), 1);
        assert!(!c.is_full());
    }

    #[test]
    fn barrier_advances_epoch_after_insert() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true);
        assert_eq!(
            c.entry(s1).unwrap().epoch,
            0,
            "barrier write is in its own epoch"
        );
        assert_eq!(c.current_epoch(), 1);
        let s2 = c.insert(Lba(2), BlockTag(2), false);
        assert_eq!(c.entry(s2).unwrap().epoch, 1);
    }

    #[test]
    fn same_epoch_overwrite_coalesces() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), false);
        let s2 = c.insert(Lba(1), BlockTag(2), false);
        assert_eq!(s1, s2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(2)));
    }

    #[test]
    fn cross_epoch_overwrite_keeps_versions() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0, barrier
        let s2 = c.insert(Lba(1), BlockTag(2), false); // epoch 1
        assert_ne!(s1, s2);
        assert_eq!(c.len(), 2);
        // Reads see the newest version.
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(2)));
    }

    #[test]
    fn destaging_entry_does_not_coalesce() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), false);
        c.mark_destaging(s1);
        let s2 = c.insert(Lba(1), BlockTag(2), false);
        assert_ne!(s1, s2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn candidates_respect_per_lba_order() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0
        let s2 = c.insert(Lba(1), BlockTag(2), false); // epoch 1, same LBA
        let s3 = c.insert(Lba(2), BlockTag(3), false); // epoch 1
        let cands = c.destage_candidates(None, true);
        assert_eq!(cands, vec![s1, s3], "second version of lba 1 must wait");
        // After the first version completes, the second becomes eligible.
        c.mark_destaging(s1);
        c.complete(s1);
        assert_eq!(c.destage_candidates(None, true), vec![s2, s3]);
    }

    #[test]
    fn candidates_respect_epoch_bound() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0
        let _s2 = c.insert(Lba(2), BlockTag(2), false); // epoch 1
        assert_eq!(c.destage_candidates(Some(0), true), vec![s1]);
        assert_eq!(c.min_pending_epoch(), Some(0));
    }

    #[test]
    fn complete_frees_capacity() {
        let mut c = WritebackCache::new(1);
        let s1 = c.insert(Lba(1), BlockTag(1), false);
        assert!(c.is_full());
        c.mark_destaging(s1);
        let e = c.complete(s1);
        assert_eq!(e.tag, BlockTag(1));
        assert!(c.is_empty());
        assert_eq!(c.lookup(Lba(1)), None);
    }

    #[test]
    fn complete_older_version_keeps_latest_lookup() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true);
        let _s2 = c.insert(Lba(1), BlockTag(2), false);
        c.mark_destaging(s1);
        c.complete(s1);
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(2)));
    }

    #[test]
    fn pending_seqs_in_order() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true);
        let s2 = c.insert(Lba(2), BlockTag(2), true);
        let s3 = c.insert(Lba(3), BlockTag(3), false);
        assert_eq!(c.pending_seqs(), vec![s1, s2, s3]);
        assert_eq!(c.dirty_count(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown cache entry")]
    fn complete_unknown_panics() {
        WritebackCache::new(4).complete(99);
    }
}
