//! The device writeback cache.
//!
//! Entries are kept in *transfer order* (a monotonically increasing
//! sequence number assigned as DMA completes) because every barrier
//! enforcement scheme in §3.2 of the paper is defined over that order.
//! Each entry carries the *epoch* it belongs to; the epoch counter
//! advances when a barrier write is inserted, so "epoch n+1 must not
//! persist before epoch n" is checkable directly on the entries.
//!
//! Crucially, entries for the same LBA in *different* epochs are kept as
//! separate versions (no cross-epoch coalescing): collapsing them would
//! let a later epoch's content replace an earlier epoch's while other
//! earlier-epoch blocks are still volatile, silently breaking the barrier
//! guarantee.
//!
//! ## Storage layout and invariants
//!
//! The cache is a dense slab, not a map pair: entries live in a
//! [`SeqTable`] keyed by transfer sequence (so iteration *is* transfer
//! order and the per-block paths are index loads, not hash/tree probes),
//! and the versions of one LBA form an intrusive doubly-linked chain
//! through the slab (`prev_same_lba`/`next_same_lba`, 0 = none — sequence
//! numbers start at 1). Two dense LBA-indexed side tables complete the
//! structure:
//!
//! * `latest[lba]` — the read-hit index: the newest *inserted* version,
//!   cleared (not rolled back) when that exact version completes;
//! * `chain_head[lba]` — the newest *resident* version, rolled back to the
//!   next-older resident version on completion. An entry with
//!   `prev_same_lba == 0` is therefore the oldest resident version of its
//!   LBA, which is exactly the per-LBA eligibility test the in-place
//!   destage engines need.
//!
//! Invariants (property-tested against the original map-based
//! implementation in `tests/dense_equivalence.rs`):
//!
//! * epochs are non-decreasing in sequence order, so the minimum pending
//!   epoch is the epoch of the oldest resident entry;
//! * `latest`/`chain_head` only ever point at resident entries;
//! * `dirty` counts exactly the resident entries in [`EntryState::Dirty`].

use bio_sim::{PagedMap, SeqTable};

use crate::types::{BlockTag, Lba};

/// Destage lifecycle of one cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryState {
    /// In cache, not yet being written to flash.
    Dirty,
    /// A flash program for this entry is in flight.
    Destaging,
}

/// One cached block version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Block address.
    pub lba: Lba,
    /// Content version.
    pub tag: BlockTag,
    /// Barrier epoch this version belongs to.
    pub epoch: u64,
    /// Destage state.
    pub state: EntryState,
}

/// Why a cache operation was rejected. Sequence numbers arrive from
/// outside the cache (device completion events), so unknown or replayed
/// sequences are reportable errors, not panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// The sequence is not resident (never inserted, or already
    /// completed — e.g. a duplicate completion).
    UnknownSeq(u64),
    /// The entry is already being destaged (duplicate `mark_destaging`).
    AlreadyDestaging(u64),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::UnknownSeq(s) => write!(f, "unknown cache entry seq {s}"),
            CacheError::AlreadyDestaging(s) => write!(f, "cache entry seq {s} already destaging"),
        }
    }
}

impl std::error::Error for CacheError {}

/// Slab slot: the entry plus its intrusive same-LBA version chain.
#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: CacheEntry,
    /// Next-older resident version of the same LBA (0 = none: this is the
    /// oldest resident version).
    prev_same_lba: u64,
    /// Next-newer resident version of the same LBA (0 = none).
    next_same_lba: u64,
}

/// Sentinel for "no sequence" in the dense LBA side tables (real
/// sequences start at 1).
const NO_SEQ: u64 = 0;

/// Transfer-ordered writeback cache with epoch accounting.
#[derive(Debug, Clone, Default)]
pub struct WritebackCache {
    /// Entries in transfer order, keyed by transfer sequence number.
    slots: SeqTable<Slot>,
    /// Read-hit index: newest inserted version per LBA (dense, LBA-indexed).
    latest: PagedMap<u64>,
    /// Newest *resident* version per LBA (heads the intrusive chain).
    chain_head: PagedMap<u64>,
    /// Resident entries still in [`EntryState::Dirty`].
    dirty: usize,
    capacity: usize,
    current_epoch: u64,
    next_seq: u64,
}

impl WritebackCache {
    /// Creates a cache holding at most `capacity` block versions.
    pub fn new(capacity: usize) -> WritebackCache {
        WritebackCache {
            slots: SeqTable::new(),
            latest: PagedMap::new(),
            chain_head: PagedMap::new(),
            dirty: 0,
            capacity: capacity.max(1),
            current_epoch: 0,
            next_seq: 1,
        }
    }

    /// Number of resident entries (dirty + destaging).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when at capacity; inserts must wait for a destage.
    pub fn is_full(&self) -> bool {
        self.slots.len() >= self.capacity
    }

    /// The epoch new writes are tagged with.
    pub fn current_epoch(&self) -> u64 {
        self.current_epoch
    }

    #[inline]
    fn side(table: &PagedMap<u64>, lba: Lba) -> u64 {
        table.get(lba.0).unwrap_or(NO_SEQ)
    }

    #[inline]
    fn set_side(table: &mut PagedMap<u64>, lba: Lba, seq: u64) {
        if seq == NO_SEQ {
            table.remove(lba.0);
        } else {
            table.insert(lba.0, seq);
        }
    }

    /// Inserts one transferred block. If `barrier` is set the epoch counter
    /// advances *after* the insert: the barrier write is the last member of
    /// its epoch (§3.2).
    ///
    /// Same-epoch overwrites of a still-dirty entry coalesce in place;
    /// anything else creates a new version. Returns the entry's transfer
    /// sequence number.
    pub fn insert(&mut self, lba: Lba, tag: BlockTag, barrier: bool) -> u64 {
        let prev_seq = Self::side(&self.latest, lba);
        let seq = match self.slots.get_mut(prev_seq) {
            Some(prev)
                if prev.entry.state == EntryState::Dirty
                    && prev.entry.epoch == self.current_epoch =>
            {
                // Safe coalesce: same epoch, program not yet started.
                prev.entry.tag = tag;
                prev_seq
            }
            // No previous version, or one that must stay a separate
            // version (cross-epoch, or already destaging).
            _ => self.push_new(lba, tag),
        };
        if barrier {
            self.current_epoch += 1;
        }
        seq
    }

    fn push_new(&mut self, lba: Lba, tag: BlockTag) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let prev = Self::side(&self.chain_head, lba);
        self.slots.insert(
            seq,
            Slot {
                entry: CacheEntry {
                    lba,
                    tag,
                    epoch: self.current_epoch,
                    state: EntryState::Dirty,
                },
                prev_same_lba: prev,
                next_same_lba: NO_SEQ,
            },
        );
        if let Some(p) = self.slots.get_mut(prev) {
            p.next_same_lba = seq;
        }
        Self::set_side(&mut self.chain_head, lba, seq);
        Self::set_side(&mut self.latest, lba, seq);
        self.dirty += 1;
        seq
    }

    /// Latest cached content for `lba` (read hit), if resident.
    pub fn lookup(&self, lba: Lba) -> Option<BlockTag> {
        self.slots
            .get(Self::side(&self.latest, lba))
            .map(|s| s.entry.tag)
    }

    /// The entry at `seq`, if resident.
    pub fn entry(&self, seq: u64) -> Option<&CacheEntry> {
        self.slots.get(seq).map(|s| &s.entry)
    }

    /// Count of entries not yet being destaged.
    pub fn dirty_count(&self) -> usize {
        self.dirty
    }

    /// The minimum epoch among resident entries, i.e. the epoch that must
    /// finish persisting first under in-order writeback. Epochs are
    /// non-decreasing in transfer order, so this is the oldest resident
    /// entry's epoch.
    pub fn min_pending_epoch(&self) -> Option<u64> {
        self.slots.iter().next().map(|(_, s)| s.entry.epoch)
    }

    /// Sequence numbers of every resident entry, in transfer order: the
    /// snapshot a flush command must drain.
    pub fn pending_seqs(&self) -> Vec<u64> {
        self.slots.iter().map(|(seq, _)| seq).collect()
    }

    /// Destage candidates in transfer order.
    ///
    /// `max_epoch` optionally gates candidates to epochs `<=` the bound
    /// (used by the in-order writeback engine).
    ///
    /// With `lba_ordered` set, an entry is only eligible once every earlier
    /// resident version of the same LBA has been programmed — required for
    /// engines that write in place. A log-structured device (the paper's
    /// UFS firmware) must NOT set it: the FTL appends strictly in transfer
    /// order, and two versions of one LBA are simply two appends, so
    /// holding the newer one back would reorder the append log and break
    /// prefix recovery.
    pub fn destage_candidates(&self, max_epoch: Option<u64>, lba_ordered: bool) -> Vec<u64> {
        let mut out = Vec::new();
        for (seq, slot) in self.slots.iter() {
            // The intrusive chain makes the per-LBA test O(1): an entry is
            // the first resident version of its LBA iff it has no older
            // resident predecessor.
            if lba_ordered && slot.prev_same_lba != NO_SEQ {
                continue;
            }
            if slot.entry.state != EntryState::Dirty {
                continue;
            }
            if let Some(bound) = max_epoch {
                if slot.entry.epoch > bound {
                    continue;
                }
            }
            out.push(seq);
        }
        out
    }

    /// Marks an entry as having a flash program in flight.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSeq`] if `seq` is not resident,
    /// [`CacheError::AlreadyDestaging`] if it already has a program in
    /// flight.
    pub fn mark_destaging(&mut self, seq: u64) -> Result<(), CacheError> {
        let slot = self.slots.get_mut(seq).ok_or(CacheError::UnknownSeq(seq))?;
        if slot.entry.state != EntryState::Dirty {
            return Err(CacheError::AlreadyDestaging(seq));
        }
        slot.entry.state = EntryState::Destaging;
        self.dirty -= 1;
        Ok(())
    }

    /// Removes a fully programmed entry, freeing its slot. Returns it.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownSeq`] if `seq` is not resident — notably a
    /// *duplicate* completion of an already-removed entry, which a caller
    /// replaying device events can drive externally.
    pub fn complete(&mut self, seq: u64) -> Result<CacheEntry, CacheError> {
        let slot = self.slots.remove(seq).ok_or(CacheError::UnknownSeq(seq))?;
        if slot.entry.state == EntryState::Dirty {
            self.dirty -= 1;
        }
        // Unlink from the same-LBA version chain.
        if let Some(p) = self.slots.get_mut(slot.prev_same_lba) {
            p.next_same_lba = slot.next_same_lba;
        }
        if let Some(n) = self.slots.get_mut(slot.next_same_lba) {
            n.prev_same_lba = slot.prev_same_lba;
        }
        if Self::side(&self.chain_head, slot.entry.lba) == seq {
            // Roll the resident head back to the next-older version.
            Self::set_side(&mut self.chain_head, slot.entry.lba, slot.prev_same_lba);
        }
        if Self::side(&self.latest, slot.entry.lba) == seq {
            // Read hits never fall back to an older version: the newest
            // content left the cache, so reads must go to flash.
            Self::set_side(&mut self.latest, slot.entry.lba, NO_SEQ);
        }
        Ok(slot.entry)
    }

    /// All resident entries in transfer order (used for PLP crash images).
    pub fn entries_in_order(&self) -> impl Iterator<Item = (u64, &CacheEntry)> {
        self.slots.iter().map(|(seq, s)| (seq, &s.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut c = WritebackCache::new(8);
        c.insert(Lba(1), BlockTag(10), false);
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(10)));
        assert_eq!(c.lookup(Lba(2)), None);
        assert_eq!(c.len(), 1);
        assert!(!c.is_full());
    }

    #[test]
    fn barrier_advances_epoch_after_insert() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true);
        assert_eq!(
            c.entry(s1).unwrap().epoch,
            0,
            "barrier write is in its own epoch"
        );
        assert_eq!(c.current_epoch(), 1);
        let s2 = c.insert(Lba(2), BlockTag(2), false);
        assert_eq!(c.entry(s2).unwrap().epoch, 1);
    }

    #[test]
    fn same_epoch_overwrite_coalesces() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), false);
        let s2 = c.insert(Lba(1), BlockTag(2), false);
        assert_eq!(s1, s2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(2)));
    }

    #[test]
    fn cross_epoch_overwrite_keeps_versions() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0, barrier
        let s2 = c.insert(Lba(1), BlockTag(2), false); // epoch 1
        assert_ne!(s1, s2);
        assert_eq!(c.len(), 2);
        // Reads see the newest version.
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(2)));
    }

    #[test]
    fn destaging_entry_does_not_coalesce() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), false);
        c.mark_destaging(s1).unwrap();
        let s2 = c.insert(Lba(1), BlockTag(2), false);
        assert_ne!(s1, s2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn candidates_respect_per_lba_order() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0
        let s2 = c.insert(Lba(1), BlockTag(2), false); // epoch 1, same LBA
        let s3 = c.insert(Lba(2), BlockTag(3), false); // epoch 1
        let cands = c.destage_candidates(None, true);
        assert_eq!(cands, vec![s1, s3], "second version of lba 1 must wait");
        // After the first version completes, the second becomes eligible.
        c.mark_destaging(s1).unwrap();
        c.complete(s1).unwrap();
        assert_eq!(c.destage_candidates(None, true), vec![s2, s3]);
    }

    #[test]
    fn candidates_respect_epoch_bound() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0
        let _s2 = c.insert(Lba(2), BlockTag(2), false); // epoch 1
        assert_eq!(c.destage_candidates(Some(0), true), vec![s1]);
        assert_eq!(c.min_pending_epoch(), Some(0));
    }

    #[test]
    fn complete_frees_capacity() {
        let mut c = WritebackCache::new(1);
        let s1 = c.insert(Lba(1), BlockTag(1), false);
        assert!(c.is_full());
        c.mark_destaging(s1).unwrap();
        let e = c.complete(s1).unwrap();
        assert_eq!(e.tag, BlockTag(1));
        assert!(c.is_empty());
        assert_eq!(c.lookup(Lba(1)), None);
    }

    #[test]
    fn complete_older_version_keeps_latest_lookup() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true);
        let _s2 = c.insert(Lba(1), BlockTag(2), false);
        c.mark_destaging(s1).unwrap();
        c.complete(s1).unwrap();
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(2)));
    }

    #[test]
    fn pending_seqs_in_order() {
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true);
        let s2 = c.insert(Lba(2), BlockTag(2), true);
        let s3 = c.insert(Lba(3), BlockTag(3), false);
        assert_eq!(c.pending_seqs(), vec![s1, s2, s3]);
        assert_eq!(c.dirty_count(), 3);
    }

    #[test]
    fn complete_unknown_is_reported_not_panicked() {
        let mut c = WritebackCache::new(4);
        assert_eq!(c.complete(99), Err(CacheError::UnknownSeq(99)));
        // A real entry completed twice: the duplicate is detected.
        let s = c.insert(Lba(1), BlockTag(1), false);
        c.mark_destaging(s).unwrap();
        assert!(c.complete(s).is_ok());
        assert_eq!(c.complete(s), Err(CacheError::UnknownSeq(s)));
        assert!(c.is_empty());
    }

    #[test]
    fn mark_destaging_errors_are_typed() {
        let mut c = WritebackCache::new(4);
        assert_eq!(c.mark_destaging(7), Err(CacheError::UnknownSeq(7)));
        let s = c.insert(Lba(1), BlockTag(1), false);
        c.mark_destaging(s).unwrap();
        assert_eq!(c.mark_destaging(s), Err(CacheError::AlreadyDestaging(s)));
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn newer_version_completion_rolls_chain_head_back() {
        // LFS-mode devices can complete a newer version before an older
        // one; the older version must then become the per-LBA head again
        // and a *new* insert must chain behind it.
        let mut c = WritebackCache::new(8);
        let s1 = c.insert(Lba(1), BlockTag(1), true); // epoch 0
        let s2 = c.insert(Lba(1), BlockTag(2), true); // epoch 1
        c.mark_destaging(s2).unwrap();
        c.complete(s2).unwrap();
        // Newest content left the cache: reads miss.
        assert_eq!(c.lookup(Lba(1)), None);
        let s3 = c.insert(Lba(1), BlockTag(3), false); // epoch 2
                                                       // s1 is still the oldest resident version, so with per-LBA
                                                       // ordering s3 must wait behind it.
        assert_eq!(c.destage_candidates(None, true), vec![s1]);
        assert_eq!(c.lookup(Lba(1)), Some(BlockTag(3)));
        c.mark_destaging(s1).unwrap();
        c.complete(s1).unwrap();
        assert_eq!(c.destage_candidates(None, true), vec![s3]);
    }
}
