//! The flash translation layer: a log-structured mapping from LBAs to
//! physical pages, with segment-granularity garbage collection.
//!
//! The paper's UFS firmware "treats the entire storage as a single log
//! structured device and maintains an active segment in memory. FTL appends
//! incoming data blocks to the active segment in the order in which they
//! are transferred" (§3.2). This module reproduces that design: every
//! destaged block is an *append* with a monotonically increasing sequence
//! number; crash recovery (see [`crate::recovery`]) can therefore truncate
//! the log at the first hole.
//!
//! ## The forward map
//!
//! The LBA → physical-location map is a dense, directly indexed table
//! ([`bio_sim::PagedMap`]), not a hash map: host LBAs are small integers
//! handed out by bump allocators (metadata region, journal, extent
//! allocator), so `map[lba]` is two indexed loads on the per-block hot
//! path — no hashing, no probing. The directory is sized from the segment
//! geometry (`segments × pages_per_segment`, the physical capacity);
//! out-of-range LBAs (the host address space can be sparser than physical
//! capacity — over-provisioning, layout gaps) extend the directory, and
//! only the 4 KiB-entry key pages a workload actually touches are ever
//! allocated. Invariants the map relies on:
//!
//! * each live LBA has exactly one forward entry, and that entry's segment
//!   slot holds the same LBA (checked on invalidation);
//! * the map's length counts exactly the live (mapped) LBAs.

use bio_sim::PagedMap;

use crate::types::{BlockTag, Lba};

/// Physical location of a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysLoc {
    /// Segment index.
    pub segment: usize,
    /// Page slot within the segment.
    pub slot: usize,
}

/// Lifecycle state of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    Free,
    Active,
    Sealed,
}

#[derive(Debug, Clone)]
struct Segment {
    state: SegState,
    /// Per-slot reverse mapping; `None` = slot unused.
    slots: Vec<Option<(Lba, BlockTag)>>,
    /// Slots still referenced by the forward mapping.
    valid: usize,
    /// Next free slot in the active segment.
    fill: usize,
}

impl Segment {
    fn new(pages: usize) -> Segment {
        Segment {
            state: SegState::Free,
            slots: vec![None; pages],
            valid: 0,
            fill: 0,
        }
    }

    fn reset(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.valid = 0;
        self.fill = 0;
        self.state = SegState::Free;
    }
}

/// Summary of one garbage-collection run, returned so the device can charge
/// the time cost to the chip array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcRun {
    /// Victim segment that was erased.
    pub victim: usize,
    /// Number of still-valid pages relocated.
    pub moved_pages: usize,
}

/// Aggregate FTL statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FtlStats {
    /// Host-visible page appends.
    pub host_appends: u64,
    /// Pages moved by GC.
    pub gc_appends: u64,
    /// GC runs executed.
    pub gc_runs: u64,
    /// Segments erased.
    pub erases: u64,
}

impl FtlStats {
    /// Write amplification: (host + GC appends) / host appends.
    pub fn write_amplification(&self) -> f64 {
        if self.host_appends == 0 {
            1.0
        } else {
            (self.host_appends + self.gc_appends) as f64 / self.host_appends as f64
        }
    }
}

/// Log-structured FTL with greedy-victim garbage collection.
#[derive(Debug, Clone)]
pub struct Ftl {
    segments: Vec<Segment>,
    mapping: PagedMap<PhysLoc>,
    free_list: Vec<usize>,
    active: usize,
    pages_per_segment: usize,
    gc_low_watermark: f64,
    stats: FtlStats,
}

impl Ftl {
    /// Creates an FTL with `segments` segments of `pages_per_segment` pages.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two segments or zero pages per segment.
    pub fn new(segments: usize, pages_per_segment: usize, gc_low_watermark: f64) -> Ftl {
        assert!(segments >= 2, "need >= 2 segments");
        assert!(pages_per_segment > 0, "need >= 1 page per segment");
        let mut segs = Vec::with_capacity(segments);
        for _ in 0..segments {
            segs.push(Segment::new(pages_per_segment));
        }
        // Segment 0 starts active; the rest are free.
        segs[0].state = SegState::Active;
        let free_list = (1..segments).rev().collect();
        Ftl {
            segments: segs,
            mapping: PagedMap::with_key_capacity(segments * pages_per_segment),
            free_list,
            active: 0,
            pages_per_segment,
            gc_low_watermark,
            stats: FtlStats::default(),
        }
    }

    /// Number of free segments.
    pub fn free_segments(&self) -> usize {
        self.free_list.len()
    }

    /// True when free space is low enough that the next allocation should
    /// run garbage collection first.
    pub fn gc_needed(&self) -> bool {
        (self.free_list.len() as f64) < (self.segments.len() as f64 * self.gc_low_watermark)
    }

    /// Ensures the active segment has room for the next append, rolling to
    /// a fresh segment (and garbage collecting) when necessary. Returns the
    /// GC run, if one happened, so the caller can charge its time cost to
    /// the chip array *before* scheduling the next program.
    pub fn prepare_append(&mut self) -> Option<GcRun> {
        if self.segments[self.active].fill >= self.pages_per_segment {
            self.roll_active()
        } else {
            None
        }
    }

    /// Appends one host block, invalidating any prior version. Returns the
    /// physical location and, when segment allocation had to garbage
    /// collect, the GC run description so the caller can charge its cost.
    /// Callers that need to charge GC before committing to the append
    /// should call [`Ftl::prepare_append`] first, which makes this cheap.
    pub fn append(&mut self, lba: Lba, tag: BlockTag) -> (PhysLoc, Option<GcRun>) {
        self.stats.host_appends += 1;
        self.append_inner(lba, tag)
    }

    fn append_inner(&mut self, lba: Lba, tag: BlockTag) -> (PhysLoc, Option<GcRun>) {
        let gc = self.prepare_append();
        // Invalidate the previous version.
        if let Some(old) = self.mapping.get(lba.0) {
            let seg = &mut self.segments[old.segment];
            if seg.slots[old.slot].map(|(l, _)| l) == Some(lba) {
                seg.slots[old.slot] = None;
                seg.valid -= 1;
            }
        }
        let seg_idx = self.active;
        let seg = &mut self.segments[seg_idx];
        let slot = seg.fill;
        seg.slots[slot] = Some((lba, tag));
        seg.valid += 1;
        seg.fill += 1;
        let loc = PhysLoc {
            segment: seg_idx,
            slot,
        };
        self.mapping.insert(lba.0, loc);
        (loc, gc)
    }

    /// Seals the active segment and activates a fresh one, garbage
    /// collecting first when space is low.
    fn roll_active(&mut self) -> Option<GcRun> {
        self.segments[self.active].state = SegState::Sealed;
        let mut gc = None;
        if self.gc_needed() {
            gc = self.collect();
        }
        let next = self
            .free_list
            .pop()
            .expect("FTL out of space: GC could not free a segment");
        self.segments[next].state = SegState::Active;
        self.segments[next].fill = 0;
        self.active = next;
        gc
    }

    /// Greedy GC: picks the sealed segment with the fewest valid pages,
    /// relocates its live data into a fresh segment, erases the victim.
    fn collect(&mut self) -> Option<GcRun> {
        let victim = self
            .segments
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state == SegState::Sealed)
            .min_by_key(|(_, s)| s.valid)
            .map(|(i, _)| i)?;
        let moved: Vec<(Lba, BlockTag)> = self.segments[victim]
            .slots
            .iter()
            .flatten()
            .copied()
            .collect();
        // Relocate into a dedicated fresh segment so GC cannot recurse.
        if !moved.is_empty() {
            let dest = self.free_list.pop()?;
            self.segments[dest].state = SegState::Sealed;
            for (i, &(lba, tag)) in moved.iter().enumerate() {
                // A victim segment holds at most pages_per_segment pages, so
                // `dest` always has room.
                let seg = &mut self.segments[dest];
                seg.slots[i] = Some((lba, tag));
                seg.valid += 1;
                seg.fill = i + 1;
                self.mapping.insert(
                    lba.0,
                    PhysLoc {
                        segment: dest,
                        slot: i,
                    },
                );
            }
            self.stats.gc_appends += moved.len() as u64;
        }
        self.segments[victim].reset();
        self.free_list.push(victim);
        self.stats.gc_runs += 1;
        self.stats.erases += 1;
        Some(GcRun {
            victim,
            moved_pages: moved.len(),
        })
    }

    /// Looks up the current physical location of `lba`.
    pub fn lookup(&self, lba: Lba) -> Option<PhysLoc> {
        self.mapping.get(lba.0)
    }

    /// The content tag currently mapped at `lba`, if any.
    pub fn tag_at(&self, lba: Lba) -> Option<BlockTag> {
        let loc = self.lookup(lba)?;
        self.segments[loc.segment].slots[loc.slot].map(|(_, t)| t)
    }

    /// Iterates over all mapped `(lba, tag)` pairs (the durable state).
    pub fn mapped(&self) -> impl Iterator<Item = (Lba, BlockTag)> + '_ {
        self.mapping.iter().filter_map(move |(lba, loc)| {
            self.segments[loc.segment].slots[loc.slot].map(|(_, t)| (Lba(lba), t))
        })
    }

    /// Number of mapped (live) pages.
    pub fn live_pages(&self) -> usize {
        self.mapping.len()
    }

    /// FTL statistics (appends, GC, write amplification).
    pub fn stats(&self) -> FtlStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> Ftl {
        Ftl::new(4, 4, 0.3)
    }

    #[test]
    fn append_then_lookup() {
        let mut f = small_ftl();
        let (loc, gc) = f.append(Lba(7), BlockTag(1));
        assert!(gc.is_none());
        assert_eq!(f.lookup(Lba(7)), Some(loc));
        assert_eq!(f.tag_at(Lba(7)), Some(BlockTag(1)));
        assert_eq!(f.live_pages(), 1);
    }

    #[test]
    fn overwrite_invalidates_old_version() {
        let mut f = small_ftl();
        f.append(Lba(7), BlockTag(1));
        f.append(Lba(7), BlockTag(2));
        assert_eq!(f.tag_at(Lba(7)), Some(BlockTag(2)));
        assert_eq!(f.live_pages(), 1);
        let live: Vec<_> = f.mapped().collect();
        assert_eq!(live, vec![(Lba(7), BlockTag(2))]);
    }

    #[test]
    fn segments_roll_when_full() {
        let mut f = small_ftl();
        for i in 0..5 {
            f.append(Lba(i), BlockTag(i + 1));
        }
        // First segment (4 pages) sealed, fifth append went to a new one.
        assert_eq!(f.live_pages(), 5);
        for i in 0..5 {
            assert_eq!(f.tag_at(Lba(i)), Some(BlockTag(i + 1)));
        }
    }

    #[test]
    fn gc_reclaims_dead_segments() {
        // 4 segments x 4 pages; keep overwriting the same 4 LBAs so old
        // segments become fully dead and GC has trivial victims.
        let mut f = small_ftl();
        for round in 0u64..20 {
            for i in 0..4u64 {
                f.append(Lba(i), BlockTag(round * 4 + i + 1));
            }
        }
        assert_eq!(f.live_pages(), 4);
        assert!(f.stats().gc_runs > 0);
        for i in 0..4u64 {
            assert_eq!(f.tag_at(Lba(i)), Some(BlockTag(76 + i + 1)));
        }
    }

    #[test]
    fn gc_relocates_live_pages() {
        // Fill most of the device with unique (never overwritten) LBAs so
        // the greedy victim is forced to carry live pages.
        let mut f = Ftl::new(8, 8, 0.4);
        for i in 0..52u64 {
            f.append(Lba(i), BlockTag(i + 1));
        }
        // Every LBA must still be readable after GC moved segments around.
        for i in 0..52u64 {
            assert_eq!(f.tag_at(Lba(i)), Some(BlockTag(i + 1)), "lost lba {i}");
        }
        assert!(f.stats().gc_appends > 0, "GC should have moved live pages");
        assert!(f.stats().write_amplification() > 1.0);
        assert_eq!(f.live_pages(), 52);
    }

    #[test]
    fn prepare_append_reports_gc() {
        let mut f = Ftl::new(4, 4, 0.6);
        // No roll needed while the active segment has room.
        f.append(Lba(0), BlockTag(1));
        assert!(f.prepare_append().is_none());
        for i in 1..8u64 {
            f.append(Lba(i), BlockTag(i + 1));
        }
        // Two segments sealed/full, free = 2 < 0.6 * 4: the next roll must
        // garbage collect, relocating live pages from the min-valid victim.
        let gc = f.prepare_append();
        assert!(gc.is_some(), "roll with low free space must GC");
        assert_eq!(gc.unwrap().moved_pages, 4);
    }

    #[test]
    fn stats_count_appends() {
        let mut f = small_ftl();
        f.append(Lba(1), BlockTag(1));
        f.append(Lba(2), BlockTag(2));
        assert_eq!(f.stats().host_appends, 2);
        assert_eq!(f.stats().write_amplification(), 1.0);
    }

    #[test]
    fn free_segment_accounting() {
        let f = small_ftl();
        assert_eq!(f.free_segments(), 3);
        assert!(!f.gc_needed()); // 3 free of 4 > 30%
    }

    #[test]
    #[should_panic(expected = "need >= 2 segments")]
    fn rejects_tiny_config() {
        Ftl::new(1, 4, 0.1);
    }

    #[test]
    #[should_panic(expected = "need >= 1 page per segment")]
    fn rejects_zero_pages() {
        Ftl::new(4, 0, 0.1);
    }

    #[test]
    fn gc_triggers_strictly_below_watermark() {
        // 4 segments, watermark 0.5: the threshold is exactly 2.0 free
        // segments. `gc_needed` is a strict comparison, so free == 2 (the
        // exact boundary) must NOT trigger GC and free == 1 must.
        let mut f = Ftl::new(4, 2, 0.5);
        assert_eq!(f.free_segments(), 3);
        assert!(!f.gc_needed());
        for i in 0..2u64 {
            f.append(Lba(i), BlockTag(i + 1)); // fill segment 0
        }
        f.append(Lba(2), BlockTag(3)); // rolls at free == 3: no GC
        f.append(Lba(3), BlockTag(4)); // fills the second segment
        assert_eq!(f.free_segments(), 2, "boundary state");
        assert!(!f.gc_needed(), "free == segments * watermark is not 'low'");
        // This roll checks GC at exactly the boundary (free == 2.0): the
        // strict comparison must NOT collect.
        assert!(f.prepare_append().is_none(), "exact boundary must not GC");
        assert_eq!(f.free_segments(), 1);
        assert!(f.gc_needed(), "one below the boundary is 'low'");
        f.append(Lba(4), BlockTag(5));
        f.append(Lba(5), BlockTag(6)); // fills the third segment
                                       // Now the roll happens below the watermark and must collect.
        let gc = f.prepare_append();
        assert!(gc.is_some(), "roll below the watermark runs GC");
        assert_eq!(f.stats().gc_runs, 1);
        // All six LBAs survive the relocation.
        for i in 0..6u64 {
            assert_eq!(f.tag_at(Lba(i)), Some(BlockTag(i + 1)));
        }
    }

    #[test]
    fn minimum_geometry_two_segments_one_page() {
        // The smallest legal FTL: every append rolls the single-page
        // active segment, and overwrites must keep GC supplied with dead
        // victims. Mapping integrity must hold throughout.
        let mut f = Ftl::new(2, 1, 0.3);
        for round in 1..=12u64 {
            f.append(Lba(0), BlockTag(round));
            assert_eq!(f.tag_at(Lba(0)), Some(BlockTag(round)));
            assert_eq!(f.live_pages(), 1);
        }
        assert!(f.stats().erases > 0, "tiny geometry must recycle segments");
        // Steady state: one segment active (holding the live page's newest
        // version), the other sealed-dead awaiting the next roll's GC.
        assert_eq!(f.free_segments(), 0);
    }

    #[test]
    fn mapping_integrity_across_forced_gc_cycle() {
        // Force a GC cycle that relocates live pages and verify the whole
        // forward map (not just one LBA) afterwards: every live LBA
        // resolves, resolves to its newest tag, and dead versions are gone.
        let mut f = Ftl::new(4, 4, 0.6);
        for i in 0..8u64 {
            f.append(Lba(i), BlockTag(i + 1));
        }
        // Two sealed segments, free == 1 < 0.6 * 4: next roll must GC and
        // relocate 4 live pages.
        let gc = f.prepare_append().expect("forced GC");
        assert_eq!(gc.moved_pages, 4);
        for i in 0..8u64 {
            assert_eq!(f.tag_at(Lba(i)), Some(BlockTag(i + 1)), "lba {i} lost");
            let loc = f.lookup(Lba(i)).expect("mapped");
            assert_ne!(loc.segment, gc.victim, "mapping points into erased victim");
        }
        assert_eq!(f.live_pages(), 8);
        let mut live: Vec<(Lba, BlockTag)> = f.mapped().collect();
        live.sort();
        assert_eq!(
            live,
            (0..8u64)
                .map(|i| (Lba(i), BlockTag(i + 1)))
                .collect::<Vec<_>>()
        );
    }
}
