//! Flash chip array: models `channels × ways` independently busy flash
//! dies. Each die services one program/read/erase at a time; the array is
//! the source of the device's internal parallelism (§1 of the paper: the
//! multi-channel/way controller is what transfer-and-flush fails to keep
//! busy).

use bio_sim::{SimDuration, SimRng, SimTime};

/// The array of flash dies. Index = `channel * ways + way`.
#[derive(Debug, Clone)]
pub struct ChipArray {
    busy_until: Vec<SimTime>,
    /// Round-robin cursor for spreading work over idle dies.
    cursor: usize,
    /// Total busy time accumulated, for utilisation reporting.
    busy_ns: u128,
}

impl ChipArray {
    /// Creates `n` idle dies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> ChipArray {
        assert!(n > 0, "chip array needs at least one die");
        ChipArray {
            busy_until: vec![SimTime::ZERO; n],
            cursor: 0,
            busy_ns: 0,
        }
    }

    /// Number of dies.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// Always false; the constructor enforces at least one die.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Finds an idle die at `now`, preferring round-robin fairness.
    /// Returns `None` when all dies are busy.
    pub fn find_idle(&mut self, now: SimTime) -> Option<usize> {
        let n = self.busy_until.len();
        for i in 0..n {
            let c = (self.cursor + i) % n;
            if self.busy_until[c] <= now {
                self.cursor = (c + 1) % n;
                return Some(c);
            }
        }
        None
    }

    /// Number of dies idle at `now`.
    pub fn idle_count(&self, now: SimTime) -> usize {
        self.busy_until.iter().filter(|&&t| t <= now).count()
    }

    /// Occupies die `chip` for `dur` starting at `now`, returning the
    /// completion time.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the die is still busy at `now`.
    pub fn start_op(&mut self, chip: usize, now: SimTime, dur: SimDuration) -> SimTime {
        debug_assert!(
            self.busy_until[chip] <= now,
            "die {chip} is busy until {}",
            self.busy_until[chip]
        );
        let done = now + dur;
        self.busy_until[chip] = done;
        self.busy_ns += dur.as_nanos() as u128;
        done
    }

    /// Adds `dur` of busy time to *every* die (used to model a synchronous
    /// GC sweep stealing the whole array).
    pub fn delay_all(&mut self, now: SimTime, dur: SimDuration) {
        for b in &mut self.busy_until {
            let start = (*b).max(now);
            *b = start + dur;
        }
        self.busy_ns += (dur.as_nanos() as u128) * self.busy_until.len() as u128;
    }

    /// Earliest time any die becomes idle.
    pub fn next_idle_at(&self) -> SimTime {
        *self.busy_until.iter().min().expect("non-empty array")
    }

    /// Jittered duration for one operation: normal noise around `base` with
    /// the profile's relative stddev, clamped to ±3σ and never below a
    /// quarter of the base.
    pub fn jittered(base: SimDuration, rel_stddev: f64, rng: &mut SimRng) -> SimDuration {
        if rel_stddev <= 0.0 {
            return base;
        }
        let b = base.as_nanos() as f64;
        let raw = rng.normal(b, b * rel_stddev);
        let clamped = raw.clamp(b * 0.25, b * (1.0 + 3.0 * rel_stddev));
        SimDuration::from_nanos(clamped as u64)
    }

    /// Total die-busy nanoseconds accumulated so far.
    pub fn total_busy_ns(&self) -> u128 {
        self.busy_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn finds_idle_round_robin() {
        let mut a = ChipArray::new(3);
        let t = SimTime::ZERO;
        assert_eq!(a.find_idle(t), Some(0));
        a.start_op(0, t, SimDuration::from_micros(100));
        assert_eq!(a.find_idle(t), Some(1));
        a.start_op(1, t, SimDuration::from_micros(100));
        assert_eq!(a.find_idle(t), Some(2));
        a.start_op(2, t, SimDuration::from_micros(100));
        assert_eq!(a.find_idle(t), None);
        assert_eq!(a.idle_count(t), 0);
    }

    #[test]
    fn ops_complete_and_free_die() {
        let mut a = ChipArray::new(1);
        let done = a.start_op(0, us(10), SimDuration::from_micros(5));
        assert_eq!(done, us(15));
        assert_eq!(a.find_idle(us(14)), None);
        assert_eq!(a.find_idle(us(15)), Some(0));
    }

    #[test]
    fn delay_all_pushes_busy_time() {
        let mut a = ChipArray::new(2);
        a.start_op(0, us(0), SimDuration::from_micros(10));
        a.delay_all(us(0), SimDuration::from_micros(20));
        // die 0: busy till 10, +20 = 30. die 1: idle, 0+20 = 20.
        assert_eq!(a.find_idle(us(19)), None);
        assert_eq!(a.find_idle(us(20)), Some(1));
        assert_eq!(a.find_idle(us(29)), Some(1));
        assert!(a.idle_count(us(30)) == 2);
    }

    #[test]
    fn next_idle_is_min() {
        let mut a = ChipArray::new(2);
        a.start_op(0, us(0), SimDuration::from_micros(30));
        a.start_op(1, us(0), SimDuration::from_micros(10));
        assert_eq!(a.next_idle_at(), us(10));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let mut rng1 = SimRng::new(1);
        let mut rng2 = SimRng::new(1);
        let base = SimDuration::from_micros(1000);
        for _ in 0..500 {
            let d1 = ChipArray::jittered(base, 0.2, &mut rng1);
            let d2 = ChipArray::jittered(base, 0.2, &mut rng2);
            assert_eq!(d1, d2);
            assert!(d1 >= base.mul_f64(0.25));
            assert!(d1 <= base.mul_f64(1.6 + 1e-9));
        }
        assert_eq!(ChipArray::jittered(base, 0.0, &mut rng1), base);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_rejected() {
        ChipArray::new(0);
    }

    #[test]
    fn busy_accounting() {
        let mut a = ChipArray::new(1);
        a.start_op(0, us(0), SimDuration::from_micros(7));
        assert_eq!(a.total_busy_ns(), 7_000);
    }
}
