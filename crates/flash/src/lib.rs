//! # bio-flash — the barrier-compliant flash storage device simulator
//!
//! This crate is the substrate the paper could not ship: a storage device
//! whose firmware honours the **cache barrier** command (eMMC 5.1 / the
//! paper's custom UFS firmware). It models:
//!
//! * a depth-bounded command queue with SCSI priority classes
//!   (`simple` / `ordered` / `head-of-queue`) — the half of
//!   order-preserving dispatch that lives device-side (§3.4),
//! * a host link that serialises DMA transfers (so transfer order is
//!   well-defined),
//! * a writeback cache whose entries carry **barrier epochs** (§3.2),
//! * a log-structured FTL with greedy garbage collection striped over a
//!   `channels × ways` chip array,
//! * `FLUSH`, `FUA` and `BARRIER` command semantics,
//! * four barrier-enforcement engines ([`BarrierMode`]): none (orderless
//!   baseline), in-order writeback, transactional writeback, and the
//!   paper's LFS-style in-order crash recovery,
//! * power-loss injection: [`Device::crash_image`] computes exactly which
//!   block versions survive, and [`audit_epoch_order`] checks the result
//!   against the barrier contract.
//!
//! ```
//! use bio_flash::{Command, CmdId, Device, DeviceProfile, Lba, BlockTag, WriteFlags};
//! use bio_sim::SimTime;
//!
//! let mut dev = Device::new(DeviceProfile::ufs(), 42);
//! let mut actions = Vec::new();
//! let cmd = Command::write(CmdId(1), Lba(0), vec![BlockTag(7)], WriteFlags::BARRIER);
//! dev.submit(cmd, SimTime::ZERO, &mut actions).unwrap();
//! assert!(!actions.is_empty()); // a DMA completion is now scheduled
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod chip;
mod device;
mod ftl;
mod profile;
mod queue;
mod recovery;
mod types;

pub use cache::{CacheEntry, CacheError, EntryState, WritebackCache};
pub use chip::ChipArray;
pub use device::{DevAction, DevEvent, Device, DeviceCaptureDelta, DeviceStats};
pub use ftl::{Ftl, FtlStats, GcRun, PhysLoc};
pub use profile::{BarrierMode, BarrierOverhead, DeviceProfile};
pub use queue::CommandQueue;
pub use recovery::{
    audit_epoch_order, AppendLog, AppendRec, EpochAudit, EpochViolation, ImageView, PersistedImage,
    TransferRec,
};
pub use types::{BlockTag, CmdId, CmdKind, Command, Completion, Lba, Priority, WriteFlags};
