//! The device command queue with SCSI priority semantics (§3.4).
//!
//! Order-preserving dispatch relies on the device honouring three priority
//! classes when it picks the next command to service:
//!
//! * a **head-of-queue** command is serviced before anything else waiting;
//! * an **ordered** command is a fence — it is serviced only after every
//!   earlier-arrived command has *completed*, and no later-arrived command
//!   may start before it;
//! * a **simple** command may be freely reordered, but never across an
//!   incomplete ordered command that arrived before it.
//!
//! Completion (not just service start) is what releases a fence, mirroring
//! the SCSI ordered-tag definition.
//!
//! The in-service set is a small inline slab (a `Vec` sized at the queue
//! depth), not a map: queue depths are 8–64, so linear scans beat hashing
//! and the set never reallocates after construction.

use bio_sim::SimTime;

use crate::types::{CmdId, Command, Priority};

/// A depth-bounded command queue tracking waiting and in-service commands.
///
/// Each waiting command carries its admission time, handed back by
/// [`CommandQueue::pick`]: the admit record rides with the command instead
/// of living in a side map, so it can neither leak when a command leaves
/// through an unusual path nor go missing when service begins.
#[derive(Debug, Clone, Default)]
pub struct CommandQueue {
    waiting: Vec<(u64, SimTime, Command)>,
    /// `(arrival-seq, id, priority)` of commands picked but not yet
    /// completed; a small slab bounded by the queue depth.
    in_service: Vec<(u64, CmdId, Priority)>,
    depth: usize,
    next_arrival: u64,
    /// Peak occupancy, for reporting.
    peak: usize,
}

impl CommandQueue {
    /// Creates a queue admitting at most `depth` commands (waiting plus
    /// in-service), matching the device's advertised queue depth.
    pub fn new(depth: usize) -> CommandQueue {
        let depth = depth.max(1);
        CommandQueue {
            waiting: Vec::with_capacity(depth),
            in_service: Vec::with_capacity(depth),
            depth,
            next_arrival: 0,
            peak: 0,
        }
    }

    /// Commands currently occupying queue slots (waiting + in service).
    pub fn occupancy(&self) -> usize {
        self.waiting.len() + self.in_service.len()
    }

    /// Commands waiting to be picked.
    pub fn waiting_len(&self) -> usize {
        self.waiting.len()
    }

    /// Highest occupancy seen.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// True when another command can be admitted.
    pub fn has_room(&self) -> bool {
        self.occupancy() < self.depth
    }

    /// Admits a command at time `now`, or returns it when the queue is
    /// full (the host must retry later — the "device busy" path of
    /// Fig 6(b)).
    pub fn admit(&mut self, cmd: Command, now: SimTime) -> Result<(), Command> {
        if !self.has_room() {
            return Err(cmd);
        }
        let seq = self.next_arrival;
        self.next_arrival += 1;
        self.waiting.push((seq, now, cmd));
        self.peak = self.peak.max(self.occupancy());
        Ok(())
    }

    /// Picks the next serviceable command under the priority rules, moving
    /// it to the in-service set. Returns the command together with its
    /// admission time; `None` when nothing is eligible.
    pub fn pick(&mut self) -> Option<(Command, SimTime)> {
        let idx = self.pick_index()?;
        let (seq, admitted, cmd) = self.waiting.remove(idx);
        self.in_service.push((seq, cmd.id, cmd.priority));
        Some((cmd, admitted))
    }

    fn pick_index(&self) -> Option<usize> {
        // Head-of-queue jumps every *waiting* command, but (like a
        // non-queued SATA FLUSH) waits for in-flight service to finish so
        // it covers everything transferred before it.
        if let Some(i) = self
            .waiting
            .iter()
            .position(|(_, _, c)| c.priority == Priority::HeadOfQueue)
        {
            if self.in_service.is_empty() {
                return Some(i);
            }
            return None;
        }
        let min_in_service = self.in_service.iter().map(|&(s, _, _)| s).min();
        let ordered_fence_in_service = self
            .in_service
            .iter()
            .filter(|&&(_, _, p)| p == Priority::Ordered)
            .map(|&(s, _, _)| s)
            .min();
        // Waiting list is naturally in arrival order (we only remove).
        for (i, (seq, _, cmd)) in self.waiting.iter().enumerate() {
            match cmd.priority {
                Priority::HeadOfQueue => unreachable!("handled above"),
                Priority::Ordered => {
                    // Every earlier arrival must have completed.
                    let earlier_waiting = i > 0;
                    let earlier_in_service = min_in_service.is_some_and(|m| m < *seq);
                    if !earlier_waiting && !earlier_in_service {
                        return Some(i);
                    }
                    // An unserviceable ordered command also fences
                    // everything after it.
                    return None;
                }
                Priority::Simple => {
                    // Must not pass an incomplete earlier ordered command.
                    let fenced = ordered_fence_in_service.is_some_and(|m| m < *seq);
                    if !fenced {
                        return Some(i);
                    }
                }
            }
        }
        None
    }

    /// Releases the queue slot of a completed command. Returns false (and
    /// changes nothing) when the command was not in service — e.g. a
    /// duplicate completion delivered by a replayed device event.
    pub fn complete(&mut self, id: CmdId) -> bool {
        match self.in_service.iter().position(|&(_, cid, _)| cid == id) {
            Some(i) => {
                self.in_service.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BlockTag, Lba, WriteFlags};

    fn w(id: u64, p: Priority) -> Command {
        Command::write(CmdId(id), Lba(id), vec![BlockTag(id)], WriteFlags::NONE).with_priority(p)
    }

    #[test]
    fn admits_until_depth() {
        let mut q = CommandQueue::new(2);
        assert!(q.admit(w(1, Priority::Simple), SimTime::ZERO).is_ok());
        assert!(q.admit(w(2, Priority::Simple), SimTime::ZERO).is_ok());
        let back = q.admit(w(3, Priority::Simple), SimTime::ZERO);
        assert!(back.is_err(), "third command must bounce");
        assert_eq!(q.occupancy(), 2);
        assert_eq!(q.peak_occupancy(), 2);
    }

    #[test]
    fn in_service_occupies_slot() {
        let mut q = CommandQueue::new(2);
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.pick().unwrap();
        assert_eq!(q.occupancy(), 1);
        assert!(q.admit(w(2, Priority::Simple), SimTime::ZERO).is_ok());
        assert!(q.admit(w(3, Priority::Simple), SimTime::ZERO).is_err());
        q.complete(CmdId(1));
        assert!(q.admit(w(3, Priority::Simple), SimTime::ZERO).is_ok());
    }

    #[test]
    fn simple_commands_fifo() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.admit(w(2, Priority::Simple), SimTime::ZERO).unwrap();
        assert_eq!(q.pick().unwrap().0.id, CmdId(1));
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
        assert!(q.pick().is_none());
    }

    #[test]
    fn head_of_queue_jumps() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.admit(w(2, Priority::HeadOfQueue), SimTime::ZERO).unwrap();
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
        assert_eq!(q.pick().unwrap().0.id, CmdId(1));
    }

    #[test]
    fn ordered_waits_for_earlier_completion() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.admit(w(2, Priority::Ordered), SimTime::ZERO).unwrap();
        assert_eq!(q.pick().unwrap().0.id, CmdId(1));
        // cmd 1 in service (not completed): ordered cmd 2 must wait.
        assert!(q.pick().is_none());
        q.complete(CmdId(1));
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
    }

    #[test]
    fn simple_cannot_pass_waiting_ordered() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.admit(w(2, Priority::Ordered), SimTime::ZERO).unwrap();
        q.admit(w(3, Priority::Simple), SimTime::ZERO).unwrap();
        assert_eq!(q.pick().unwrap().0.id, CmdId(1));
        // Neither the ordered fence nor the later simple may start.
        assert!(q.pick().is_none());
        q.complete(CmdId(1));
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
        // Ordered cmd 2 is in service, still fencing cmd 3.
        assert!(q.pick().is_none());
        q.complete(CmdId(2));
        assert_eq!(q.pick().unwrap().0.id, CmdId(3));
    }

    #[test]
    fn simple_before_ordered_flows_freely() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.admit(w(2, Priority::Simple), SimTime::ZERO).unwrap();
        q.admit(w(3, Priority::Ordered), SimTime::ZERO).unwrap();
        assert_eq!(q.pick().unwrap().0.id, CmdId(1));
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
        assert!(q.pick().is_none(), "ordered waits for both completions");
        q.complete(CmdId(1));
        q.complete(CmdId(2));
        assert_eq!(q.pick().unwrap().0.id, CmdId(3));
    }

    #[test]
    fn consecutive_ordered_commands_serialize() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Ordered), SimTime::ZERO).unwrap();
        q.admit(w(2, Priority::Ordered), SimTime::ZERO).unwrap();
        assert_eq!(q.pick().unwrap().0.id, CmdId(1));
        assert!(q.pick().is_none());
        q.complete(CmdId(1));
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
    }

    #[test]
    fn head_of_queue_jumps_waiting_but_awaits_in_flight() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Ordered), SimTime::ZERO).unwrap();
        q.pick().unwrap();
        q.admit(w(2, Priority::HeadOfQueue), SimTime::ZERO).unwrap();
        q.admit(w(3, Priority::Simple), SimTime::ZERO).unwrap();
        // Like a non-queued FLUSH: waits for the in-flight command...
        assert!(q.pick().is_none());
        q.complete(CmdId(1));
        // ...then jumps ahead of every waiting command.
        assert_eq!(q.pick().unwrap().0.id, CmdId(2));
    }

    #[test]
    fn pick_returns_the_admission_time() {
        let mut q = CommandQueue::new(8);
        q.admit(w(1, Priority::Simple), SimTime::from_micros(5))
            .unwrap();
        q.admit(w(2, Priority::Simple), SimTime::from_micros(9))
            .unwrap();
        let (c1, t1) = q.pick().unwrap();
        let (c2, t2) = q.pick().unwrap();
        assert_eq!((c1.id, t1), (CmdId(1), SimTime::from_micros(5)));
        assert_eq!((c2.id, t2), (CmdId(2), SimTime::from_micros(9)));
    }

    #[test]
    fn complete_unknown_is_rejected() {
        let mut q = CommandQueue::new(2);
        assert!(!q.complete(CmdId(7)), "never-admitted command");
        q.admit(w(1, Priority::Simple), SimTime::ZERO).unwrap();
        q.pick().unwrap();
        assert!(q.complete(CmdId(1)));
        assert!(!q.complete(CmdId(1)), "duplicate completion");
        assert_eq!(q.occupancy(), 0);
    }
}
