//! Crash persistence: the FTL append log, persisted-image computation, and
//! the epoch-ordering audit used by the correctness tests.
//!
//! The paper's UFS firmware recovers by scanning the log-structured segment
//! "from the beginning till it first encounters the page which has not been
//! programmed properly" and discarding the rest (§3.2). [`AppendLog`]
//! reproduces exactly that: every flash program is an append record; a
//! crash image is a replay of the records that survive under the device's
//! barrier-enforcement mode.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::types::{BlockTag, Lba};

/// One append record: a flash program in progress or completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendRec {
    /// Block address.
    pub lba: Lba,
    /// Content version being programmed.
    pub tag: BlockTag,
    /// True once the program completed.
    pub done: bool,
    /// Transactional-writeback group, when that engine is active.
    pub group: Option<u64>,
}

/// The device's append history with a folded durable prefix.
///
/// Records whose durability can never change again are folded into a base
/// map so memory stays bounded on long runs. Ordered maps throughout:
/// crash images flow into golden diffs and differential traces, so their
/// iteration order must be reproducible across processes (the
/// determinism invariant bio-lint enforces).
#[derive(Debug, Clone, Default)]
pub struct AppendLog {
    base: BTreeMap<Lba, BlockTag>,
    entries: VecDeque<AppendRec>,
    /// Append sequence number of `entries[0]`.
    start: u64,
    next: u64,
    /// When tracking is armed, every `(lba, tag)` folded into the base is
    /// also appended here so a capture cursor can replay the fold stream
    /// onto its shared base snapshot instead of re-reading the whole map.
    fold_log: Option<Vec<(Lba, BlockTag)>>,
}

impl AppendLog {
    /// Creates an empty log.
    pub fn new() -> AppendLog {
        AppendLog::default()
    }

    /// Records the start of a flash program, returning its append sequence.
    pub fn begin(&mut self, lba: Lba, tag: BlockTag, group: Option<u64>) -> u64 {
        let seq = self.next;
        self.next += 1;
        self.entries.push_back(AppendRec {
            lba,
            tag,
            done: false,
            group,
        });
        seq
    }

    /// Marks a program as completed.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is unknown or already folded.
    pub fn mark_done(&mut self, seq: u64) {
        let idx = seq.checked_sub(self.start).expect("append already folded") as usize;
        self.entries[idx].done = true;
    }

    /// Folds the longest completed prefix into the base map. Records are
    /// foldable once `done` and (for transactional groups) once their group
    /// committed — after that their durability can no longer change.
    pub fn fold<F: Fn(u64) -> bool>(&mut self, group_committed: F) {
        while let Some(front) = self.entries.front() {
            let committed = front.group.is_none_or(&group_committed);
            if front.done && committed {
                let rec = self.entries.pop_front().expect("front exists");
                self.base.insert(rec.lba, rec.tag);
                if let Some(log) = &mut self.fold_log {
                    log.push((rec.lba, rec.tag));
                }
                self.start += 1;
            } else {
                break;
            }
        }
    }

    /// The folded durable prefix: block address → newest folded version.
    pub fn base(&self) -> &BTreeMap<Lba, BlockTag> {
        &self.base
    }

    /// Arms fold tracking: from now on every fold is also recorded for
    /// [`AppendLog::take_fold_log`]. Off by default so figure runs pay
    /// nothing; the crash engine drains the log at every capture, keeping
    /// it bounded by the writes of one epoch.
    pub fn track_folds(&mut self) {
        if self.fold_log.is_none() {
            self.fold_log = Some(Vec::new());
        }
    }

    /// Drains the folds recorded since the previous take (empty when
    /// tracking was never armed). Replaying them in order onto a base
    /// snapshot taken at the previous capture reproduces [`AppendLog::base`].
    pub fn take_fold_log(&mut self) -> Vec<(Lba, BlockTag)> {
        self.fold_log
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Number of unfolded records.
    pub fn tail_len(&self) -> usize {
        self.entries.len()
    }

    /// Total appends begun.
    pub fn appends(&self) -> u64 {
        self.next
    }

    /// The unfolded tail records, in append order. A record with
    /// `done == false` is a flash program still in flight: whether it
    /// survives a crash is exactly the nondeterminism the crash enumerator
    /// explores.
    pub fn tail(&self) -> impl Iterator<Item = &AppendRec> + '_ {
        self.entries.iter()
    }

    /// Replay of the base plus the tail records selected by `mask`
    /// (`mask.len()` must equal [`AppendLog::tail_len`]), in append order.
    /// `prefix_only` stops at the first deselected record, mirroring the
    /// LFS in-order recovery rule.
    pub fn image_masked(&self, mask: &[bool], prefix_only: bool) -> PersistedImage {
        debug_assert_eq!(mask.len(), self.entries.len());
        let mut map = self.base.clone();
        for (rec, &keep) in self.entries.iter().zip(mask) {
            if keep {
                map.insert(rec.lba, rec.tag);
            } else if prefix_only {
                break;
            }
        }
        PersistedImage { map }
    }

    /// Replay of the base plus every unfolded record matching `keep`,
    /// in append order. `prefix_only` stops at the first rejected record
    /// (the LFS in-order recovery rule).
    pub fn image<F: Fn(&AppendRec) -> bool>(&self, keep: F, prefix_only: bool) -> PersistedImage {
        let mut map = self.base.clone();
        for rec in &self.entries {
            if keep(rec) {
                map.insert(rec.lba, rec.tag);
            } else if prefix_only {
                break;
            }
        }
        PersistedImage { map }
    }
}

/// The storage surface content after a crash: block address → surviving
/// content version. Backed by an ordered map so [`PersistedImage::iter`]
/// is reproducible across processes (callers fold it into recovery
/// checks and differential traces).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistedImage {
    map: BTreeMap<Lba, BlockTag>,
}

impl PersistedImage {
    /// Creates an image from raw contents (used in tests).
    pub fn from_map(map: BTreeMap<Lba, BlockTag>) -> PersistedImage {
        PersistedImage { map }
    }

    /// Content at `lba`, [`BlockTag::UNWRITTEN`] if the block never
    /// persisted.
    pub fn tag(&self, lba: Lba) -> BlockTag {
        self.map.get(&lba).copied().unwrap_or(BlockTag::UNWRITTEN)
    }

    /// Number of blocks with persisted content.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing persisted.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(lba, tag)` pairs in ascending LBA order.
    pub fn iter(&self) -> impl Iterator<Item = (Lba, BlockTag)> + '_ {
        self.map.iter().map(|(&l, &t)| (l, t))
    }

    /// Overlays another set of surviving blocks (e.g. a PLP-protected
    /// cache) on top of this image, in the order given.
    pub fn overlay<I: IntoIterator<Item = (Lba, BlockTag)>>(&mut self, blocks: I) {
        for (lba, tag) in blocks {
            self.map.insert(lba, tag);
        }
    }
}

/// Read access to a crash image: what content (if any) survived at a
/// block. [`PersistedImage`] is the materialized implementation; the
/// crash enumerator provides overlay-backed views that answer the same
/// question without cloning the base map per image.
pub trait ImageView {
    /// Content at `lba`, [`BlockTag::UNWRITTEN`] if nothing survived.
    fn tag(&self, lba: Lba) -> BlockTag;
}

impl ImageView for PersistedImage {
    fn tag(&self, lba: Lba) -> BlockTag {
        PersistedImage::tag(self, lba)
    }
}

/// One host-visible transfer, in transfer order, with its barrier epoch.
/// The device records these (when history recording is enabled) so audits
/// can compare what *should* be orderable with what actually persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferRec {
    /// Transfer order (cache sequence).
    pub seq: u64,
    /// Block address.
    pub lba: Lba,
    /// Content version.
    pub tag: BlockTag,
    /// Barrier epoch of this transfer.
    pub epoch: u64,
}

/// A detected storage-order violation: a block of a *later* epoch persisted
/// while this earlier-epoch transfer was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochViolation {
    /// The transfer that was lost.
    pub lost: TransferRec,
    /// The maximum epoch observed as persisted.
    pub visible_epoch: u64,
}

/// The epoch-order auditor with its per-history tables hoisted out of the
/// per-image loop: the tag → transfer-seq map depends only on the history,
/// so the crash enumerator builds one auditor per fork point and runs it
/// against hundreds of images instead of rebuilding the map every time.
pub struct EpochAudit<'a> {
    history: &'a [TransferRec],
    /// Map each tag to its transfer seq so "at least as new" is decidable.
    seq_of_tag: HashMap<BlockTag, u64>,
}

impl<'a> EpochAudit<'a> {
    /// Precomputes the history-only tables.
    pub fn new(history: &'a [TransferRec]) -> EpochAudit<'a> {
        EpochAudit {
            history,
            seq_of_tag: history.iter().map(|t| (t.tag, t.seq)).collect(),
        }
    }

    /// Audits one crash image against the transfer history.
    ///
    /// Rule: if any transfer of epoch *e* is visible in the image, every
    /// transfer of epochs `< e` must be *persisted or superseded* — the
    /// image must hold, for that block, a version at least as new as the
    /// transfer. Returns every violating transfer (empty = order held).
    pub fn violations<V: ImageView>(&self, image: &V) -> Vec<EpochViolation> {
        let visible_epoch = self
            .history
            .iter()
            .filter(|t| image.tag(t.lba) == t.tag)
            .map(|t| t.epoch)
            .max();
        let Some(visible_epoch) = visible_epoch else {
            return Vec::new(); // nothing persisted at all: trivially ordered
        };

        let mut violations = Vec::new();
        for t in self.history {
            if t.epoch >= visible_epoch {
                continue; // the newest visible epoch itself may be partial
            }
            let img_tag = image.tag(t.lba);
            let img_seq = if img_tag == BlockTag::UNWRITTEN {
                0
            } else {
                self.seq_of_tag.get(&img_tag).copied().unwrap_or(0)
            };
            if img_seq < t.seq {
                violations.push(EpochViolation {
                    lost: *t,
                    visible_epoch,
                });
            }
        }
        violations
    }
}

/// One-shot form of [`EpochAudit`]: builds the auditor and runs a single
/// image through it (the original API; callers with many images per
/// history should hold an auditor instead).
pub fn audit_epoch_order(history: &[TransferRec], image: &PersistedImage) -> Vec<EpochViolation> {
    EpochAudit::new(history).violations(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, lba: u64, tag: u64, epoch: u64) -> TransferRec {
        TransferRec {
            seq,
            lba: Lba(lba),
            tag: BlockTag(tag),
            epoch,
        }
    }

    #[test]
    fn log_replay_done_only() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        let b = log.begin(Lba(2), BlockTag(20), None);
        let _c = log.begin(Lba(3), BlockTag(30), None);
        log.mark_done(a);
        log.mark_done(b);
        let img = log.image(|r| r.done, false);
        assert_eq!(img.tag(Lba(1)), BlockTag(10));
        assert_eq!(img.tag(Lba(2)), BlockTag(20));
        assert_eq!(img.tag(Lba(3)), BlockTag::UNWRITTEN);
        assert_eq!(img.len(), 2);
    }

    #[test]
    fn prefix_rule_truncates_at_hole() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        let b = log.begin(Lba(2), BlockTag(20), None);
        let c = log.begin(Lba(3), BlockTag(30), None);
        log.mark_done(a);
        // b not programmed, c done: LFS recovery must discard c too.
        log.mark_done(c);
        let _ = b;
        let img = log.image(|r| r.done, true);
        assert_eq!(img.tag(Lba(1)), BlockTag(10));
        assert_eq!(img.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(img.tag(Lba(3)), BlockTag::UNWRITTEN, "after-hole discarded");
    }

    #[test]
    fn fold_moves_prefix_to_base() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        let b = log.begin(Lba(2), BlockTag(20), None);
        log.mark_done(a);
        log.fold(|_| true);
        assert_eq!(log.tail_len(), 1);
        log.mark_done(b);
        log.fold(|_| true);
        assert_eq!(log.tail_len(), 0);
        let img = log.image(|_| false, false);
        assert_eq!(img.tag(Lba(1)), BlockTag(10));
        assert_eq!(img.tag(Lba(2)), BlockTag(20));
    }

    #[test]
    fn fold_respects_group_commit() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), Some(5));
        log.mark_done(a);
        log.fold(|_| false); // group 5 not committed
        assert_eq!(log.tail_len(), 1);
        log.fold(|g| g == 5);
        assert_eq!(log.tail_len(), 0);
    }

    #[test]
    fn group_filter_in_image() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), Some(1));
        let b = log.begin(Lba(2), BlockTag(20), Some(2));
        log.mark_done(a);
        log.mark_done(b);
        let img = log.image(|r| r.done && r.group == Some(1), false);
        assert_eq!(img.tag(Lba(1)), BlockTag(10));
        assert_eq!(img.tag(Lba(2)), BlockTag::UNWRITTEN);
    }

    #[test]
    fn overlay_wins() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        log.mark_done(a);
        let mut img = log.image(|r| r.done, false);
        img.overlay([(Lba(1), BlockTag(99)), (Lba(7), BlockTag(70))]);
        assert_eq!(img.tag(Lba(1)), BlockTag(99));
        assert_eq!(img.tag(Lba(7)), BlockTag(70));
    }

    #[test]
    #[should_panic(expected = "append already folded")]
    fn mark_done_after_fold_panics() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        log.mark_done(a);
        log.fold(|_| true);
        log.mark_done(a);
    }

    #[test]
    fn audit_passes_on_prefix_image() {
        let history = vec![rec(1, 10, 100, 0), rec(2, 11, 101, 0), rec(3, 12, 102, 1)];
        // Epoch 0 fully persisted, epoch 1 lost: fine.
        let img =
            PersistedImage::from_map([(Lba(10), BlockTag(100)), (Lba(11), BlockTag(101))].into());
        assert!(audit_epoch_order(&history, &img).is_empty());
        // Nothing persisted: fine.
        assert!(audit_epoch_order(&history, &PersistedImage::default()).is_empty());
    }

    #[test]
    fn audit_detects_lost_earlier_epoch() {
        let history = vec![rec(1, 10, 100, 0), rec(2, 12, 102, 1)];
        // Epoch 1 visible but epoch 0's block missing: violation.
        let img = PersistedImage::from_map([(Lba(12), BlockTag(102))].into());
        let v = audit_epoch_order(&history, &img);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lost.lba, Lba(10));
        assert_eq!(v[0].visible_epoch, 1);
    }

    #[test]
    fn audit_accepts_superseding_overwrite() {
        // Epoch 0 writes lba 10 (tag 100); epoch 1 overwrites it (tag 200)
        // and also writes lba 11. Image holds the *newer* version of 10 and
        // the epoch-1 block: no violation (the old version is superseded).
        let history = vec![rec(1, 10, 100, 0), rec(2, 10, 200, 1), rec(3, 11, 201, 1)];
        let img =
            PersistedImage::from_map([(Lba(10), BlockTag(200)), (Lba(11), BlockTag(201))].into());
        assert!(audit_epoch_order(&history, &img).is_empty());
    }

    #[test]
    fn audit_detects_old_version_regression() {
        // Epoch 1 visible, but lba 10 rolled back to the epoch-0 version
        // after an epoch-1 overwrite was lost — that loses an epoch-1 write,
        // allowed only for the newest visible epoch. Here epoch 2 is also
        // visible, so the epoch-1 overwrite must have persisted.
        let history = vec![rec(1, 10, 100, 0), rec(2, 10, 200, 1), rec(3, 11, 300, 2)];
        let img =
            PersistedImage::from_map([(Lba(10), BlockTag(100)), (Lba(11), BlockTag(300))].into());
        let v = audit_epoch_order(&history, &img);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].lost.tag, BlockTag(200));
    }

    #[test]
    fn partial_newest_epoch_is_allowed() {
        let history = vec![rec(1, 10, 100, 0), rec(2, 11, 101, 1), rec(3, 12, 102, 1)];
        // Epoch 1 partially persisted (one of two blocks): allowed, because
        // nothing *newer* than epoch 1 is visible.
        let img =
            PersistedImage::from_map([(Lba(10), BlockTag(100)), (Lba(12), BlockTag(102))].into());
        assert!(audit_epoch_order(&history, &img).is_empty());
    }
}
