//! Device profiles: the parameter sets that stand in for the paper's three
//! test devices (plus extras for the Fig 1 parallelism sweep).
//!
//! | Paper device | Preset | Notes |
//! |---|---|---|
//! | Galaxy S6 UFS 2.0, QD 16, single channel | [`DeviceProfile::ufs`] | native barrier (LFS in-order recovery) |
//! | 850 PRO, SATA 3.0, QD 32, 8 channels | [`DeviceProfile::plain_ssd`] | barrier emulated with 5% penalty |
//! | 843TN, SATA 3.0, QD 32, 8 channels, supercap | [`DeviceProfile::supercap_ssd`] | PLP: flush is ~free, barrier is free |
//! | HDD (Fig 1 reference points) | [`DeviceProfile::hdd`] | rotational flush penalty |
//! | 32-channel flash array (Fig 1 device G) | [`DeviceProfile::flash_array`] | parametric channel count |
//!
//! Latency constants are calibrated so the *baseline* (EXT4, full flush)
//! fsync latencies land near Table 1 of the paper (UFS ≈ 1.3 ms, plain-SSD
//! ≈ 6 ms, supercap ≈ 0.15 ms). See EXPERIMENTS.md for measured values.

use bio_sim::SimDuration;

/// How the device honours the cache-barrier command (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BarrierMode {
    /// Device does not support barrier writes; the writeback cache destages
    /// in whatever order it likes. Orderless baseline.
    #[default]
    Unsupported,
    /// Destage strictly epoch by epoch: all pages of epoch *n* programmed
    /// before any page of epoch *n+1* starts (in-order writeback).
    InOrderWriteback,
    /// Destage the whole cache as one atomic unit (transactional writeback);
    /// a crash discards incomplete units entirely.
    Transactional,
    /// Program freely but recover in order: the FTL appends in transfer
    /// order and crash recovery truncates the log at the first
    /// incompletely-programmed page (the paper's UFS implementation).
    LfsInOrderRecovery,
}

impl BarrierMode {
    /// True if this mode can honour `REQ_BARRIER` semantics.
    pub fn supports_barrier(self) -> bool {
        !matches!(self, BarrierMode::Unsupported)
    }
}

/// Extra cost applied to barrier-flagged writes, mirroring the paper's
/// "5% performance penalty to simulate the barrier overhead" on plain SSD.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BarrierOverhead {
    /// No overhead (supercap device, or native firmware support).
    #[default]
    Free,
    /// Service time of barrier writes inflated by this fraction.
    Fraction(f64),
}

impl BarrierOverhead {
    /// Multiplier applied to the service time of a barrier write.
    pub fn factor(self) -> f64 {
        match self {
            BarrierOverhead::Free => 1.0,
            BarrierOverhead::Fraction(f) => 1.0 + f.max(0.0),
        }
    }
}

/// Full parameter set for a simulated device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name used in reports.
    pub name: String,
    /// Command queue depth (paper: UFS 16, SATA 32).
    pub queue_depth: usize,
    /// Independent flash channels.
    pub channels: usize,
    /// Ways (chips) per channel; `channels * ways` programs can proceed
    /// concurrently.
    pub ways: usize,
    /// Time to program one 4 KiB page into a flash cell.
    pub page_program: SimDuration,
    /// Relative jitter (stddev / mean) applied to each program.
    pub program_jitter: f64,
    /// Time to read one 4 KiB page from a flash cell.
    pub page_read: SimDuration,
    /// Time to erase a flash segment (GC cost).
    pub segment_erase: SimDuration,
    /// Host-link transfer time per 4 KiB block (DMA).
    pub dma_per_block: SimDuration,
    /// Fixed per-command link/protocol overhead.
    pub cmd_overhead: SimDuration,
    /// Writeback cache capacity, in 4 KiB blocks.
    pub cache_blocks: usize,
    /// Dirty-block fraction above which background destaging kicks in.
    pub destage_watermark: f64,
    /// Fixed controller-side latency for a flush command (drives the
    /// supercap `t_eps` of §4.4); cache-drain time comes on top unless the
    /// device has PLP.
    pub flush_overhead: SimDuration,
    /// Power-loss protection (supercapacitor): cache contents are always
    /// durable, flush is `flush_overhead` only, barrier is free.
    pub plp: bool,
    /// How the device enforces barrier semantics.
    pub barrier_mode: BarrierMode,
    /// Performance cost of a barrier write.
    pub barrier_overhead: BarrierOverhead,
    /// Number of flash segments (GC granularity).
    pub segments: usize,
    /// Pages per segment.
    pub pages_per_segment: usize,
    /// Free-segment fraction that triggers garbage collection.
    pub gc_low_watermark: f64,
}

impl DeviceProfile {
    /// Mobile UFS 2.0 device (paper's smartphone storage): QD 16, single
    /// channel, slow TLC programming, native barrier support via LFS-style
    /// in-order recovery.
    pub fn ufs() -> DeviceProfile {
        DeviceProfile {
            name: "UFS".to_string(),
            queue_depth: 16,
            channels: 1,
            ways: 16, // effective: dies x planes (16 KiB pages program 4 blocks)
            page_program: SimDuration::from_micros(450), // per 4 KiB effective
            program_jitter: 0.25,
            page_read: SimDuration::from_micros(70),
            segment_erase: SimDuration::from_millis(4),
            dma_per_block: SimDuration::from_micros(25),
            cmd_overhead: SimDuration::from_micros(60),
            cache_blocks: 512,
            destage_watermark: 0.5,
            flush_overhead: SimDuration::from_micros(150),
            plp: false,
            barrier_mode: BarrierMode::LfsInOrderRecovery,
            barrier_overhead: BarrierOverhead::Free,
            segments: 256,
            pages_per_segment: 256,
            gc_low_watermark: 0.08,
        }
    }

    /// Server SATA SSD without power-loss protection (paper's 850 PRO):
    /// QD 32, 8 channels, barrier emulated at a 5% penalty.
    pub fn plain_ssd() -> DeviceProfile {
        DeviceProfile {
            name: "plain-SSD".to_string(),
            queue_depth: 32,
            channels: 8,
            ways: 4,
            page_program: SimDuration::from_micros(325), // per 4 KiB effective (16 KiB MLC pages)
            program_jitter: 0.2,
            page_read: SimDuration::from_micros(60),
            segment_erase: SimDuration::from_millis(5),
            dma_per_block: SimDuration::from_micros(8),
            cmd_overhead: SimDuration::from_micros(40),
            cache_blocks: 4096,
            destage_watermark: 0.5,
            flush_overhead: SimDuration::from_micros(400),
            plp: false,
            // The paper emulates the barrier on this device as a flat 5%
            // penalty (§6.1); LFS-style recovery matches that: ordering is
            // honoured by recovery, not by serialising the writeback.
            barrier_mode: BarrierMode::LfsInOrderRecovery,
            barrier_overhead: BarrierOverhead::Fraction(0.05),
            segments: 512,
            pages_per_segment: 512,
            gc_low_watermark: 0.08,
        }
    }

    /// Server SATA SSD with a supercapacitor (paper's 843TN): the writeback
    /// cache is durable, so flush costs only the command round-trip and
    /// barrier ordering is free (§3.2: "supporting a barrier command is
    /// trivial" under PLP).
    pub fn supercap_ssd() -> DeviceProfile {
        DeviceProfile {
            name: "supercap-SSD".to_string(),
            queue_depth: 32,
            channels: 8,
            ways: 4,
            page_program: SimDuration::from_micros(300), // per 4 KiB effective
            program_jitter: 0.2,
            page_read: SimDuration::from_micros(60),
            segment_erase: SimDuration::from_millis(5),
            dma_per_block: SimDuration::from_micros(8),
            cmd_overhead: SimDuration::from_micros(40),
            cache_blocks: 4096,
            destage_watermark: 0.5,
            flush_overhead: SimDuration::from_micros(25),
            plp: true,
            barrier_mode: BarrierMode::Transactional,
            barrier_overhead: BarrierOverhead::Free,
            segments: 512,
            pages_per_segment: 512,
            gc_low_watermark: 0.08,
        }
    }

    /// A rotating hard drive, for the Fig 1 reference points: tiny
    /// parallelism and a large rotational flush penalty.
    pub fn hdd() -> DeviceProfile {
        DeviceProfile {
            name: "HDD".to_string(),
            queue_depth: 32,
            channels: 1,
            ways: 1,
            page_program: SimDuration::from_millis(3), // seek + settle per random 4K
            program_jitter: 0.4,
            page_read: SimDuration::from_millis(3),
            segment_erase: SimDuration::ZERO,
            dma_per_block: SimDuration::from_micros(30),
            cmd_overhead: SimDuration::from_micros(20),
            cache_blocks: 2048,
            destage_watermark: 0.5,
            flush_overhead: SimDuration::from_millis(8), // rotational drain
            plp: false,
            barrier_mode: BarrierMode::Unsupported,
            barrier_overhead: BarrierOverhead::Free,
            segments: 64,
            pages_per_segment: 4096,
            gc_low_watermark: 0.0,
        }
    }

    /// A parametric multi-channel flash array for the Fig 1 sweep
    /// (device G is a 32-channel array). Program/DMA constants follow the
    /// plain-SSD profile; only parallelism varies.
    pub fn flash_array(channels: usize) -> DeviceProfile {
        let mut p = DeviceProfile::plain_ssd();
        p.name = format!("flash-array-{channels}ch");
        p.channels = channels.max(1);
        p.ways = 4;
        p.queue_depth = 32.max(channels * 2);
        p.cache_blocks = 1024 * channels.max(1);
        p
    }

    /// An eMMC 5.0-class mobile device (Fig 1 device A): slower single
    /// channel part with a shallow queue.
    pub fn emmc() -> DeviceProfile {
        DeviceProfile {
            name: "eMMC5.0".to_string(),
            queue_depth: 8,
            channels: 1,
            ways: 4,
            page_program: SimDuration::from_micros(800), // per 4 KiB effective
            program_jitter: 0.3,
            page_read: SimDuration::from_micros(120),
            segment_erase: SimDuration::from_millis(6),
            dma_per_block: SimDuration::from_micros(70),
            cmd_overhead: SimDuration::from_micros(80),
            cache_blocks: 128,
            destage_watermark: 0.5,
            flush_overhead: SimDuration::from_micros(250),
            plp: false,
            barrier_mode: BarrierMode::InOrderWriteback,
            barrier_overhead: BarrierOverhead::Free,
            segments: 128,
            pages_per_segment: 128,
            gc_low_watermark: 0.08,
        }
    }

    /// Total number of concurrent flash programs the device sustains.
    pub fn parallelism(&self) -> usize {
        self.channels * self.ways
    }

    /// Logical capacity in 4 KiB blocks, leaving the configured
    /// over-provisioning headroom for GC.
    pub fn logical_blocks(&self) -> u64 {
        let physical = (self.segments * self.pages_per_segment) as u64;
        // 12.5% over-provisioning, floor of one segment.
        physical - (physical / 8).max(self.pages_per_segment as u64)
    }

    /// Builder-style override of the barrier mode.
    pub fn with_barrier_mode(mut self, mode: BarrierMode) -> DeviceProfile {
        self.barrier_mode = mode;
        self
    }

    /// Builder-style override of the queue depth.
    pub fn with_queue_depth(mut self, qd: usize) -> DeviceProfile {
        self.queue_depth = qd.max(1);
        self
    }

    /// Validates internal consistency; called by `Device::new`.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero.
    pub fn validate(&self) {
        assert!(self.queue_depth > 0, "queue_depth must be positive");
        assert!(self.channels > 0 && self.ways > 0, "need at least one chip");
        assert!(self.cache_blocks > 0, "cache must hold at least one block");
        assert!(
            self.segments > 1 && self.pages_per_segment > 0,
            "need at least two segments for GC"
        );
        assert!(
            (0.0..=1.0).contains(&self.destage_watermark),
            "watermark must be a fraction"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for p in [
            DeviceProfile::ufs(),
            DeviceProfile::plain_ssd(),
            DeviceProfile::supercap_ssd(),
            DeviceProfile::hdd(),
            DeviceProfile::emmc(),
            DeviceProfile::flash_array(32),
        ] {
            p.validate();
            assert!(p.logical_blocks() > 0);
        }
    }

    #[test]
    fn paper_queue_depths() {
        assert_eq!(DeviceProfile::ufs().queue_depth, 16);
        assert_eq!(DeviceProfile::plain_ssd().queue_depth, 32);
        assert_eq!(DeviceProfile::supercap_ssd().queue_depth, 32);
    }

    #[test]
    fn supercap_is_plp_and_free_barrier() {
        let p = DeviceProfile::supercap_ssd();
        assert!(p.plp);
        assert_eq!(p.barrier_overhead.factor(), 1.0);
        assert!(p.barrier_mode.supports_barrier());
    }

    #[test]
    fn plain_ssd_has_5pct_barrier_penalty() {
        let p = DeviceProfile::plain_ssd();
        assert!((p.barrier_overhead.factor() - 1.05).abs() < 1e-12);
    }

    #[test]
    fn parallelism_scales_with_channels() {
        assert_eq!(DeviceProfile::flash_array(32).parallelism(), 128);
        assert_eq!(DeviceProfile::ufs().parallelism(), 16);
    }

    #[test]
    fn logical_blocks_leave_overprovisioning() {
        let p = DeviceProfile::plain_ssd();
        let physical = (p.segments * p.pages_per_segment) as u64;
        assert!(p.logical_blocks() < physical);
    }

    #[test]
    fn builders_override() {
        let p = DeviceProfile::ufs()
            .with_barrier_mode(BarrierMode::Unsupported)
            .with_queue_depth(4);
        assert_eq!(p.barrier_mode, BarrierMode::Unsupported);
        assert_eq!(p.queue_depth, 4);
        assert!(!p.barrier_mode.supports_barrier());
    }

    #[test]
    #[should_panic(expected = "queue_depth")]
    fn validate_rejects_zero_qd() {
        let mut p = DeviceProfile::ufs();
        p.queue_depth = 0;
        p.validate();
    }
}
