//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! Implements only the API surface this workspace's benches use (see
//! `crates/compat/README.md`): benchmark groups, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurements are simple
//! wall-clock timings printed to stdout — enough to spot order-of-magnitude
//! regressions locally and to keep `cargo bench --no-run` compiling in CI.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to `criterion_group!` benchmark functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            sample_size,
        }
    }

    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` over `sample_size` samples and prints a summary line.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    // One untimed warm-up sample.
    f(&mut b);
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            times.push(b.elapsed / b.iters);
        }
    }
    times.sort();
    if times.is_empty() {
        println!("  {id}: no samples");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    println!(
        "  {id}: min {:?}  mean {:?}  max {:?}  ({} samples)",
        times[0],
        mean,
        times[times.len() - 1],
        times.len()
    );
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times repeated calls of `routine`, black-boxing its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`]. Mirrors criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench` (and test filters); this runner
            // has no filtering, so arguments are accepted and ignored.
            $( $group(); )+
        }
    };
}
