//! Vendored minimal stand-in for the `proptest` property-testing harness.
//!
//! Implements only the API surface this workspace's tests use (see
//! `crates/compat/README.md`): the [`proptest!`] macro, [`Strategy`] for
//! integer ranges, [`collection::vec`], [`ProptestConfig`], and the
//! `prop_assert*` macros. Inputs are generated from a fixed per-case seed,
//! so every run — local or CI — exercises the same deterministic cases and
//! any failure message pinpoints a reproducible case index. No shrinking.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies (minimal subset).

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of type `Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// `Strategy` is object-safe enough for our use via `&S`; blanket-impl
    /// references so strategies can be passed without moving.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    // Tuple strategies, like the real crate's: each component generates in
    // order, so `(0u64..10, 0u8..4)` yields pairs. Used by the event-queue
    // property tests for `(time, payload)` schedules and the dense-index
    // equivalence suites for `(op, lba, selector, flag)` workloads.
    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
    );
}

pub mod bool {
    //! Boolean strategies, mirroring `proptest::bool`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;
}

pub mod collection {
    //! Strategies for collections (minimal subset).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy for `Vec`s of `element` values, `size` elements
    /// long (half-open range, like `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner behind the [`proptest!`] macro.

    /// Per-test configuration; only `cases` is supported.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of deterministic cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property, carrying the formatted assertion message.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64: tiny, dependency-free, deterministic per `(test, case)`.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one named test. The name participates in
        /// the seed so distinct tests see distinct streams.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed =
                0x9e37_79b9_7f4a_7c15u64 ^ (case as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            for b in test_name.bytes() {
                seed = seed.rotate_left(8) ^ (b as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
            }
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Declares deterministic property tests. Supports the subset of the real
/// macro's grammar used in this repository:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// docs
///     #[test]
///     fn my_property(x in 0u64..10, v in prop::collection::vec(0u8..4, 1..9)) {
///         prop_assert_eq!(x, x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Implementation detail of [`proptest!`]: expands each test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
