//! [`ExperimentGrid`] — independent experiment cells on a worker pool.
//!
//! Every figure/table of the paper is a grid of independent simulation
//! cells: one `(StackConfig, workload, seed)` combination per cell, no
//! shared state between cells (each builds its own `IoStack`). The grid
//! abstraction makes that explicit: experiments enqueue cells as closures,
//! then run them either serially or on a `std::thread::scope` worker pool
//! (no external dependencies — the build environment is offline).
//!
//! Results come back **in cell-enqueue order regardless of worker
//! scheduling**, and cells never print; callers assemble and print tables
//! only after `run` returns. Serial and parallel runs of the same grid
//! therefore produce byte-identical output — `tests/grid_determinism.rs`
//! locks that in, and CI diffs a serial vs parallel `figures` run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count override set by `figures --jobs N` (0 = auto).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Total cells executed in this process (the CI smoke job reports this).
static CELLS_RUN: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count (0 restores auto).
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count `ExperimentGrid::run` uses: the `set_default_jobs`
/// override if set, otherwise the machine's available parallelism.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// Cells executed so far in this process, across all grids.
pub fn cells_run() -> usize {
    CELLS_RUN.load(Ordering::Relaxed)
}

struct Cell<R> {
    label: String,
    run: Box<dyn FnOnce() -> R + Send>,
}

/// An ordered collection of independent experiment cells producing `R`.
pub struct ExperimentGrid<R> {
    cells: Vec<Cell<R>>,
}

impl<R> Default for ExperimentGrid<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R> ExperimentGrid<R> {
    /// An empty grid.
    pub fn new() -> Self {
        ExperimentGrid { cells: Vec::new() }
    }

    /// Number of enqueued cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are enqueued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Cell labels, in enqueue (= result) order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.cells.iter().map(|c| c.label.as_str())
    }

    /// Enqueues one cell. The closure must be self-contained (build its
    /// own stack, return plain data, print nothing).
    pub fn push(&mut self, label: impl Into<String>, run: impl FnOnce() -> R + Send + 'static) {
        self.cells.push(Cell {
            label: label.into(),
            run: Box::new(run),
        });
    }
}

impl<R: Send> ExperimentGrid<R> {
    /// Runs every cell with the process-default worker count and returns
    /// the results in enqueue order.
    pub fn run(self) -> Vec<R> {
        let jobs = default_jobs();
        self.run_with(jobs)
    }

    /// Runs every cell on `jobs` workers (`<= 1` runs serially on the
    /// calling thread). Results are in enqueue order either way; a
    /// panicking cell propagates its panic to the caller.
    pub fn run_with(self, jobs: usize) -> Vec<R> {
        let n = self.cells.len();
        CELLS_RUN.fetch_add(n, Ordering::Relaxed);
        if jobs <= 1 || n <= 1 {
            return self.cells.into_iter().map(|c| (c.run)()).collect();
        }
        // Work-stealing by atomic index: workers claim the next unstarted
        // cell, so long cells don't serialise behind short ones. Each
        // result lands in its cell's slot — order is by index, never by
        // completion time.
        let work: Vec<Mutex<Option<Cell<R>>>> = self
            .cells
            .into_iter()
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("cell claimed twice");
                    let r = (cell.run)();
                    *results[i].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker pool ran every claimed cell")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_enqueue_order() {
        let mut g: ExperimentGrid<usize> = ExperimentGrid::new();
        for i in 0..32 {
            // Uneven cell costs: later cells finish first under
            // parallelism unless ordering is enforced.
            g.push(format!("cell{i}"), move || {
                std::thread::sleep(std::time::Duration::from_micros(((32 - i) * 200) as u64));
                i
            });
        }
        assert_eq!(g.len(), 32);
        assert_eq!(g.run_with(8), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let build = || {
            let mut g: ExperimentGrid<u64> = ExperimentGrid::new();
            for i in 0..10u64 {
                g.push(format!("c{i}"), move || i * i);
            }
            g
        };
        assert_eq!(build().run_with(1), build().run_with(4));
    }

    #[test]
    fn labels_track_cells() {
        let mut g: ExperimentGrid<()> = ExperimentGrid::new();
        g.push("a", || ());
        g.push("b", || ());
        assert_eq!(g.labels().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
