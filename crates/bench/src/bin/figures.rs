//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p bio-bench --release --bin figures -- --all
//! cargo run -p bio-bench --release --bin figures -- --fig 9 --fig 11
//! cargo run -p bio-bench --release --bin figures -- --table 1 --scale 4
//! cargo run -p bio-bench --release --bin figures -- --all --jobs 1   # serial
//! ```
//!
//! Experiment cells run on a worker pool (`--jobs`, default: all cores).
//! Results are assembled in deterministic order, so `--jobs 1` and
//! `--jobs N` print byte-identical tables — CI diffs the two. A run
//! summary (`[grid] cells=.. jobs=.. elapsed_ms=..`) goes to stderr to
//! keep stdout clean for that diff.

use bio_bench::{cli, experiments};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match cli::parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            print_help();
            std::process::exit(2);
        }
    };
    if opts.help || (opts.wanted.is_empty() && !opts.crash_enum) {
        print_help();
        return;
    }
    if let Some(jobs) = opts.jobs {
        bio_bench::set_default_jobs(jobs);
    }
    let crash_enum = opts.crash_enum;
    let (wanted, scale, crash_seeds) = (opts.wanted, opts.scale, opts.crash_seeds);
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let started = std::time::Instant::now();

    println!("Barrier-Enabled IO Stack — experiment harness (scale {scale})");
    if want("fig1") {
        experiments::fig01(scale);
    }
    if want("fig8") {
        experiments::fig08(scale);
    }
    if want("fig9") {
        experiments::fig09(scale);
    }
    if want("fig10") {
        experiments::fig10(scale);
    }
    if want("table1") {
        experiments::table1(scale);
    }
    if want("fig11") {
        experiments::fig11(scale);
    }
    if want("fig12") {
        experiments::fig12(scale);
    }
    if want("fig13") {
        experiments::fig13(scale);
    }
    if want("fig14") {
        experiments::fig14(scale);
    }
    if want("fig15") {
        experiments::fig15(scale);
    }
    if want("fig16") {
        experiments::fig16(scale);
    }
    if want("fig17") {
        experiments::fig17(scale);
    }
    if want("figengines") || want("figbarrier-engine") || all {
        experiments::ablation_engines(scale);
    }
    if want("figcrash") || all {
        experiments::ablation_crash(crash_seeds);
    }
    // Opt-in only (never under --all): the exhaustive differential crash
    // enumeration. Non-zero exit on cross-stack divergence so CI can gate.
    let mut divergent = false;
    if crash_enum {
        let t0 = std::time::Instant::now();
        let report = bio_bench::crash::run(crash_seeds);
        let secs = t0.elapsed().as_secs_f64();
        // Throughput goes to stderr: stdout stays byte-identical between
        // capture modes (BIO_FORK_CAPTURE) and machines.
        eprintln!(
            "[crash-enum] points={} elapsed_s={:.2} points_per_s={:.0}",
            report.total_points,
            secs,
            report.total_points as f64 / secs.max(f64::MIN_POSITIVE),
        );
        divergent = !report.divergences.is_empty();
    }
    eprintln!(
        "[grid] cells={} jobs={} elapsed_ms={}",
        bio_bench::cells_run(),
        bio_bench::default_jobs(),
        started.elapsed().as_millis()
    );
    if divergent {
        eprintln!("crash-enum: cross-stack divergence detected");
        std::process::exit(3);
    }
}

fn print_help() {
    println!(
        "usage: figures [--all] [--fig N]... [--table 1] [--scale K] [--seeds N] [--jobs J]\n\
         \x20      [--crash-enum]\n\
         figures: 1, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, engines, crash; table: 1\n\
         --scale multiplies run length (1 = quick); --jobs bounds the\n\
         experiment-grid worker pool (>= 1; 1 = serial, default: all cores)\n\
         --crash-enum runs the exhaustive differential crash enumeration\n\
         (--seeds traces per stack; exits 3 on cross-stack divergence)"
    );
}
