//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p bio-bench --release --bin figures -- --all
//! cargo run -p bio-bench --release --bin figures -- --fig 9 --fig 11
//! cargo run -p bio-bench --release --bin figures -- --table 1 --scale 4
//! cargo run -p bio-bench --release --bin figures -- --all --jobs 1   # serial
//! ```
//!
//! Experiment cells run on a worker pool (`--jobs`, default: all cores).
//! Results are assembled in deterministic order, so `--jobs 1` and
//! `--jobs N` print byte-identical tables — CI diffs the two. A run
//! summary (`[grid] cells=.. jobs=.. elapsed_ms=..`) goes to stderr to
//! keep stdout clean for that diff.

use bio_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut scale: u64 = 1;
    let mut crash_seeds: u64 = 20;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all" => wanted.push("all".into()),
            "--jobs" => {
                i += 1;
                let jobs = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(0);
                bio_bench::set_default_jobs(jobs);
            }
            "--fig" => {
                i += 1;
                wanted.push(format!(
                    "fig{}",
                    args.get(i).map(String::as_str).unwrap_or("")
                ));
            }
            "--table" => {
                i += 1;
                wanted.push(format!(
                    "table{}",
                    args.get(i).map(String::as_str).unwrap_or("")
                ));
            }
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);
            }
            "--seeds" => {
                i += 1;
                crash_seeds = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(20);
            }
            "--help" | "-h" => {
                print_help();
                return;
            }
            other => {
                eprintln!("unknown argument: {other}");
                print_help();
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if wanted.is_empty() {
        print_help();
        return;
    }
    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);
    let started = std::time::Instant::now();

    println!("Barrier-Enabled IO Stack — experiment harness (scale {scale})");
    if want("fig1") {
        experiments::fig01(scale);
    }
    if want("fig8") {
        experiments::fig08(scale);
    }
    if want("fig9") {
        experiments::fig09(scale);
    }
    if want("fig10") {
        experiments::fig10(scale);
    }
    if want("table1") {
        experiments::table1(scale);
    }
    if want("fig11") {
        experiments::fig11(scale);
    }
    if want("fig12") {
        experiments::fig12(scale);
    }
    if want("fig13") {
        experiments::fig13(scale);
    }
    if want("fig14") {
        experiments::fig14(scale);
    }
    if want("fig15") {
        experiments::fig15(scale);
    }
    if want("figengines") || want("figbarrier-engine") || all {
        experiments::ablation_engines(scale);
    }
    if want("figcrash") || all {
        experiments::ablation_crash(crash_seeds);
    }
    eprintln!(
        "[grid] cells={} jobs={} elapsed_ms={}",
        bio_bench::cells_run(),
        bio_bench::default_jobs(),
        started.elapsed().as_millis()
    );
}

fn print_help() {
    println!(
        "usage: figures [--all] [--fig N]... [--table 1] [--scale K] [--seeds N] [--jobs J]\n\
         figures: 1, 8, 9, 10, 11, 12, 13, 14, 15, engines, crash; table: 1\n\
         --scale multiplies run length (1 = quick); --jobs bounds the\n\
         experiment-grid worker pool (1 = serial, default: all cores)"
    );
}
