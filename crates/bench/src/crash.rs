//! Exhaustive crash-point enumeration with differential recovery checking.
//!
//! The legacy ablation ([`crate::experiments::ablation_crash`]) samples one
//! random wall-clock crash per seed and replays the whole trace from t=0 for
//! every sample. This module is the fork-based replacement: each trace runs
//! **once**, the whole stack is forked ([`barrier_io::IoStack::fork`]) at
//! every barrier-epoch boundary (journal commit), and for every fork point
//! the enumerator walks *all* persisted images the device's barrier mode
//! admits for the in-flight flash programs:
//!
//! * [`BarrierMode::LfsInOrderRecovery`] — firmware recovery truncates at
//!   the first unprogrammed page (§3.2), so the admissible images are the
//!   n+1 tail prefixes cut at each in-flight program ("first hole").
//! * [`BarrierMode::InOrderWriteback`] / [`BarrierMode::Unsupported`] — any
//!   subset of in-flight programs may have retired: 2^n images.
//! * [`BarrierMode::Transactional`] — uncommitted groups land
//!   all-or-nothing: one bit per open group.
//! * PLP (supercap) devices yield a single image: everything survives.
//!
//! Subset/group spaces are clamped to [`MAX_FREE_BITS`] free choices per
//! device and [`MAX_IMAGES_PER_POINT`] images per fork point; clamping is
//! counted and reported, never silent. Images that collapse to identical
//! surviving block versions are deduplicated before checking.
//!
//! **Differential recovery**: the same op trace runs against EXT4-DR,
//! BFS-DR and BFS-OD; fork points align across stacks by commit count.
//! Every enumerated image must recover to a clean transaction prefix (no
//! commit-order / torn-transaction / ordered-data / durability-loss
//! violation and no epoch-order violation). A stack that violates where a
//! peer stays clean at the same aligned point is a cross-stack divergence,
//! reported as a minimized `(trace seed, fork point, reordering choice)`
//! triple.

use std::collections::{BTreeMap, HashMap, HashSet};

use barrier_io::{
    check_crash_consistency, DeviceProfile, FileRef, IoStack, StackConfig, Topology, TxnRecord,
};
use bio_flash::{
    audit_epoch_order, AppendLog, AppendRec, BarrierMode, BlockTag, Lba, PersistedImage,
    TransferRec,
};
use bio_sim::SimDuration;
use bio_workloads::{RandWrite, SyncMode, WriteMode};

use crate::{print_table, ExperimentGrid};

/// Free nondeterministic program-completion bits enumerated per device
/// (2^8 = 256 subsets before clamping kicks in).
pub const MAX_FREE_BITS: usize = 8;

/// Hard cap on enumerated images per fork point (cross-device product).
pub const MAX_IMAGES_PER_POINT: u64 = 256;

/// Syncs per differential trace; each write+sync pair forces one journal
/// commit, i.e. one fork point.
const TRACE_OPS: u64 = 100;

/// Steps without a new commit after which a trace is considered drained
/// (guards against self-perpetuating timer events).
const STALE_STEP_LIMIT: u64 = 200_000;

// ---------------------------------------------------------------------
// Fork-point snapshot (plain data, `Send`).
// ---------------------------------------------------------------------

/// Plain-data snapshot of one device at a fork point, extracted from a
/// forked stack so it can shard across the grid's worker pool.
#[derive(Debug, Clone)]
pub struct DeviceState {
    log: AppendLog,
    cache: Vec<(Lba, BlockTag)>,
    plp: bool,
    mode: BarrierMode,
    committed: HashSet<u64>,
    history: Option<Vec<TransferRec>>,
}

/// Everything needed to enumerate and check one fork point: the ground
/// truth transaction records plus per-device append-log state.
#[derive(Debug, Clone)]
pub struct CrashPoint {
    /// Commit count at the fork (the cross-stack alignment key).
    pub commit_idx: usize,
    /// Ground-truth transaction records at the fork.
    pub records: Vec<TxnRecord>,
    devices: Vec<DeviceState>,
    topology: Topology,
}

/// Snapshots a (freshly forked) stack into a plain-data crash point.
pub fn extract_point(stack: &IoStack) -> CrashPoint {
    let records = stack.fs().records().to_vec();
    let devices = stack
        .devices()
        .iter()
        .map(|d| DeviceState {
            log: d.append_log().clone(),
            cache: d
                .cache()
                .entries_in_order()
                .map(|(_, e)| (e.lba, e.tag))
                .collect(),
            plp: d.profile().plp,
            mode: d.profile().barrier_mode,
            committed: d.committed_groups().collect(),
            history: d.history().map(|h| h.to_vec()),
        })
        .collect();
    CrashPoint {
        commit_idx: records.len(),
        records,
        devices,
        topology: stack.config().topology,
    }
}

// ---------------------------------------------------------------------
// Admissible-image enumeration.
// ---------------------------------------------------------------------

/// The reordering choice space of one device at one fork point.
#[derive(Debug, Clone)]
enum ChoiceSpace {
    /// PLP: a single image, everything (including the cache) survives.
    Single,
    /// LFS in-order recovery: hole positions (tail indices of in-flight
    /// programs); choice `c` cuts the prefix at `holes[c]`, choice
    /// `holes.len()` keeps the full tail.
    Prefix(Vec<usize>),
    /// Orderless / in-order writeback: free in-flight indices, one bit
    /// each (bit set = that program retired before power loss).
    Subset(Vec<usize>),
    /// Transactional writeback: open (uncommitted) groups, one
    /// all-or-nothing bit each.
    Groups(Vec<u64>),
}

impl ChoiceSpace {
    fn n_choices(&self) -> u64 {
        match self {
            ChoiceSpace::Single => 1,
            ChoiceSpace::Prefix(holes) => holes.len() as u64 + 1,
            ChoiceSpace::Subset(free) => 1u64 << free.len(),
            ChoiceSpace::Groups(gs) => 1u64 << gs.len(),
        }
    }
}

impl DeviceState {
    /// The admissible choice space under this device's barrier mode, plus
    /// whether the space had to be clamped to [`MAX_FREE_BITS`].
    fn choice_space(&self) -> (ChoiceSpace, bool) {
        if self.plp {
            return (ChoiceSpace::Single, false);
        }
        let inflight: Vec<usize> = self
            .log
            .tail()
            .enumerate()
            .filter(|(_, r)| !r.done)
            .map(|(i, _)| i)
            .collect();
        match self.mode {
            BarrierMode::LfsInOrderRecovery => (ChoiceSpace::Prefix(inflight), false),
            BarrierMode::InOrderWriteback | BarrierMode::Unsupported => {
                let clamped = inflight.len() > MAX_FREE_BITS;
                let mut free = inflight;
                free.truncate(MAX_FREE_BITS);
                (ChoiceSpace::Subset(free), clamped)
            }
            BarrierMode::Transactional => {
                let mut groups: Vec<u64> = Vec::new();
                for r in self.log.tail() {
                    if let Some(g) = r.group {
                        if !self.committed.contains(&g) && !groups.contains(&g) {
                            groups.push(g);
                        }
                    }
                }
                let clamped = groups.len() > MAX_FREE_BITS;
                groups.truncate(MAX_FREE_BITS);
                (ChoiceSpace::Groups(groups), clamped)
            }
        }
    }

    /// The persisted image for one choice. Choice 0 always reproduces the
    /// device's own deterministic [`bio_flash::Device::crash_image`].
    fn image_for(&self, space: &ChoiceSpace, choice: u64) -> PersistedImage {
        let tail: Vec<AppendRec> = self.log.tail().copied().collect();
        match space {
            ChoiceSpace::Single => {
                let mut img = self.log.image(|_| true, false);
                img.overlay(self.cache.iter().copied());
                img
            }
            ChoiceSpace::Prefix(holes) => {
                let cut = holes.get(choice as usize).copied().unwrap_or(tail.len());
                let mask: Vec<bool> = (0..tail.len()).map(|i| i < cut).collect();
                self.log.image_masked(&mask, true)
            }
            ChoiceSpace::Subset(free) => {
                let mut mask: Vec<bool> = tail.iter().map(|r| r.done).collect();
                for (bit, &idx) in free.iter().enumerate() {
                    if choice & (1 << bit) != 0 {
                        mask[idx] = true;
                    }
                }
                self.log.image_masked(&mask, false)
            }
            ChoiceSpace::Groups(gs) => {
                let survive: HashSet<u64> = gs
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| choice & (1 << *bit) != 0)
                    .map(|(_, &g)| g)
                    .collect();
                let committed = &self.committed;
                self.log.image(
                    |r| {
                        r.done
                            && r.group
                                .is_none_or(|g| committed.contains(&g) || survive.contains(&g))
                    },
                    false,
                )
            }
        }
    }
}

/// Stripes per-device images into one global image (identity for 1×1).
fn combine(p: &CrashPoint, locals: &[PersistedImage]) -> PersistedImage {
    if p.topology.is_single() {
        return locals[0].clone();
    }
    let mut map = BTreeMap::new();
    for (di, img) in locals.iter().enumerate() {
        for (local, tag) in img.iter() {
            map.insert(p.topology.global(di, local), tag);
        }
    }
    PersistedImage::from_map(map)
}

/// Runs both checkers over one choice combination: returns
/// `(fs violations, epoch violations, first violation rendered)`.
fn check_choice(p: &CrashPoint, spaces: &[ChoiceSpace], choices: &[u64]) -> (usize, usize, String) {
    let locals: Vec<PersistedImage> = p
        .devices
        .iter()
        .zip(spaces)
        .zip(choices)
        .map(|((d, s), &c)| d.image_for(s, c))
        .collect();
    let global = combine(p, &locals);
    let fsv = check_crash_consistency(&p.records, &global);
    let mut epv = 0usize;
    let mut detail = String::new();
    for (d, img) in p.devices.iter().zip(&locals) {
        if let Some(h) = &d.history {
            let v = audit_epoch_order(h, img);
            if detail.is_empty() {
                if let Some(first) = v.first() {
                    detail = format!("{first:?}");
                }
            }
            epv += v.len();
        }
    }
    if detail.is_empty() {
        if let Some(first) = fsv.first() {
            detail = format!("{first:?}");
        }
    }
    (fsv.len(), epv, detail)
}

/// A violating reordering, minimized: per-device choice ids after greedy
/// reduction toward the deterministic baseline (choice 0).
#[derive(Debug, Clone)]
pub struct ViolationCase {
    /// Per-device reordering choice (bitmask or hole index).
    pub choices: Vec<u64>,
    /// Filesystem-level violations at this choice.
    pub fs_violations: usize,
    /// Device epoch-order violations at this choice.
    pub epoch_violations: usize,
    /// First violation, rendered.
    pub detail: String,
}

/// Greedily shrinks a violating choice combination: clears subset/group
/// bits and lowers prefix cuts while the combination still violates.
fn minimize(p: &CrashPoint, spaces: &[ChoiceSpace], mut choices: Vec<u64>) -> Vec<u64> {
    let violates = |c: &[u64]| {
        let (f, e, _) = check_choice(p, spaces, c);
        f + e > 0
    };
    for _ in 0..4 {
        let mut changed = false;
        for (di, space) in spaces.iter().enumerate() {
            match space {
                ChoiceSpace::Single => {}
                ChoiceSpace::Prefix(_) => {
                    for c in 0..choices[di] {
                        let mut t = choices.clone();
                        t[di] = c;
                        if violates(&t) {
                            choices = t;
                            changed = true;
                            break;
                        }
                    }
                }
                ChoiceSpace::Subset(_) | ChoiceSpace::Groups(_) => {
                    let bits = match space {
                        ChoiceSpace::Subset(free) => free.len(),
                        ChoiceSpace::Groups(gs) => gs.len(),
                        _ => unreachable!(),
                    };
                    for bit in 0..bits {
                        if choices[di] & (1 << bit) != 0 {
                            let mut t = choices.clone();
                            t[di] &= !(1u64 << bit);
                            if violates(&t) {
                                choices = t;
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    choices
}

/// Outcome of enumerating one fork point.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Commit count at the fork (alignment key).
    pub commit_idx: usize,
    /// Distinct images checked (crash points explored).
    pub images: u64,
    /// Equivalent images skipped by dedup.
    pub duplicates: u64,
    /// True when the choice space was clamped (bit budget or image cap).
    pub clamped: bool,
    /// Total filesystem violations over all distinct images.
    pub fs_violations: u64,
    /// Total epoch-order violations over all distinct images.
    pub epoch_violations: u64,
    /// First violating reordering, minimized.
    pub worst: Option<ViolationCase>,
}

/// Enumerates every admissible image at one fork point, deduplicates, and
/// checks each against the journal ground truth and the epoch contract.
pub fn enumerate_point(p: &CrashPoint) -> PointOutcome {
    let mut spaces = Vec::with_capacity(p.devices.len());
    let mut clamped = false;
    for d in &p.devices {
        let (s, c) = d.choice_space();
        clamped |= c;
        spaces.push(s);
    }
    let counts: Vec<u64> = spaces.iter().map(|s| s.n_choices()).collect();
    let product: u128 = counts.iter().map(|&c| c as u128).product();
    clamped |= product > MAX_IMAGES_PER_POINT as u128;

    let mut out = PointOutcome {
        commit_idx: p.commit_idx,
        images: 0,
        duplicates: 0,
        clamped,
        fs_violations: 0,
        epoch_violations: 0,
        worst: None,
    };
    let mut seen: HashSet<Vec<(u64, u64)>> = HashSet::new();
    let mut choices = vec![0u64; spaces.len()];
    let mut visited = 0u64;
    loop {
        visited += 1;
        let locals: Vec<PersistedImage> = p
            .devices
            .iter()
            .zip(&spaces)
            .zip(&choices)
            .map(|((d, s), &c)| d.image_for(s, c))
            .collect();
        let global = combine(p, &locals);
        let mut key: Vec<(u64, u64)> = global.iter().map(|(l, t)| (l.0, t.0)).collect();
        key.sort_unstable();
        if seen.insert(key) {
            out.images += 1;
            let fsv = check_crash_consistency(&p.records, &global);
            let mut epv = 0usize;
            for (d, img) in p.devices.iter().zip(&locals) {
                if let Some(h) = &d.history {
                    epv += audit_epoch_order(h, img).len();
                }
            }
            out.fs_violations += fsv.len() as u64;
            out.epoch_violations += epv as u64;
            if (!fsv.is_empty() || epv > 0) && out.worst.is_none() {
                let min = minimize(p, &spaces, choices.clone());
                let (f, e, detail) = check_choice(p, &spaces, &min);
                out.worst = Some(ViolationCase {
                    choices: min,
                    fs_violations: f,
                    epoch_violations: e,
                    detail,
                });
            }
        } else {
            out.duplicates += 1;
        }
        if visited >= MAX_IMAGES_PER_POINT {
            break;
        }
        // Odometer over the per-device choice counts.
        let mut di = 0;
        loop {
            if di == choices.len() {
                return out;
            }
            choices[di] += 1;
            if choices[di] < counts[di] {
                break;
            }
            choices[di] = 0;
            di += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Trace driving: fork at every commit boundary.
// ---------------------------------------------------------------------

/// Result of one (stack, trace) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Fork-point outcomes in commit order.
    pub points: Vec<PointOutcome>,
}

/// Builds one differential trace cell: a single thread of `TRACE_OPS`
/// write+sync pairs over a 64-block region, 1 µs journal tick.
fn trace_stack(mut cfg: StackConfig, sync: SyncMode, seed: u64) -> IoStack {
    cfg.seed = seed;
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    let f = stack.create_global_file();
    stack.add_thread(Box::new(RandWrite::new(
        FileRef::Global(f),
        64,
        WriteMode::SyncEach(sync),
        TRACE_OPS,
    )));
    stack
}

/// Runs one trace to completion, forking the stack at every journal
/// commit and enumerating the fork point's admissible crash images.
pub fn enumerate_trace(cfg: StackConfig, sync: SyncMode, seed: u64) -> CellOutcome {
    let mut stack = trace_stack(cfg, sync, seed);
    let mut points = Vec::new();
    let mut commits = 0usize;
    let mut stale = 0u64;
    while stack.step() {
        let n = stack.fs().records().len();
        if n > commits {
            commits = n;
            stale = 0;
            // The tentpole in one line: snapshot the whole stack at the
            // epoch boundary instead of replaying from t=0.
            let snap = stack.fork();
            points.push(enumerate_point(&extract_point(&snap)));
        } else {
            stale += 1;
            if stale > STALE_STEP_LIMIT {
                break;
            }
        }
    }
    CellOutcome { points }
}

/// Legacy single-sample crash cell (the ablation table's unit of work):
/// run for `dur`, inject one wall-clock crash, count violations.
pub fn sampled_crash_violations(mut cfg: StackConfig, sync: SyncMode, dur: SimDuration) -> u64 {
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    let f = stack.create_global_file();
    stack.add_thread(Box::new(RandWrite::new(
        FileRef::Global(f),
        64,
        WriteMode::SyncEach(sync),
        100,
    )));
    stack.run_for(dur);
    let crash = stack.crash();
    (crash.fs_violations.len() + crash.epoch_violations.len()) as u64
}

// ---------------------------------------------------------------------
// Differential harness across EXT4-DR / BFS-DR / BFS-OD.
// ---------------------------------------------------------------------

/// Per-stack aggregate over all traces.
#[derive(Debug, Clone)]
pub struct StackRow {
    /// Stack label (`EXT4-DR`, `BFS-DR`, `BFS-OD`).
    pub label: &'static str,
    /// Traces run.
    pub traces: u64,
    /// Fork points (journal commits) visited.
    pub fork_points: u64,
    /// Distinct crash images enumerated and checked.
    pub images: u64,
    /// Equivalent images skipped by dedup.
    pub duplicates: u64,
    /// Fork points whose choice space was clamped.
    pub clamped_points: u64,
    /// Filesystem violations summed over all images.
    pub fs_violations: u64,
    /// Epoch-order violations summed over all images.
    pub epoch_violations: u64,
}

/// A cross-stack divergence: at an aligned `(trace, fork point)` this
/// stack violated while a peer stayed clean, minimized to the smallest
/// reordering choice that still violates.
#[derive(Debug, Clone)]
pub struct DivergenceTriple {
    /// Trace seed.
    pub seed: u64,
    /// Commit count at the fork (alignment key).
    pub commit_idx: usize,
    /// The violating stack.
    pub stack: &'static str,
    /// Minimized per-device reordering choice.
    pub choices: Vec<u64>,
    /// First violation, rendered.
    pub detail: String,
}

/// Full report of one differential crash-enumeration run.
#[derive(Debug, Clone)]
pub struct CrashEnumReport {
    /// Per-stack aggregates.
    pub rows: Vec<StackRow>,
    /// Total distinct crash points explored across all stacks.
    pub total_points: u64,
    /// Cross-stack divergences (empty = all stacks agree).
    pub divergences: Vec<DivergenceTriple>,
}

/// One differential stack: label, config constructor, sync flavour.
type DiffStack = (&'static str, fn() -> StackConfig, SyncMode);

/// The three differential stacks, all over the paper's barrier UFS: the
/// flush-based baseline and the two BarrierFS disciplines must agree.
fn diff_stacks() -> Vec<DiffStack> {
    fn ext4_dr() -> StackConfig {
        StackConfig::ext4_dr(DeviceProfile::ufs()).with_history()
    }
    fn bfs_dr() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs()).with_history()
    }
    fn bfs_od() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs())
            .ordering_only()
            .with_history()
    }
    vec![
        ("EXT4-DR", ext4_dr, SyncMode::Fsync),
        ("BFS-DR", bfs_dr, SyncMode::Fsync),
        ("BFS-OD", bfs_od, SyncMode::Fbarrier),
    ]
}

/// Runs the differential crash enumeration over `traces` seeds per stack,
/// sharded across the grid pool, prints the per-stack table (and the
/// divergence table when non-empty), and returns the report.
pub fn run(traces: u64) -> CrashEnumReport {
    let stacks = diff_stacks();
    let mut grid = ExperimentGrid::new();
    for (label, mk_cfg, sync) in &stacks {
        let (label, mk_cfg, sync) = (*label, *mk_cfg, *sync);
        for seed in 0..traces {
            grid.push(format!("crashenum/{label}/seed{seed}"), move || {
                enumerate_trace(mk_cfg(), sync, seed)
            });
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), stacks.len() * traces as usize);

    let mut rows = Vec::new();
    let mut divergences = Vec::new();
    let cells: Vec<&[CellOutcome]> = results.chunks((traces as usize).max(1)).collect();
    for ((label, _, _), chunk) in stacks.iter().zip(&cells) {
        let mut row = StackRow {
            label,
            traces,
            fork_points: 0,
            images: 0,
            duplicates: 0,
            clamped_points: 0,
            fs_violations: 0,
            epoch_violations: 0,
        };
        for cell in *chunk {
            row.fork_points += cell.points.len() as u64;
            for p in &cell.points {
                row.images += p.images;
                row.duplicates += p.duplicates;
                row.clamped_points += p.clamped as u64;
                row.fs_violations += p.fs_violations;
                row.epoch_violations += p.epoch_violations;
            }
        }
        rows.push(row);
    }

    // Differential fold: align per-seed fork points by commit count; any
    // point where the violation verdicts differ across stacks is a
    // divergence for each violating stack.
    for seed in 0..traces as usize {
        let per_stack: Vec<HashMap<usize, &PointOutcome>> = cells
            .iter()
            .map(|chunk| {
                chunk[seed]
                    .points
                    .iter()
                    .map(|p| (p.commit_idx, p))
                    .collect()
            })
            .collect();
        let aligned: HashSet<usize> = per_stack
            .iter()
            .flat_map(|m| m.keys().copied())
            .filter(|k| per_stack.iter().all(|m| m.contains_key(k)))
            .collect();
        let mut aligned: Vec<usize> = aligned.into_iter().collect();
        aligned.sort_unstable();
        for k in aligned {
            let verdicts: Vec<bool> = per_stack.iter().map(|m| m[&k].worst.is_some()).collect();
            if verdicts.iter().any(|&v| v) && verdicts.iter().any(|&v| !v) {
                for ((label, _, _), m) in stacks.iter().zip(&per_stack) {
                    if let Some(case) = &m[&k].worst {
                        divergences.push(DivergenceTriple {
                            seed: seed as u64,
                            commit_idx: k,
                            stack: label,
                            choices: case.choices.clone(),
                            detail: case.detail.clone(),
                        });
                    }
                }
            }
        }
    }

    let total_points: u64 = rows.iter().map(|r| r.images).sum();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.traces.to_string(),
                r.fork_points.to_string(),
                r.images.to_string(),
                r.duplicates.to_string(),
                r.clamped_points.to_string(),
                r.fs_violations.to_string(),
                r.epoch_violations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Crash enumeration — exhaustive per-epoch crash images (differential)",
        &[
            "stack",
            "traces",
            "fork points",
            "crash points",
            "dedup-skipped",
            "clamped",
            "fs violations",
            "epoch violations",
        ],
        &table,
    );
    println!(
        "total crash points explored: {total_points}; cross-stack divergences: {}",
        divergences.len()
    );
    if !divergences.is_empty() {
        let rows: Vec<Vec<String>> = divergences
            .iter()
            .take(10)
            .map(|d| {
                vec![
                    d.stack.to_string(),
                    d.seed.to_string(),
                    d.commit_idx.to_string(),
                    format!("{:?}", d.choices),
                    d.detail.clone(),
                ]
            })
            .collect();
        print_table(
            "Cross-stack divergences (minimized reordering triples)",
            &[
                "stack",
                "trace seed",
                "fork point",
                "choice",
                "first violation",
            ],
            &rows,
        );
    }
    CrashEnumReport {
        rows,
        total_points,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev_state(mode: BarrierMode, plp: bool, log: AppendLog) -> DeviceState {
        DeviceState {
            log,
            cache: Vec::new(),
            plp,
            mode,
            committed: HashSet::new(),
            history: None,
        }
    }

    /// log with entries: done, in-flight, done, in-flight.
    fn mixed_log() -> AppendLog {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        let _b = log.begin(Lba(2), BlockTag(20), None);
        let c = log.begin(Lba(3), BlockTag(30), None);
        let _d = log.begin(Lba(4), BlockTag(40), None);
        log.mark_done(a);
        log.mark_done(c);
        log
    }

    #[test]
    fn lfs_space_is_prefixes() {
        let d = dev_state(BarrierMode::LfsInOrderRecovery, false, mixed_log());
        let (space, clamped) = d.choice_space();
        assert!(!clamped);
        assert_eq!(space.n_choices(), 3); // holes at idx 1 and 3, plus "none"
                                          // Choice 0 == the deterministic crash image (prefix to first hole).
        let img0 = d.image_for(&space, 0);
        assert_eq!(img0.tag(Lba(1)), BlockTag(10));
        assert_eq!(img0.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(img0.tag(Lba(3)), BlockTag::UNWRITTEN);
        // Choice 1: first in-flight made it, hole at idx 3.
        let img1 = d.image_for(&space, 1);
        assert_eq!(img1.tag(Lba(2)), BlockTag(20));
        assert_eq!(img1.tag(Lba(3)), BlockTag(30));
        assert_eq!(img1.tag(Lba(4)), BlockTag::UNWRITTEN);
        // Choice 2: everything made it.
        let img2 = d.image_for(&space, 2);
        assert_eq!(img2.tag(Lba(4)), BlockTag(40));
    }

    #[test]
    fn orderless_space_is_subsets() {
        let d = dev_state(BarrierMode::Unsupported, false, mixed_log());
        let (space, clamped) = d.choice_space();
        assert!(!clamped);
        assert_eq!(space.n_choices(), 4); // two free bits
                                          // Choice 0 == done-only image.
        let img0 = d.image_for(&space, 0);
        assert_eq!(img0.len(), 2);
        // Bit 1 (second in-flight, idx 3) alone: out-of-order survival the
        // LFS mode cannot produce.
        let img = d.image_for(&space, 0b10);
        assert_eq!(img.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(img.tag(Lba(4)), BlockTag(40));
    }

    #[test]
    fn subset_space_clamps_to_bit_budget() {
        let mut log = AppendLog::new();
        for i in 0..12 {
            log.begin(Lba(i), BlockTag(100 + i), None);
        }
        let d = dev_state(BarrierMode::Unsupported, false, log);
        let (space, clamped) = d.choice_space();
        assert!(clamped);
        assert_eq!(space.n_choices(), 1 << MAX_FREE_BITS);
    }

    #[test]
    fn transactional_groups_all_or_nothing() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), Some(7));
        let b = log.begin(Lba(2), BlockTag(20), Some(7));
        let c = log.begin(Lba(3), BlockTag(30), None);
        log.mark_done(a);
        log.mark_done(b);
        log.mark_done(c);
        let d = dev_state(BarrierMode::Transactional, false, log);
        let (space, _) = d.choice_space();
        assert_eq!(space.n_choices(), 2); // one open group
        let lost = d.image_for(&space, 0);
        assert_eq!(lost.tag(Lba(1)), BlockTag::UNWRITTEN);
        assert_eq!(lost.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(lost.tag(Lba(3)), BlockTag(30));
        let survived = d.image_for(&space, 1);
        assert_eq!(survived.tag(Lba(1)), BlockTag(10));
        assert_eq!(survived.tag(Lba(2)), BlockTag(20));
    }

    #[test]
    fn plp_is_single_image_with_cache() {
        let mut d = dev_state(BarrierMode::Unsupported, true, mixed_log());
        d.cache.push((Lba(9), BlockTag(90)));
        let (space, _) = d.choice_space();
        assert_eq!(space.n_choices(), 1);
        let img = d.image_for(&space, 0);
        assert_eq!(img.tag(Lba(2)), BlockTag(20)); // even in-flight survives
        assert_eq!(img.tag(Lba(9)), BlockTag(90)); // cache overlaid
    }

    #[test]
    fn enumerate_point_dedups_equivalent_images() {
        // Two in-flight appends to the SAME lba with the same eventual
        // winner collapse some subsets into identical images.
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        log.mark_done(a);
        log.begin(Lba(2), BlockTag(20), None);
        log.begin(Lba(2), BlockTag(21), None);
        let p = CrashPoint {
            commit_idx: 0,
            records: Vec::new(),
            devices: vec![dev_state(BarrierMode::Unsupported, false, log)],
            topology: Topology::single(),
        };
        let out = enumerate_point(&p);
        // {}, {20}, {21}, {20,21}→21 : the last dedups onto {21}.
        assert_eq!(out.images, 3);
        assert_eq!(out.duplicates, 1);
        assert_eq!(out.fs_violations, 0);
    }

    #[test]
    fn enumerate_point_finds_and_minimizes_durability_loss() {
        // A durability-claimed txn whose jc is still in flight on an
        // orderless device: the subset without the jc bit violates.
        let mut log = AppendLog::new();
        let a = log.begin(Lba(100), BlockTag(1), None); // jd
        log.mark_done(a);
        log.begin(Lba(101), BlockTag(2), None); // jc in flight
        log.begin(Lba(50), BlockTag(3), None); // unrelated data in flight
        let rec = TxnRecord {
            id: 1,
            jd_lba: Lba(100),
            jd_tags: vec![BlockTag(1)],
            jc_lba: Lba(101),
            jc_tag: BlockTag(2),
            meta_home: Vec::new(),
            data_home: Vec::new(),
            ordered_data: Vec::new(),
            durability_claimed: true,
        };
        let p = CrashPoint {
            commit_idx: 1,
            records: vec![rec],
            devices: vec![dev_state(BarrierMode::Unsupported, false, log)],
            topology: Topology::single(),
        };
        let out = enumerate_point(&p);
        assert!(out.fs_violations > 0);
        let worst = out.worst.expect("violating case recorded");
        // Minimized: the all-zero choice already violates (jc lost).
        assert_eq!(worst.choices, vec![0]);
        assert!(worst.detail.contains("DurabilityLoss"));
    }

    #[test]
    fn differential_trace_smoke_is_clean() {
        for (label, mk_cfg, sync) in diff_stacks() {
            let cell = enumerate_trace(mk_cfg(), sync, 1);
            assert!(!cell.points.is_empty(), "{label}: no fork points");
            for p in &cell.points {
                assert_eq!(
                    p.fs_violations + p.epoch_violations,
                    0,
                    "{label}: violation at commit {}",
                    p.commit_idx
                );
            }
        }
    }
}
