//! Exhaustive crash-point enumeration with differential recovery checking.
//!
//! The legacy ablation ([`crate::experiments::ablation_crash`]) samples one
//! random wall-clock crash per seed and replays the whole trace from t=0 for
//! every sample. This module explores the crash space exhaustively: each
//! trace runs **once**, the live stack is captured at every barrier-epoch
//! boundary (journal commit), and for every capture point the enumerator
//! walks *all* persisted images the device's barrier mode admits for the
//! in-flight flash programs:
//!
//! * [`BarrierMode::LfsInOrderRecovery`] — firmware recovery truncates at
//!   the first unprogrammed page (§3.2), so the admissible images are the
//!   n+1 tail prefixes cut at each in-flight program ("first hole").
//! * [`BarrierMode::InOrderWriteback`] / [`BarrierMode::Unsupported`] — any
//!   subset of in-flight programs may have retired: 2^n images.
//! * [`BarrierMode::Transactional`] — uncommitted groups land
//!   all-or-nothing: one bit per open group.
//! * PLP (supercap) devices yield a single image: everything survives.
//!
//! # Capture architecture: zero-clone + delta snapshots
//!
//! The first generation of this engine called [`IoStack::fork`] at every
//! commit — a deep clone of the calendar queue, journal, lanes and device
//! models — only to flatten the fork into a plain-data [`CrashPoint`] and
//! drop it. Capture is now two-tier:
//!
//! 1. **Zero-clone capture** — [`extract_point`] reads the live stack
//!    through borrowed accessors (`&AppendLog` tail, cache snapshot,
//!    committed groups, txn records); nothing outside the point itself is
//!    cloned.
//! 2. **Delta snapshots** — a [`CaptureCursor`] holds the previous point's
//!    `Arc`-backed base image, committed-group set and record history;
//!    the stack journals its per-epoch dirty sets (blocks folded, groups
//!    committed, records marked durable) and the next point is built from
//!    the previous one plus that delta — O(writes-this-epoch), not
//!    O(log length). The shared parts are immutable behind `Arc`;
//!    copy-on-write (`Arc::make_mut`) keeps retained points intact.
//!
//! The fork-based path stays alive behind `BIO_FORK_CAPTURE=1` (or
//! [`CaptureMode::Fork`]) as a differential reference: both paths must
//! produce bit-identical [`CrashPoint`]s, verdicts and dedup counts.
//!
//! Subset/group spaces are enumerated exhaustively up to [`MAX_FREE_BITS`]
//! free choices per device and [`MAX_IMAGES_PER_POINT`] images per capture
//! point; clamping is counted, never silent, and clamped points are
//! additionally covered by **stratified sampling**: seeded strata over
//! subset cardinality draw reorderings from the *full* free list (up to 64
//! bits), with sampled-vs-exhaustive coverage reported in [`CrashStats`].
//!
//! **Differential recovery**: the same op trace runs against EXT4-DR,
//! BFS-DR and BFS-OD, at the 1q×1dev topology and again at 2q×2dev;
//! capture points align across stacks of the same topology by commit
//! count. Every enumerated image must recover to a clean transaction
//! prefix (no commit-order / torn-transaction / ordered-data /
//! durability-loss violation and no epoch-order violation). A stack that
//! violates where a peer stays clean at the same aligned point is a
//! cross-stack divergence, reported as a minimized
//! `(trace seed, capture point, reordering choice)` triple.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use barrier_io::{
    ConsistencyCheck, DeviceCaptureDelta, DeviceProfile, FileRef, IoStack, StackConfig, Topology,
    TxnRecord,
};
use bio_flash::{
    AppendRec, BarrierMode, BlockTag, Device, EpochAudit, ImageView, Lba, TransferRec,
};
use bio_sim::{SimDuration, SimRng};
use bio_workloads::{RandWrite, SyncMode, WriteMode};

use crate::{print_table, ExperimentGrid};

/// Free nondeterministic program-completion bits enumerated per device
/// (2^8 = 256 subsets before the exhaustive window is clamped).
pub const MAX_FREE_BITS: usize = 8;

/// Hard cap on exhaustively enumerated images per capture point
/// (cross-device product).
pub const MAX_IMAGES_PER_POINT: u64 = 256;

/// Reorderings drawn per cardinality stratum when a clamped point is
/// covered by stratified sampling.
pub const SAMPLES_PER_STRATUM: u64 = 4;

/// Widest free list the sampler draws from (a reordering choice is a
/// `u64` bitmask, so 64 bits — 8x the exhaustive window).
const MAX_SAMPLE_BITS: usize = 64;

/// Syncs per differential trace; each write+sync pair forces one journal
/// commit, i.e. one capture point.
const TRACE_OPS: u64 = 100;

/// Steps without a new commit after which a trace is considered drained
/// (backstop behind the quiescence early-exit, which normally ends the
/// trace as soon as the journal settles).
const STALE_STEP_LIMIT: u64 = 200_000;

// ---------------------------------------------------------------------
// Capture-point snapshot (plain data, `Send`, structurally shared).
// ---------------------------------------------------------------------

/// Snapshot of one device at a capture point. The folded base image and
/// the committed-group set are `Arc`-shared with the capture cursor (and
/// through it with neighbouring points): only the unfolded tail, the
/// cache and the scalars are per-point.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceState {
    /// Folded durable prefix of the append log (shared, immutable).
    base: Arc<BTreeMap<Lba, BlockTag>>,
    /// Unfolded tail records, in append order.
    tail: Vec<AppendRec>,
    cache: Vec<(Lba, BlockTag)>,
    plp: bool,
    mode: BarrierMode,
    /// Committed transactional-writeback groups (shared, immutable).
    committed: Arc<BTreeSet<u64>>,
    /// Transfer history prefix at the capture (shared, immutable).
    history: Option<Arc<Vec<TransferRec>>>,
}

impl DeviceState {
    /// Captures one device through borrowed accessors. With a cursor the
    /// shared parts are `Arc`-clones of the cursor's delta-maintained
    /// copies (O(1)); without one they are materialized from the device
    /// (O(state), the fork-path reference behaviour).
    fn capture(dev: &Device, cursor: Option<&DeviceCursor>) -> DeviceState {
        let log = dev.append_log();
        DeviceState {
            base: match cursor {
                Some(c) => Arc::clone(&c.base),
                None => Arc::new(log.base().clone()),
            },
            tail: log.tail().copied().collect(),
            cache: dev
                .cache()
                .entries_in_order()
                .map(|(_, e)| (e.lba, e.tag))
                .collect(),
            plp: dev.profile().plp,
            mode: dev.profile().barrier_mode,
            committed: match cursor {
                Some(c) => Arc::clone(&c.committed),
                None => Arc::new(dev.committed_groups().collect()),
            },
            history: match cursor {
                Some(c) => c.history.clone(),
                None => dev.history().map(|h| Arc::new(h.to_vec())),
            },
        }
    }
}

/// Everything needed to enumerate and check one capture point: the ground
/// truth transaction records plus per-device append-log state.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashPoint {
    /// Commit count at the capture (the cross-stack alignment key).
    pub commit_idx: usize,
    /// Ground-truth transaction records at the capture (shared with the
    /// cursor; copy-on-write across durability flips).
    pub records: Arc<Vec<TxnRecord>>,
    devices: Vec<DeviceState>,
    topology: Topology,
}

impl CrashPoint {
    /// Captures the live stack into a plain-data crash point, reading
    /// through borrowed accessors only. With a cursor the records and the
    /// per-device shared parts are `Arc`-clones of the cursor's
    /// delta-maintained state.
    fn capture(stack: &IoStack, cursor: Option<&CaptureCursor>) -> CrashPoint {
        let records = match cursor {
            Some(c) => Arc::clone(&c.records),
            None => Arc::new(stack.fs().records().to_vec()),
        };
        let devices = stack
            .devices()
            .iter()
            .enumerate()
            .map(|(i, d)| DeviceState::capture(d, cursor.map(|c| &c.devices[i])))
            .collect();
        CrashPoint {
            commit_idx: records.len(),
            records,
            devices,
            topology: stack.config().topology,
        }
    }
}

/// Snapshots a stack into a plain-data crash point through borrowed
/// accessors — no fork, no shared state with any cursor.
pub fn extract_point(stack: &IoStack) -> CrashPoint {
    CrashPoint::capture(stack, None)
}

// ---------------------------------------------------------------------
// Delta capture: the cursor that builds each point from the previous one.
// ---------------------------------------------------------------------

/// Per-device half of the capture cursor: `Arc`-backed copies of the
/// folded base image, committed groups and transfer history, advanced by
/// each epoch's [`DeviceCaptureDelta`] instead of being re-read.
#[derive(Debug, Clone)]
struct DeviceCursor {
    base: Arc<BTreeMap<Lba, BlockTag>>,
    committed: Arc<BTreeSet<u64>>,
    history: Option<Arc<Vec<TransferRec>>>,
}

impl DeviceCursor {
    fn new() -> DeviceCursor {
        DeviceCursor {
            base: Arc::new(BTreeMap::new()),
            committed: Arc::new(BTreeSet::new()),
            history: None,
        }
    }

    /// Advances the cursor by one epoch's delta. `Arc::make_mut` keeps
    /// this O(delta) when the previous point has been dropped (the
    /// enumerate-and-drop hot path) and silently degrades to a
    /// copy-on-write clone when it is retained.
    fn delta_apply(&mut self, dev: &Device, delta: DeviceCaptureDelta) {
        let mut base = std::mem::take(&mut self.base);
        {
            let map = Arc::make_mut(&mut base);
            for (lba, tag) in delta.folds {
                map.insert(lba, tag);
            }
        }
        let mut committed = std::mem::take(&mut self.committed);
        {
            let set = Arc::make_mut(&mut committed);
            for g in delta.committed_groups {
                set.insert(g);
            }
        }
        // History is append-only: copy just the new suffix.
        let history = match dev.history() {
            Some(live) => {
                let mut arc = self.history.take().unwrap_or_default();
                let h = Arc::make_mut(&mut arc);
                h.extend_from_slice(&live[h.len()..]);
                Some(arc)
            }
            None => None,
        };
        *self = DeviceCursor {
            base,
            committed,
            history,
        };
        debug_assert!(
            self.base.as_ref() == dev.append_log().base(),
            "capture cursor base diverged from the live log — was \
             capture tracking enabled before the run started?"
        );
        debug_assert_eq!(self.committed.len(), dev.committed_groups().count());
    }
}

/// Incremental capture state across one trace: holds the previous point's
/// shared (`Arc`-backed) parts and advances them by each epoch's delta,
/// so a capture costs O(writes since the previous capture).
#[derive(Debug, Clone)]
pub struct CaptureCursor {
    records: Arc<Vec<TxnRecord>>,
    devices: Vec<DeviceCursor>,
}

impl CaptureCursor {
    /// An empty cursor; the first capture initializes per-device state.
    pub fn new() -> CaptureCursor {
        CaptureCursor {
            records: Arc::new(Vec::new()),
            devices: Vec::new(),
        }
    }

    /// Drains the stack's capture delta and builds the next crash point
    /// incrementally. Requires [`IoStack::enable_capture_tracking`] to
    /// have been called before the run started.
    pub fn capture(&mut self, stack: &mut IoStack) -> CrashPoint {
        let delta = stack.take_capture_delta();
        {
            let recs = Arc::make_mut(&mut self.records);
            let live = stack.fs().records();
            recs.extend_from_slice(&live[recs.len()..]);
            // Durability flips are the only in-place record mutation;
            // records just copied from the live slice already carry them.
            for id in &delta.records_marked_durable {
                let i = recs
                    .binary_search_by_key(id, |r| r.id)
                    .expect("durable mark names a recorded txn");
                recs[i].durability_claimed = true;
            }
            debug_assert_eq!(recs.len(), live.len());
        }
        if self.devices.is_empty() {
            self.devices = stack
                .devices()
                .iter()
                .map(|_| DeviceCursor::new())
                .collect();
        }
        for ((cur, dev), d) in self
            .devices
            .iter_mut()
            .zip(stack.devices())
            .zip(delta.devices)
        {
            cur.delta_apply(dev, d);
        }
        CrashPoint::capture(stack, Some(self))
    }
}

impl Default for CaptureCursor {
    fn default() -> CaptureCursor {
        CaptureCursor::new()
    }
}

/// How crash points are captured from the running trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureMode {
    /// Zero-clone capture with delta snapshots (the default).
    Delta,
    /// Deep-fork the whole stack at every commit (the first-generation
    /// path, kept as a differential reference).
    Fork,
}

impl CaptureMode {
    /// `BIO_FORK_CAPTURE=1` selects the fork-based reference path.
    pub fn from_env() -> CaptureMode {
        if std::env::var("BIO_FORK_CAPTURE").is_ok_and(|v| v == "1") {
            CaptureMode::Fork
        } else {
            CaptureMode::Delta
        }
    }
}

// ---------------------------------------------------------------------
// Admissible-image enumeration.
// ---------------------------------------------------------------------

/// The reordering choice space of one device at one capture point.
#[derive(Debug, Clone)]
enum ChoiceSpace {
    /// PLP: a single image, everything (including the cache) survives.
    Single,
    /// LFS in-order recovery: hole positions (tail indices of in-flight
    /// programs); choice `c` cuts the prefix at `holes[c]`, choice
    /// `holes.len()` keeps the full tail.
    Prefix(Vec<usize>),
    /// Orderless / in-order writeback: free in-flight indices, one bit
    /// each (bit set = that program retired before power loss). Holds the
    /// full free list (up to [`MAX_SAMPLE_BITS`]); the exhaustive window
    /// enumerates the first [`MAX_FREE_BITS`] bits, the sampler draws
    /// from all of them.
    Subset(Vec<usize>),
    /// Transactional writeback: open (uncommitted) groups, one
    /// all-or-nothing bit each (full list, like `Subset`).
    Groups(Vec<u64>),
}

impl ChoiceSpace {
    /// Choices enumerated exhaustively (the pre-sampling window).
    fn exhaustive_choices(&self) -> u64 {
        match self {
            ChoiceSpace::Single => 1,
            ChoiceSpace::Prefix(holes) => holes.len() as u64 + 1,
            ChoiceSpace::Subset(free) => 1u64 << free.len().min(MAX_FREE_BITS),
            ChoiceSpace::Groups(gs) => 1u64 << gs.len().min(MAX_FREE_BITS),
        }
    }

    /// Width of the full choice space, in sampling strata.
    fn sample_bits(&self) -> usize {
        match self {
            ChoiceSpace::Single => 0,
            ChoiceSpace::Prefix(holes) => holes.len(),
            ChoiceSpace::Subset(free) => free.len(),
            ChoiceSpace::Groups(gs) => gs.len(),
        }
    }

    /// One stratified draw at cardinality stratum `k`: a choice whose
    /// reordering keeps (about) `k` extra programs alive, drawn uniformly
    /// from the full free list.
    fn sample_choice(&self, k: usize, rng: &mut SimRng) -> u64 {
        fn draw_mask(n: usize, k: usize, rng: &mut SimRng) -> u64 {
            let k = k.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            let mut mask = 0u64;
            for i in 0..k {
                let j = i + rng.below((n - i) as u64) as usize;
                idx.swap(i, j);
                mask |= 1u64 << idx[i];
            }
            mask
        }
        match self {
            ChoiceSpace::Single => 0,
            ChoiceSpace::Prefix(holes) => k.min(holes.len()) as u64,
            ChoiceSpace::Subset(free) => draw_mask(free.len(), k, rng),
            ChoiceSpace::Groups(gs) => draw_mask(gs.len(), k, rng),
        }
    }
}

/// One admissible crash image as a copy-on-write overlay: the shared
/// folded base plus the resolved survival of every tail (and, for PLP,
/// cache) block. Covers the *same* block set for every choice of a
/// point, so overlay equality is image equality and the overlay doubles
/// as the dedup key — no base clone per image.
struct OverlayView<'a> {
    base: &'a BTreeMap<Lba, BlockTag>,
    over: BTreeMap<Lba, BlockTag>,
}

impl ImageView for OverlayView<'_> {
    fn tag(&self, lba: Lba) -> BlockTag {
        match self.over.get(&lba) {
            Some(&t) => t,
            None => self.base.get(&lba).copied().unwrap_or(BlockTag::UNWRITTEN),
        }
    }
}

impl OverlayView<'_> {
    /// Materializes the overlay into a standalone image (test oracle).
    #[cfg(test)]
    fn materialize(&self) -> bio_flash::PersistedImage {
        let mut map = self.base.clone();
        for (&lba, &tag) in &self.over {
            if tag == BlockTag::UNWRITTEN {
                map.remove(&lba);
            } else {
                map.insert(lba, tag);
            }
        }
        bio_flash::PersistedImage::from_map(map)
    }
}

/// The cross-device image of one choice combination: device-local views
/// stitched by the lane topology (trivial at 1×1).
enum StackImage<'a> {
    Single(&'a OverlayView<'a>),
    Striped {
        topology: Topology,
        locals: &'a [OverlayView<'a>],
    },
}

impl ImageView for StackImage<'_> {
    fn tag(&self, lba: Lba) -> BlockTag {
        match self {
            StackImage::Single(v) => v.tag(lba),
            StackImage::Striped { topology, locals } => {
                let (di, local) = topology.locate(lba);
                locals[di].tag(local)
            }
        }
    }
}

impl DeviceState {
    /// The admissible choice space under this device's barrier mode, plus
    /// whether exhaustive enumeration has to clamp it to [`MAX_FREE_BITS`].
    fn choice_space(&self) -> (ChoiceSpace, bool) {
        if self.plp {
            return (ChoiceSpace::Single, false);
        }
        let inflight: Vec<usize> = self
            .tail
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.done)
            .map(|(i, _)| i)
            .collect();
        match self.mode {
            BarrierMode::LfsInOrderRecovery => (ChoiceSpace::Prefix(inflight), false),
            BarrierMode::InOrderWriteback | BarrierMode::Unsupported => {
                let clamped = inflight.len() > MAX_FREE_BITS;
                let mut free = inflight;
                free.truncate(MAX_SAMPLE_BITS);
                (ChoiceSpace::Subset(free), clamped)
            }
            BarrierMode::Transactional => {
                let mut groups: Vec<u64> = Vec::new();
                for r in &self.tail {
                    if let Some(g) = r.group {
                        if !self.committed.contains(&g) && !groups.contains(&g) {
                            groups.push(g);
                        }
                    }
                }
                let clamped = groups.len() > MAX_FREE_BITS;
                groups.truncate(MAX_SAMPLE_BITS);
                (ChoiceSpace::Groups(groups), clamped)
            }
        }
    }

    /// The overlay for one choice. Choice 0 always reproduces the
    /// device's own deterministic [`bio_flash::Device::crash_image`].
    fn view_for(&self, space: &ChoiceSpace, choice: u64) -> OverlayView<'_> {
        let mut over: BTreeMap<Lba, BlockTag> = BTreeMap::new();
        match space {
            ChoiceSpace::Single => {
                for r in &self.tail {
                    over.insert(r.lba, r.tag);
                }
                for &(lba, tag) in &self.cache {
                    over.insert(lba, tag);
                }
            }
            ChoiceSpace::Prefix(holes) => {
                let cut = holes
                    .get(choice as usize)
                    .copied()
                    .unwrap_or(self.tail.len());
                for r in &self.tail[..cut] {
                    over.insert(r.lba, r.tag);
                }
            }
            ChoiceSpace::Subset(free) => {
                let mut mask: Vec<bool> = self.tail.iter().map(|r| r.done).collect();
                for (bit, &idx) in free.iter().enumerate() {
                    if choice & (1u64 << bit) != 0 {
                        mask[idx] = true;
                    }
                }
                for (r, &keep) in self.tail.iter().zip(&mask) {
                    if keep {
                        over.insert(r.lba, r.tag);
                    }
                }
            }
            ChoiceSpace::Groups(gs) => {
                let survive: Vec<u64> = gs
                    .iter()
                    .enumerate()
                    .filter(|(bit, _)| choice & (1u64 << *bit) != 0)
                    .map(|(_, &g)| g)
                    .collect();
                for r in &self.tail {
                    let keep = r.done
                        && r.group
                            .is_none_or(|g| self.committed.contains(&g) || survive.contains(&g));
                    if keep {
                        over.insert(r.lba, r.tag);
                    }
                }
            }
        }
        // Canonical cover: every tail block resolves, the masked-out ones
        // to the base version (UNWRITTEN when the base never held them).
        for r in &self.tail {
            over.entry(r.lba).or_insert_with(|| {
                self.base
                    .get(&r.lba)
                    .copied()
                    .unwrap_or(BlockTag::UNWRITTEN)
            });
        }
        OverlayView {
            base: &self.base,
            over,
        }
    }
}

/// A violating reordering, minimized: per-device choice ids after greedy
/// reduction toward the deterministic baseline (choice 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationCase {
    /// Per-device reordering choice (bitmask or hole index).
    pub choices: Vec<u64>,
    /// Filesystem-level violations at this choice.
    pub fs_violations: usize,
    /// Device epoch-order violations at this choice.
    pub epoch_violations: usize,
    /// First violation, rendered.
    pub detail: String,
}

/// Per-point enumeration context: the choice spaces plus both checkers
/// with their record/history-only tables hoisted out of the image loop.
struct PointCtx<'a> {
    p: &'a CrashPoint,
    spaces: &'a [ChoiceSpace],
    checker: ConsistencyCheck<'a>,
    audits: Vec<Option<EpochAudit<'a>>>,
}

impl<'a> PointCtx<'a> {
    fn new(p: &'a CrashPoint, spaces: &'a [ChoiceSpace]) -> PointCtx<'a> {
        PointCtx {
            p,
            spaces,
            checker: ConsistencyCheck::new(&p.records),
            audits: p
                .devices
                .iter()
                .map(|d| d.history.as_deref().map(|h| EpochAudit::new(h)))
                .collect(),
        }
    }

    fn views(&self, choices: &[u64]) -> Vec<OverlayView<'a>> {
        self.p
            .devices
            .iter()
            .zip(self.spaces)
            .zip(choices)
            .map(|((d, s), &c)| d.view_for(s, c))
            .collect()
    }

    fn global<'v>(&self, views: &'v [OverlayView<'a>]) -> StackImage<'v> {
        if self.p.topology.is_single() {
            StackImage::Single(&views[0])
        } else {
            StackImage::Striped {
                topology: self.p.topology,
                locals: views,
            }
        }
    }

    /// Violation counts of one choice combination.
    fn counts(&self, views: &[OverlayView<'a>]) -> (usize, usize) {
        let fsv = self.checker.violations(&self.global(views)).len();
        let mut epv = 0usize;
        for (audit, v) in self.audits.iter().zip(views) {
            if let Some(a) = audit {
                epv += a.violations(v).len();
            }
        }
        (fsv, epv)
    }

    /// Runs both checkers over one choice combination: returns
    /// `(fs violations, epoch violations, first violation rendered)`.
    fn check_choice(&self, choices: &[u64]) -> (usize, usize, String) {
        let views = self.views(choices);
        let fsv = self.checker.violations(&self.global(&views));
        let mut epv = 0usize;
        let mut detail = String::new();
        for (audit, v) in self.audits.iter().zip(&views) {
            if let Some(a) = audit {
                let viols = a.violations(v);
                if detail.is_empty() {
                    if let Some(first) = viols.first() {
                        detail = format!("{first:?}");
                    }
                }
                epv += viols.len();
            }
        }
        if detail.is_empty() {
            if let Some(first) = fsv.first() {
                detail = format!("{first:?}");
            }
        }
        (fsv.len(), epv, detail)
    }

    /// Greedily shrinks a violating choice combination: clears
    /// subset/group bits and lowers prefix cuts while the combination
    /// still violates.
    fn minimize(&self, mut choices: Vec<u64>) -> Vec<u64> {
        let violates = |c: &[u64]| {
            let (f, e, _) = self.check_choice(c);
            f + e > 0
        };
        for _ in 0..4 {
            let mut changed = false;
            for (di, space) in self.spaces.iter().enumerate() {
                match space {
                    ChoiceSpace::Single => {}
                    ChoiceSpace::Prefix(_) => {
                        for c in 0..choices[di] {
                            let mut t = choices.clone();
                            t[di] = c;
                            if violates(&t) {
                                choices = t;
                                changed = true;
                                break;
                            }
                        }
                    }
                    ChoiceSpace::Subset(free) => {
                        for bit in 0..free.len() {
                            if choices[di] & (1u64 << bit) != 0 {
                                let mut t = choices.clone();
                                t[di] &= !(1u64 << bit);
                                if violates(&t) {
                                    choices = t;
                                    changed = true;
                                }
                            }
                        }
                    }
                    ChoiceSpace::Groups(gs) => {
                        for bit in 0..gs.len() {
                            if choices[di] & (1u64 << bit) != 0 {
                                let mut t = choices.clone();
                                t[di] &= !(1u64 << bit);
                                if violates(&t) {
                                    choices = t;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        choices
    }

    /// Dedups, checks and records one choice combination.
    fn visit(
        &self,
        choices: &[u64],
        seen: &mut HashSet<Vec<(u64, u64)>>,
        out: &mut PointOutcome,
        sampled: bool,
    ) {
        let views = self.views(choices);
        // The overlays cover the same block set for every choice of this
        // point and the base is shared, so the resolved overlays are a
        // complete image-equality key.
        let mut key: Vec<(u64, u64)> = Vec::new();
        for (di, v) in views.iter().enumerate() {
            for (&lba, &tag) in &v.over {
                key.push((self.p.topology.global(di, lba).0, tag.0));
            }
        }
        if !seen.insert(key) {
            if sampled {
                out.sampled_duplicates += 1;
            } else {
                out.duplicates += 1;
            }
            return;
        }
        if sampled {
            out.sampled_images += 1;
        } else {
            out.images += 1;
        }
        let (fsv, epv) = self.counts(&views);
        out.fs_violations += fsv as u64;
        out.epoch_violations += epv as u64;
        if (fsv > 0 || epv > 0) && out.worst.is_none() {
            let min = self.minimize(choices.to_vec());
            let (f, e, detail) = self.check_choice(&min);
            out.worst = Some(ViolationCase {
                choices: min,
                fs_violations: f,
                epoch_violations: e,
                detail,
            });
        }
    }
}

/// Outcome of enumerating one capture point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointOutcome {
    /// Commit count at the capture (alignment key).
    pub commit_idx: usize,
    /// Distinct images checked exhaustively (crash points explored).
    pub images: u64,
    /// Equivalent images skipped by dedup in the exhaustive window.
    pub duplicates: u64,
    /// Distinct images found only by stratified sampling.
    pub sampled_images: u64,
    /// Sampled draws that collapsed onto an already-checked image.
    pub sampled_duplicates: u64,
    /// True when the choice space was clamped (bit budget or image cap).
    pub clamped: bool,
    /// Total filesystem violations over all distinct images.
    pub fs_violations: u64,
    /// Total epoch-order violations over all distinct images.
    pub epoch_violations: u64,
    /// First violating reordering, minimized.
    pub worst: Option<ViolationCase>,
}

/// Enumerates every admissible image at one capture point (exhaustively
/// up to the clamps, then by seeded stratified sampling over the full
/// choice space when clamped), deduplicates, and checks each image
/// against the journal ground truth and the epoch contract.
///
/// `sample_seed` seeds the sampling draws only; the exhaustive window is
/// deterministic and unaffected.
pub fn enumerate_point(p: &CrashPoint, sample_seed: u64) -> PointOutcome {
    let mut spaces = Vec::with_capacity(p.devices.len());
    let mut clamped = false;
    for d in &p.devices {
        let (s, c) = d.choice_space();
        clamped |= c;
        spaces.push(s);
    }
    let counts: Vec<u64> = spaces.iter().map(ChoiceSpace::exhaustive_choices).collect();
    let product: u128 = counts.iter().map(|&c| c as u128).product();
    clamped |= product > MAX_IMAGES_PER_POINT as u128;

    let ctx = PointCtx::new(p, &spaces);
    let mut out = PointOutcome {
        commit_idx: p.commit_idx,
        images: 0,
        duplicates: 0,
        sampled_images: 0,
        sampled_duplicates: 0,
        clamped,
        fs_violations: 0,
        epoch_violations: 0,
        worst: None,
    };
    let mut seen: HashSet<Vec<(u64, u64)>> = HashSet::new();

    // Exhaustive window: odometer over the per-device choice counts.
    let mut choices = vec![0u64; spaces.len()];
    let mut visited = 0u64;
    'exhaustive: loop {
        visited += 1;
        ctx.visit(&choices, &mut seen, &mut out, false);
        if visited >= MAX_IMAGES_PER_POINT {
            break;
        }
        let mut di = 0;
        loop {
            if di == choices.len() {
                break 'exhaustive;
            }
            choices[di] += 1;
            if choices[di] < counts[di] {
                break;
            }
            choices[di] = 0;
            di += 1;
        }
    }

    // Stratified sampling past the clamp: for each survival-cardinality
    // stratum, draw reorderings from the *full* free lists. Shares the
    // dedup set, so only genuinely new images are counted and checked.
    if clamped {
        let max_k = spaces
            .iter()
            .map(ChoiceSpace::sample_bits)
            .max()
            .unwrap_or(0);
        let mut rng = SimRng::new(sample_seed);
        for k in 0..=max_k {
            for _ in 0..SAMPLES_PER_STRATUM {
                let draws: Vec<u64> = spaces
                    .iter()
                    .map(|s| s.sample_choice(k, &mut rng))
                    .collect();
                ctx.visit(&draws, &mut seen, &mut out, true);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Trace driving: capture at every commit boundary.
// ---------------------------------------------------------------------

/// Result of one (stack, trace) cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Capture-point outcomes in commit order.
    pub points: Vec<PointOutcome>,
}

/// Builds one differential trace cell: a single thread of `TRACE_OPS`
/// write+sync pairs over a 64-block region, 1 µs journal tick.
fn trace_stack(mut cfg: StackConfig, sync: SyncMode, seed: u64) -> IoStack {
    cfg.seed = seed;
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    let f = stack.create_global_file();
    stack.add_thread(Box::new(RandWrite::new(
        FileRef::Global(f),
        64,
        WriteMode::SyncEach(sync),
        TRACE_OPS,
    )));
    stack
}

/// Runs one trace, calling `on_point` with the crash point captured at
/// every journal commit. Ends at journal quiescence once all workloads
/// finished (with [`STALE_STEP_LIMIT`] as a backstop).
fn drive<F: FnMut(CrashPoint)>(
    cfg: StackConfig,
    sync: SyncMode,
    seed: u64,
    mode: CaptureMode,
    mut on_point: F,
) {
    let mut stack = trace_stack(cfg, sync, seed);
    if mode == CaptureMode::Delta {
        stack.enable_capture_tracking();
    }
    let mut cursor = CaptureCursor::new();
    let mut commits = 0usize;
    let mut stale = 0u64;
    while stack.step() {
        let n = stack.fs().records().len();
        if n > commits {
            commits = n;
            stale = 0;
            let point = match mode {
                CaptureMode::Delta => cursor.capture(&mut stack),
                CaptureMode::Fork => {
                    let snap = stack.fork();
                    extract_point(&snap)
                }
            };
            on_point(point);
        } else {
            stale += 1;
            if stale > STALE_STEP_LIMIT {
                break;
            }
            // Early exit: once every workload finished and the journal is
            // provably quiescent no further commit can occur, so the
            // remaining event tail (timer self-rearming) is pure waste.
            if stack.workloads_finished() && stack.fs().journal_quiescent() {
                break;
            }
        }
    }
}

/// Captures (without enumerating) every crash point of one trace — the
/// differential-testing surface for [`CaptureMode::Delta`] vs
/// [`CaptureMode::Fork`] bit-identity.
pub fn capture_points(
    cfg: StackConfig,
    sync: SyncMode,
    seed: u64,
    mode: CaptureMode,
) -> Vec<CrashPoint> {
    let mut points = Vec::new();
    drive(cfg, sync, seed, mode, |p| points.push(p));
    points
}

/// Runs one trace to completion, capturing the stack at every journal
/// commit and enumerating the capture point's admissible crash images.
pub fn enumerate_trace_with(
    cfg: StackConfig,
    sync: SyncMode,
    seed: u64,
    mode: CaptureMode,
) -> CellOutcome {
    let mut points = Vec::new();
    drive(cfg, sync, seed, mode, |p| {
        points.push(enumerate_point(&p, sample_seed(seed, p.commit_idx)));
    });
    CellOutcome { points }
}

/// [`enumerate_trace_with`] under the environment-selected capture mode
/// (`BIO_FORK_CAPTURE=1` for the fork-based reference path).
pub fn enumerate_trace(cfg: StackConfig, sync: SyncMode, seed: u64) -> CellOutcome {
    enumerate_trace_with(cfg, sync, seed, CaptureMode::from_env())
}

/// Deterministic per-point sampling seed: same trace seed and commit
/// index → same sampled draws, in both capture modes.
fn sample_seed(trace_seed: u64, commit_idx: usize) -> u64 {
    trace_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(commit_idx as u64)
}

/// Legacy single-sample crash cell (the ablation table's unit of work):
/// run for `dur`, inject one wall-clock crash, count violations.
pub fn sampled_crash_violations(mut cfg: StackConfig, sync: SyncMode, dur: SimDuration) -> u64 {
    cfg.fs.timer_tick = SimDuration::from_micros(1);
    let mut stack = IoStack::new(cfg);
    let f = stack.create_global_file();
    stack.add_thread(Box::new(RandWrite::new(
        FileRef::Global(f),
        64,
        WriteMode::SyncEach(sync),
        100,
    )));
    stack.run_for(dur);
    let crash = stack.crash();
    (crash.fs_violations.len() + crash.epoch_violations.len()) as u64
}

// ---------------------------------------------------------------------
// Differential harness across EXT4-DR / BFS-DR / BFS-OD, 1×1 and 2×2.
// ---------------------------------------------------------------------

/// Per-stack aggregate over all traces.
#[derive(Debug, Clone)]
pub struct StackRow {
    /// Stack label (`EXT4-DR`, `BFS-DR/2x2`, ...).
    pub label: &'static str,
    /// Traces run.
    pub traces: u64,
    /// Capture points (journal commits) visited.
    pub fork_points: u64,
    /// Distinct crash images enumerated and checked exhaustively.
    pub images: u64,
    /// Equivalent images skipped by dedup.
    pub duplicates: u64,
    /// Distinct images found only by stratified sampling.
    pub sampled_images: u64,
    /// Sampled draws that collapsed onto an already-checked image.
    pub sampled_duplicates: u64,
    /// Capture points whose choice space was clamped.
    pub clamped_points: u64,
    /// Filesystem violations summed over all images.
    pub fs_violations: u64,
    /// Epoch-order violations summed over all images.
    pub epoch_violations: u64,
}

/// Sampled-vs-exhaustive coverage counters over the whole run.
#[derive(Debug, Clone, Default)]
pub struct CrashStats {
    /// Distinct images checked by exhaustive enumeration.
    pub exhaustive_images: u64,
    /// Exhaustive enumerations skipped by dedup.
    pub exhaustive_duplicates: u64,
    /// Distinct images reached only by stratified sampling.
    pub sampled_images: u64,
    /// Sampled draws deduplicated away.
    pub sampled_duplicates: u64,
    /// Capture points whose choice space was clamped.
    pub clamped_points: u64,
}

/// A cross-stack divergence: at an aligned `(trace, capture point)` this
/// stack violated while a peer stayed clean, minimized to the smallest
/// reordering choice that still violates.
#[derive(Debug, Clone)]
pub struct DivergenceTriple {
    /// Trace seed.
    pub seed: u64,
    /// Commit count at the capture (alignment key).
    pub commit_idx: usize,
    /// The violating stack.
    pub stack: &'static str,
    /// Minimized per-device reordering choice.
    pub choices: Vec<u64>,
    /// First violation, rendered.
    pub detail: String,
}

/// Full report of one differential crash-enumeration run.
#[derive(Debug, Clone)]
pub struct CrashEnumReport {
    /// Per-stack aggregates.
    pub rows: Vec<StackRow>,
    /// Total distinct crash points explored exhaustively across stacks.
    pub total_points: u64,
    /// Sampled-vs-exhaustive coverage over the whole run.
    pub stats: CrashStats,
    /// Cross-stack divergences (empty = all stacks agree).
    pub divergences: Vec<DivergenceTriple>,
}

/// One differential stack: label, config constructor, sync flavour.
type DiffStack = (&'static str, fn() -> StackConfig, SyncMode);

/// The differential stacks, grouped by lane topology (divergences are
/// only meaningful between stacks that shard blocks identically): the
/// flush-based baseline and the two BarrierFS disciplines must agree, at
/// 1q×1dev and again at 2q×2dev, all over the paper's barrier UFS.
fn diff_stacks() -> Vec<(&'static str, Vec<DiffStack>)> {
    fn ext4_dr() -> StackConfig {
        StackConfig::ext4_dr(DeviceProfile::ufs()).with_history()
    }
    fn bfs_dr() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs()).with_history()
    }
    fn bfs_od() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs())
            .ordering_only()
            .with_history()
    }
    fn ext4_dr_mq() -> StackConfig {
        StackConfig::ext4_dr(DeviceProfile::ufs())
            .with_history()
            .with_topology(Topology::new(2, 2, 16))
    }
    fn bfs_dr_mq() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs())
            .with_history()
            .with_topology(Topology::new(2, 2, 16))
    }
    fn bfs_od_mq() -> StackConfig {
        StackConfig::bfs(DeviceProfile::ufs())
            .ordering_only()
            .with_history()
            .with_topology(Topology::new(2, 2, 16))
    }
    vec![
        (
            "1q1d",
            vec![
                ("EXT4-DR", ext4_dr as fn() -> StackConfig, SyncMode::Fsync),
                ("BFS-DR", bfs_dr, SyncMode::Fsync),
                ("BFS-OD", bfs_od, SyncMode::Fbarrier),
            ],
        ),
        (
            "2q2d",
            vec![
                (
                    "EXT4-DR/2x2",
                    ext4_dr_mq as fn() -> StackConfig,
                    SyncMode::Fsync,
                ),
                ("BFS-DR/2x2", bfs_dr_mq, SyncMode::Fsync),
                ("BFS-OD/2x2", bfs_od_mq, SyncMode::Fbarrier),
            ],
        ),
    ]
}

/// Runs the differential crash enumeration over `traces` seeds per stack,
/// sharded across the grid pool, prints the per-stack table (and the
/// divergence table when non-empty), and returns the report.
pub fn run(traces: u64) -> CrashEnumReport {
    let groups = diff_stacks();
    let stacks: Vec<DiffStack> = groups.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    let mut grid = ExperimentGrid::new();
    for (label, mk_cfg, sync) in &stacks {
        let (label, mk_cfg, sync) = (*label, *mk_cfg, *sync);
        for seed in 0..traces {
            grid.push(format!("crashenum/{label}/seed{seed}"), move || {
                enumerate_trace(mk_cfg(), sync, seed)
            });
        }
    }
    let results = grid.run();
    assert_eq!(results.len(), stacks.len() * traces as usize);

    let mut rows = Vec::new();
    let mut stats = CrashStats::default();
    let mut divergences = Vec::new();
    let cells: Vec<&[CellOutcome]> = results.chunks((traces as usize).max(1)).collect();
    for ((label, _, _), chunk) in stacks.iter().zip(&cells) {
        let mut row = StackRow {
            label,
            traces,
            fork_points: 0,
            images: 0,
            duplicates: 0,
            sampled_images: 0,
            sampled_duplicates: 0,
            clamped_points: 0,
            fs_violations: 0,
            epoch_violations: 0,
        };
        for cell in *chunk {
            row.fork_points += cell.points.len() as u64;
            for p in &cell.points {
                row.images += p.images;
                row.duplicates += p.duplicates;
                row.sampled_images += p.sampled_images;
                row.sampled_duplicates += p.sampled_duplicates;
                row.clamped_points += p.clamped as u64;
                row.fs_violations += p.fs_violations;
                row.epoch_violations += p.epoch_violations;
            }
        }
        stats.exhaustive_images += row.images;
        stats.exhaustive_duplicates += row.duplicates;
        stats.sampled_images += row.sampled_images;
        stats.sampled_duplicates += row.sampled_duplicates;
        stats.clamped_points += row.clamped_points;
        rows.push(row);
    }

    // Differential fold, per topology group: align per-seed capture
    // points by commit count; any point where the violation verdicts
    // differ across the group's stacks is a divergence for each violating
    // stack.
    let mut offset = 0usize;
    for (_, group) in &groups {
        let group_cells = &cells[offset..offset + group.len()];
        for seed in 0..traces as usize {
            let per_stack: Vec<HashMap<usize, &PointOutcome>> = group_cells
                .iter()
                .map(|chunk| {
                    chunk[seed]
                        .points
                        .iter()
                        .map(|p| (p.commit_idx, p))
                        .collect()
                })
                .collect();
            let aligned: HashSet<usize> = per_stack
                .iter()
                .flat_map(|m| m.keys().copied())
                .filter(|k| per_stack.iter().all(|m| m.contains_key(k)))
                .collect();
            let mut aligned: Vec<usize> = aligned.into_iter().collect();
            aligned.sort_unstable();
            for k in aligned {
                let verdicts: Vec<bool> = per_stack.iter().map(|m| m[&k].worst.is_some()).collect();
                if verdicts.iter().any(|&v| v) && verdicts.iter().any(|&v| !v) {
                    for ((label, _, _), m) in group.iter().zip(&per_stack) {
                        if let Some(case) = &m[&k].worst {
                            divergences.push(DivergenceTriple {
                                seed: seed as u64,
                                commit_idx: k,
                                stack: label,
                                choices: case.choices.clone(),
                                detail: case.detail.clone(),
                            });
                        }
                    }
                }
            }
        }
        offset += group.len();
    }

    let total_points: u64 = rows.iter().map(|r| r.images).sum();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.traces.to_string(),
                r.fork_points.to_string(),
                r.images.to_string(),
                r.duplicates.to_string(),
                r.sampled_images.to_string(),
                r.sampled_duplicates.to_string(),
                r.clamped_points.to_string(),
                r.fs_violations.to_string(),
                r.epoch_violations.to_string(),
            ]
        })
        .collect();
    print_table(
        "Crash enumeration — exhaustive per-epoch crash images (differential)",
        &[
            "stack",
            "traces",
            "fork points",
            "crash points",
            "dedup-skipped",
            "sampled",
            "sampled-dup",
            "clamped",
            "fs violations",
            "epoch violations",
        ],
        &table,
    );
    println!(
        "total crash points explored: {total_points}; cross-stack divergences: {}",
        divergences.len()
    );
    println!(
        "stratified sampling: {} extra images past the clamp ({} draws deduplicated, {} clamped points)",
        stats.sampled_images, stats.sampled_duplicates, stats.clamped_points
    );
    if !divergences.is_empty() {
        let rows: Vec<Vec<String>> = divergences
            .iter()
            .take(10)
            .map(|d| {
                vec![
                    d.stack.to_string(),
                    d.seed.to_string(),
                    d.commit_idx.to_string(),
                    format!("{:?}", d.choices),
                    d.detail.clone(),
                ]
            })
            .collect();
        print_table(
            "Cross-stack divergences (minimized reordering triples)",
            &[
                "stack",
                "trace seed",
                "fork point",
                "choice",
                "first violation",
            ],
            &rows,
        );
    }
    CrashEnumReport {
        rows,
        total_points,
        stats,
        divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bio_flash::AppendLog;

    fn dev_state(mode: BarrierMode, plp: bool, log: AppendLog) -> DeviceState {
        DeviceState {
            base: Arc::new(log.base().clone()),
            tail: log.tail().copied().collect(),
            cache: Vec::new(),
            plp,
            mode,
            committed: Arc::new(BTreeSet::new()),
            history: None,
        }
    }

    /// log with entries: done, in-flight, done, in-flight.
    fn mixed_log() -> AppendLog {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        let _b = log.begin(Lba(2), BlockTag(20), None);
        let c = log.begin(Lba(3), BlockTag(30), None);
        let _d = log.begin(Lba(4), BlockTag(40), None);
        log.mark_done(a);
        log.mark_done(c);
        log
    }

    #[test]
    fn lfs_space_is_prefixes() {
        let d = dev_state(BarrierMode::LfsInOrderRecovery, false, mixed_log());
        let (space, clamped) = d.choice_space();
        assert!(!clamped);
        assert_eq!(space.exhaustive_choices(), 3); // holes at idx 1 and 3, plus "none"
                                                   // Choice 0 == the deterministic crash image (prefix to first hole).
        let img0 = d.view_for(&space, 0);
        assert_eq!(img0.tag(Lba(1)), BlockTag(10));
        assert_eq!(img0.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(img0.tag(Lba(3)), BlockTag::UNWRITTEN);
        // Choice 1: first in-flight made it, hole at idx 3.
        let img1 = d.view_for(&space, 1);
        assert_eq!(img1.tag(Lba(2)), BlockTag(20));
        assert_eq!(img1.tag(Lba(3)), BlockTag(30));
        assert_eq!(img1.tag(Lba(4)), BlockTag::UNWRITTEN);
        // Choice 2: everything made it.
        let img2 = d.view_for(&space, 2);
        assert_eq!(img2.tag(Lba(4)), BlockTag(40));
    }

    #[test]
    fn orderless_space_is_subsets() {
        let d = dev_state(BarrierMode::Unsupported, false, mixed_log());
        let (space, clamped) = d.choice_space();
        assert!(!clamped);
        assert_eq!(space.exhaustive_choices(), 4); // two free bits
                                                   // Choice 0 == done-only image.
        let img0 = d.view_for(&space, 0);
        assert_eq!(img0.materialize().len(), 2);
        // Bit 1 (second in-flight, idx 3) alone: out-of-order survival the
        // LFS mode cannot produce.
        let img = d.view_for(&space, 0b10);
        assert_eq!(img.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(img.tag(Lba(4)), BlockTag(40));
    }

    #[test]
    fn subset_space_clamps_to_bit_budget_but_keeps_full_list() {
        let mut log = AppendLog::new();
        for i in 0..12 {
            log.begin(Lba(i), BlockTag(100 + i), None);
        }
        let d = dev_state(BarrierMode::Unsupported, false, log);
        let (space, clamped) = d.choice_space();
        assert!(clamped);
        // Exhaustive window stays at the bit budget...
        assert_eq!(space.exhaustive_choices(), 1 << MAX_FREE_BITS);
        // ...but the sampler sees every free bit.
        assert_eq!(space.sample_bits(), 12);
    }

    #[test]
    fn transactional_groups_all_or_nothing() {
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), Some(7));
        let b = log.begin(Lba(2), BlockTag(20), Some(7));
        let c = log.begin(Lba(3), BlockTag(30), None);
        log.mark_done(a);
        log.mark_done(b);
        log.mark_done(c);
        let d = dev_state(BarrierMode::Transactional, false, log);
        let (space, _) = d.choice_space();
        assert_eq!(space.exhaustive_choices(), 2); // one open group
        let lost = d.view_for(&space, 0);
        assert_eq!(lost.tag(Lba(1)), BlockTag::UNWRITTEN);
        assert_eq!(lost.tag(Lba(2)), BlockTag::UNWRITTEN);
        assert_eq!(lost.tag(Lba(3)), BlockTag(30));
        let survived = d.view_for(&space, 1);
        assert_eq!(survived.tag(Lba(1)), BlockTag(10));
        assert_eq!(survived.tag(Lba(2)), BlockTag(20));
    }

    #[test]
    fn plp_is_single_image_with_cache() {
        let mut d = dev_state(BarrierMode::Unsupported, true, mixed_log());
        d.cache.push((Lba(9), BlockTag(90)));
        let (space, _) = d.choice_space();
        assert_eq!(space.exhaustive_choices(), 1);
        let img = d.view_for(&space, 0);
        assert_eq!(img.tag(Lba(2)), BlockTag(20)); // even in-flight survives
        assert_eq!(img.tag(Lba(9)), BlockTag(90)); // cache overlaid
    }

    #[test]
    fn enumerate_point_dedups_equivalent_images() {
        // Two in-flight appends to the SAME lba with the same eventual
        // winner collapse some subsets into identical images.
        let mut log = AppendLog::new();
        let a = log.begin(Lba(1), BlockTag(10), None);
        log.mark_done(a);
        log.begin(Lba(2), BlockTag(20), None);
        log.begin(Lba(2), BlockTag(21), None);
        let p = CrashPoint {
            commit_idx: 0,
            records: Arc::new(Vec::new()),
            devices: vec![dev_state(BarrierMode::Unsupported, false, log)],
            topology: Topology::single(),
        };
        let out = enumerate_point(&p, 0);
        // {}, {20}, {21}, {20,21}→21 : the last dedups onto {21}.
        assert_eq!(out.images, 3);
        assert_eq!(out.duplicates, 1);
        assert_eq!(out.fs_violations, 0);
    }

    #[test]
    fn enumerate_point_finds_and_minimizes_durability_loss() {
        // A durability-claimed txn whose jc is still in flight on an
        // orderless device: the subset without the jc bit violates.
        let mut log = AppendLog::new();
        let a = log.begin(Lba(100), BlockTag(1), None); // jd
        log.mark_done(a);
        log.begin(Lba(101), BlockTag(2), None); // jc in flight
        log.begin(Lba(50), BlockTag(3), None); // unrelated data in flight
        let rec = TxnRecord {
            id: 1,
            jd_lba: Lba(100),
            jd_tags: vec![BlockTag(1)],
            jc_lba: Lba(101),
            jc_tag: BlockTag(2),
            meta_home: Vec::new(),
            data_home: Vec::new(),
            ordered_data: Vec::new(),
            durability_claimed: true,
        };
        let p = CrashPoint {
            commit_idx: 1,
            records: Arc::new(vec![rec]),
            devices: vec![dev_state(BarrierMode::Unsupported, false, log)],
            topology: Topology::single(),
        };
        let out = enumerate_point(&p, 0);
        assert!(out.fs_violations > 0);
        let worst = out.worst.expect("violating case recorded");
        // Minimized: the all-zero choice already violates (jc lost).
        assert_eq!(worst.choices, vec![0]);
        assert!(worst.detail.contains("DurabilityLoss"));
    }

    #[test]
    fn stratified_sampling_reaches_past_the_exhaustive_window() {
        // 12 free bits: the exhaustive window covers 256 of 4096 subsets;
        // sampling must find images beyond it, deterministically.
        let mut log = AppendLog::new();
        for i in 0..12 {
            log.begin(Lba(i), BlockTag(100 + i), None);
        }
        let p = CrashPoint {
            commit_idx: 0,
            records: Arc::new(Vec::new()),
            devices: vec![dev_state(BarrierMode::Unsupported, false, log)],
            topology: Topology::single(),
        };
        let out = enumerate_point(&p, 42);
        assert!(out.clamped);
        assert_eq!(out.images, MAX_IMAGES_PER_POINT);
        assert!(out.sampled_images > 0, "sampling found no new images");
        // Seeded: the same point and seed reproduce the same outcome.
        assert_eq!(out, enumerate_point(&p, 42));
        // A different seed may draw different subsets but never changes
        // the exhaustive window.
        let other = enumerate_point(&p, 43);
        assert_eq!(other.images, out.images);
        assert_eq!(other.duplicates, out.duplicates);
    }

    #[test]
    fn delta_capture_is_bit_identical_to_fork_capture() {
        for (_, group) in diff_stacks() {
            for (label, mk_cfg, sync) in group {
                let delta = capture_points(mk_cfg(), sync, 3, CaptureMode::Delta);
                let fork = capture_points(mk_cfg(), sync, 3, CaptureMode::Fork);
                assert!(!delta.is_empty(), "{label}: no capture points");
                assert_eq!(delta, fork, "{label}: capture paths diverge");
            }
        }
    }

    #[test]
    fn differential_trace_smoke_is_clean() {
        for (_, group) in diff_stacks() {
            for (label, mk_cfg, sync) in group {
                let cell = enumerate_trace(mk_cfg(), sync, 1);
                assert!(!cell.points.is_empty(), "{label}: no capture points");
                for p in &cell.points {
                    assert_eq!(
                        p.fs_violations + p.epoch_violations,
                        0,
                        "{label}: violation at commit {}",
                        p.commit_idx
                    );
                }
            }
        }
    }

    #[test]
    fn multi_lane_differential_aligns_and_agrees() {
        // The 2q×2dev group: every lane must have sequenced epochs, the
        // three stacks must align on at least 12 capture points by commit
        // count, and the verdicts at every aligned point must agree.
        let groups = diff_stacks();
        let (_, group) = &groups[1];
        let cells: Vec<CellOutcome> = group
            .iter()
            .map(|(_, mk_cfg, sync)| enumerate_trace(mk_cfg(), *sync, 0))
            .collect();
        let per_stack: Vec<HashMap<usize, &PointOutcome>> = cells
            .iter()
            .map(|c| c.points.iter().map(|p| (p.commit_idx, p)).collect())
            .collect();
        let aligned: Vec<usize> = per_stack[0]
            .keys()
            .copied()
            .filter(|k| per_stack.iter().all(|m| m.contains_key(k)))
            .collect();
        assert!(
            aligned.len() >= 12,
            "only {} aligned multi-lane capture points",
            aligned.len()
        );
        for k in aligned {
            let verdicts: Vec<bool> = per_stack.iter().map(|m| m[&k].worst.is_some()).collect();
            assert!(
                verdicts.iter().all(|&v| v == verdicts[0]),
                "multi-lane divergence at commit {k}: {verdicts:?}"
            );
        }
        // Per-lane epoch capture hook: the barrier-issuing stack (BFS-DR)
        // must have released epochs on all four lanes.
        let (_, mk_cfg, sync) = group[1];
        let mut stack = trace_stack(mk_cfg(), sync, 0);
        stack.run_until_done(SimDuration::from_secs(10));
        let lanes = stack.report().lanes;
        assert_eq!(lanes.len(), 4);
        assert!(
            lanes.iter().all(|l| l.epochs_released > 0),
            "idle lane in 2q×2dev trace: {:?}",
            lanes.iter().map(|l| l.epochs_released).collect::<Vec<_>>()
        );
    }
}
